//! The generic CPM engine: conceptual-partitioning monitoring over any
//! query geometry.
//!
//! Section 5 argues that "CPM provides a general methodology that can be
//! applied to several types of spatial queries". This module is that claim
//! made executable: the search/maintenance machinery of Section 3 —
//! best-first traversal of cells and conceptual rectangles, visit list,
//! search heap, influence lists, batched in/out update handling — written
//! once, parameterized by a [`QuerySpec`] that supplies:
//!
//! * the (aggregate) distance from the query to a point,
//! * the lower-bound key of a cell (`mindist` / `amindist`),
//! * the key of a conceptual rectangle and its per-level increment
//!   (Lemma 3.1, Corollaries 5.1 and 5.2),
//! * the base block of cells that seeds the search (the query cell for a
//!   point query, the cells covering the MBR `M` for an aggregate query),
//! * optional admission predicates for constrained variants.
//!
//! # Two-phase processing cycle
//!
//! The engine is structured so a cycle splits cleanly into a *mutating*
//! and an *immutable* phase:
//!
//! 1. **Grid ingest** ([`cpm_grid::apply_events`]): the update batch is
//!    applied to the grid sequentially, producing one
//!    [`cpm_grid::UpdateRecord`] per event.
//! 2. **Query maintenance** (`EngineCore`): departures/arrivals,
//!    merge-or-recompute resolution and query events run against an
//!    immutable `&Grid`. All per-query state (query table, influence
//!    table, metrics, scratch buffers) lives in the `EngineCore`, so
//!    several cores over *disjoint query sets* can process the same record
//!    batch concurrently — that is exactly what
//!    [`crate::ShardedCpmEngine`] does with `std::thread::scope`.
//!
//! [`crate::CpmKnnMonitor`] remains the specialized, paper-exact point-query
//! implementation used in the head-to-head benchmarks against YPK-CNN and
//! SEA-CNN; the aggregate and constrained monitors are instantiations of
//! this engine ([`crate::ann`], [`crate::constrained`]).

use cpm_geom::{FastHashMap, FastHashSet, ObjectId, Point, QueryId};
use cpm_grid::{
    apply_events, kernels, CellCoord, CellIndex, Coords, Grid, GridGeom, InfluenceTable, Metrics,
    ObjectEvent, QueryKind, SpatialIndex, UpdateRecord,
};

use crate::delta::{DeltaBuf, NeighborDelta};
use crate::error::CpmError;
use crate::heap::{HeapEntry, SearchHeap};
use crate::inlist::InList;
use crate::neighbors::{Neighbor, NeighborList};
use crate::partition::{Direction, Pinwheel};
use crate::regrid::{RegridController, RegridPolicy};

/// Query geometry: everything the CPM machinery needs to know about a
/// query in order to search for it and maintain its result.
///
/// Specs consume only the conceptual cell geometry ([`GridGeom`]) — never
/// the index backend — which is what makes engine results
/// backend-independent by construction.
///
/// Implementations must uphold two contracts, both property-tested by the
/// monitors built on the engine:
///
/// 1. **Lower bound**: `cell_key(geom, c) ≤ dist(p)` for every point `p`
///    inside cell `c`, and `strip_key(pw, dir, lvl) ≤ cell_key(geom, c)`
///    for every cell `c` of strip `DIR_lvl`.
/// 2. **Increment** (Lemma 3.1 / Corollaries 5.1, 5.2):
///    `strip_key(pw, dir, lvl+1) = strip_key(pw, dir, lvl) +
///    strip_increment(δ)`.
pub trait QuerySpec: std::fmt::Debug + Clone {
    /// The (aggregate) distance from the query to point `p`. May be
    /// `+∞` to signal that `p` can never be part of the result
    /// (constrained queries).
    fn dist(&self, p: Point) -> f64;

    /// Batched [`QuerySpec::dist`] over one cell bucket: fill `out` with
    /// the distance to every object of `oids`, reading positions from
    /// the grid's struct-of-arrays columns (`out[i] =
    /// dist(position(oids[i]))`). The engine's bucket scans call this
    /// with a per-query reused buffer.
    ///
    /// Implementations must be **bit-identical** to the per-object
    /// scalar path — same `f64` bits, hence the same `total_cmp`
    /// ordering, results, changed lists and delta streams. The default
    /// simply loops over `dist`; [`PointQuery`] overrides it with the
    /// vectorized kernel ([`cpm_grid::kernels`]), whose conformance
    /// suite asserts the bit-equality.
    #[inline]
    fn dist_batch(&self, coords: Coords<'_>, oids: &[ObjectId], out: &mut Vec<f64>) {
        out.clear();
        out.extend(oids.iter().map(|&oid| self.dist(coords.point(oid))));
    }

    /// The inclusive cell block that seeds the search: `(lo, hi)` corners.
    /// For a point query this is the query cell twice.
    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord);

    /// Lower-bound key of a cell (`mindist` or `amindist`).
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64;

    /// Lower-bound key of conceptual rectangle `DIR_lvl`.
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64;

    /// Key increment between consecutive levels of one direction
    /// (`δ` for point/min/max queries, `m·δ` for sum).
    fn strip_increment(&self, delta: f64) -> f64;

    /// Whether a cell may contain qualifying objects. Non-admitted cells
    /// are not en-heaped (constrained search, Section 5 / Figure 5.3).
    fn admits_cell(&self, _geom: GridGeom, _cell: CellCoord) -> bool {
        true
    }

    /// The query class this geometry belongs to, used to attribute work
    /// counters in mixed workloads ([`cpm_grid::Metrics::by_kind`]).
    /// Point-distance specs default to [`QueryKind::Knn`].
    fn kind(&self) -> QueryKind {
        QueryKind::Knn
    }
}

/// The plain point k-NN query as an engine geometry: Euclidean distance,
/// `mindist` cell keys, the query cell as base block (Section 3).
///
/// [`crate::CpmKnnMonitor`] is the hand-specialized equivalent; this spec
/// exists so the generic machinery — in particular the sharded engine —
/// can serve the paper's core workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointQuery(pub Point);

impl QuerySpec for PointQuery {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        self.0.dist(p)
    }

    #[inline]
    fn dist_batch(&self, coords: Coords<'_>, oids: &[ObjectId], out: &mut Vec<f64>) {
        kernels::dist_into(coords, self.0, oids, out);
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        let c = geom.cell_of(self.0);
        (c, c)
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        geom.mindist(cell, self.0)
    }

    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        pw.strip_mindist(dir, lvl, self.0)
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        delta
    }
}

/// Query events understood by the generic engine.
#[derive(Debug, Clone)]
pub enum SpecEvent<S> {
    /// Register a new continuous query.
    Install {
        /// Query identifier (must be fresh).
        id: QueryId,
        /// Query geometry.
        spec: S,
        /// Result size `k ≥ 1`.
        k: usize,
    },
    /// Replace the geometry of an installed query (e.g. the query points
    /// moved). Handled as terminate + reinstall, like Section 3.3.
    Update {
        /// Query identifier (must be installed).
        id: QueryId,
        /// New geometry.
        spec: S,
    },
    /// Terminate an installed query.
    Terminate {
        /// Query identifier (must be installed).
        id: QueryId,
    },
}

impl<S> SpecEvent<S> {
    /// The query this event concerns.
    pub fn id(&self) -> QueryId {
        match *self {
            SpecEvent::Install { id, .. }
            | SpecEvent::Update { id, .. }
            | SpecEvent::Terminate { id } => id,
        }
    }
}

/// Book-keeping for one engine-managed query (mirrors
/// [`crate::KnnQueryState`], with the point replaced by a [`QuerySpec`]).
#[derive(Debug, Clone)]
pub struct SpecQueryState<S> {
    /// Query identifier.
    pub id: QueryId,
    /// Query geometry.
    pub spec: S,
    /// Current result, ascending by (aggregate) distance.
    pub best: NeighborList,
    /// Cells processed during search, ascending by key; superset of the
    /// influence region.
    pub visit_list: Vec<(CellCoord, f64)>,
    /// Prefix of `visit_list` registered in the influence table.
    pub influence_len: usize,
    /// Left-over search frontier.
    pub heap: SearchHeap,
    /// Pinwheel around the base block.
    pub pinwheel: Pinwheel,
    epoch: u64,
    bd_orig: f64,
    out_count: usize,
    in_list: InList,
    in_removed: bool,
    dirty: bool,
    /// Reused output buffer for [`QuerySpec::dist_batch`] bucket scans;
    /// scratch only, never part of the observable query state.
    dist_buf: Vec<f64>,
    /// Delta log: `(id, cycle-start distance)` of every result entry
    /// mutated in place this cycle (first mutation wins), recorded only
    /// when delta collection is on. Together with the finalize-phase
    /// snapshot this pins down the cycle-start list without ever copying
    /// it ([`NeighborDelta::from_log`]).
    delta_log: DeltaBuf<(ObjectId, f64)>,
}

impl<S: QuerySpec> SpecQueryState<S> {
    fn new(id: QueryId, spec: S, k: usize, dim: u32) -> Self {
        Self {
            id,
            spec,
            best: NeighborList::new(k),
            visit_list: Vec::new(),
            influence_len: 0,
            heap: SearchHeap::new(),
            pinwheel: Pinwheel::around_cell(CellCoord::new(0, 0), dim),
            epoch: 0,
            bd_orig: f64::INFINITY,
            out_count: 0,
            in_list: InList::with_cap(k),
            in_removed: false,
            dirty: false,
            dist_buf: Vec::new(),
            delta_log: DeltaBuf::new(),
        }
    }

    /// The monitored `k`.
    pub fn k(&self) -> usize {
        self.best.k()
    }

    /// Distance of the k-th result entry (`+∞` while unfull).
    pub fn best_dist(&self) -> f64 {
        self.best.best_dist()
    }

    /// Current result, ascending by (aggregate) distance.
    pub fn result(&self) -> &[Neighbor] {
        self.best.neighbors()
    }

    /// Memory units of this query-table entry (Section 4.1 accounting):
    /// `3 + 2k + 3·(C_SH + 4)`.
    pub fn space_units(&self) -> usize {
        let c_sh = self.visit_list.len() + self.heap.cell_entries();
        3 + 2 * self.k() + 3 * (c_sh + 4)
    }
}

/// The query-side half of a CPM engine: query table, influence table, work
/// counters and scratch buffers — everything a processing cycle touches
/// *except* the grid.
///
/// A core's maintenance path ([`EngineCore::apply_records`],
/// [`EngineCore::apply_query_events`]) borrows the grid immutably, so it is
/// `Send` whenever the query geometry is, and cores over disjoint query
/// sets can run concurrently against one shared grid.
#[derive(Debug)]
pub(crate) struct EngineCore<S: QuerySpec> {
    influence: InfluenceTable,
    queries: FastHashMap<QueryId, SpecQueryState<S>>,
    metrics: Metrics,
    epoch: u64,
    touched: Vec<QueryId>,
    ignored: FastHashSet<QueryId>,
    qid_buf: Vec<QueryId>,
    snapshot: Vec<Neighbor>,
    /// When set, every cycle's result changes are also captured as
    /// [`NeighborDelta`]s (cleared at cycle start, drained by the engine
    /// wrappers' `process_cycle_with_deltas`).
    collect_deltas: bool,
    deltas: Vec<(QueryId, NeighborDelta)>,
    /// Queries whose result changed during a re-grid re-registration
    /// ([`EngineCore::rebind_grid`]) and have not yet been folded into a
    /// cycle's changed list. Empty except across exact-distance ties: the
    /// recomputed result is the canonical `(dist, id)`-minimal set, which
    /// the maintained result already is.
    regrid_changed: Vec<QueryId>,
    /// Pre-regrid result snapshots of those queries (kept only with delta
    /// capture on), so the next cycle's delta can use the list subscribers
    /// actually hold as its base.
    regrid_prelists: Vec<(QueryId, Vec<Neighbor>)>,
}

impl<S: QuerySpec> EngineCore<S> {
    pub(crate) fn new(dim: u32) -> Self {
        Self {
            influence: InfluenceTable::new(dim),
            queries: FastHashMap::default(),
            metrics: Metrics::default(),
            epoch: 0,
            touched: Vec::new(),
            ignored: FastHashSet::default(),
            qid_buf: Vec::new(),
            snapshot: Vec::new(),
            collect_deltas: false,
            deltas: Vec::new(),
            regrid_changed: Vec::new(),
            regrid_prelists: Vec::new(),
        }
    }

    /// Turn per-cycle delta capture on or off (off by default — capture
    /// costs one O(result) snapshot per touched query per cycle).
    pub(crate) fn set_collect_deltas(&mut self, on: bool) {
        self.collect_deltas = on;
    }

    /// Whether per-cycle delta capture is on.
    pub(crate) fn collects_deltas(&self) -> bool {
        self.collect_deltas
    }

    /// The processing-cycle counter (0 before any cycle ran). Every core
    /// of a sharded engine advances it identically, so delta epochs are
    /// shard-count-invariant.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drain the deltas captured since the last cycle start. The
    /// replacement buffer is pre-sized to the drained count so
    /// steady-state cycles pay one allocation instead of a growth series.
    pub(crate) fn take_deltas(&mut self) -> Vec<(QueryId, NeighborDelta)> {
        let cap = self.deltas.len();
        std::mem::replace(&mut self.deltas, Vec::with_capacity(cap))
    }

    /// Move the captured deltas into `out`, keeping this core's buffer
    /// (the steady-state zero-allocation path).
    pub(crate) fn drain_deltas_into(&mut self, out: &mut Vec<(QueryId, NeighborDelta)>) {
        out.append(&mut self.deltas);
    }

    pub(crate) fn query_count(&self) -> usize {
        self.queries.len()
    }

    pub(crate) fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<S>> {
        self.queries.get(&id)
    }

    pub(crate) fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub(crate) fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    pub(crate) fn take_metrics(&mut self) -> Metrics {
        self.metrics.take()
    }

    /// `(query count, Σk)` over the managed queries, with each `k` capped
    /// at 256 — the paper's largest experimental `k` — so the range
    /// monitors' unbounded-result sentinel cannot poison the cost model's
    /// average.
    pub(crate) fn k_stats(&self) -> (usize, usize) {
        (
            self.queries.len(),
            self.queries.values().map(|st| st.k().min(256)).sum(),
        )
    }

    /// Re-register every managed query against a re-gridded index: drop
    /// all influence registrations (their packed cell ids are meaningless
    /// at the new δ), then recompute each query from scratch **in
    /// ascending query-id order** — the same deterministic order a fresh
    /// engine installs them in, so the post-regrid book-keeping (visit
    /// lists, heaps, influence prefixes, results) is bit-identical to a
    /// from-scratch build at the new resolution.
    ///
    /// Results are invariant in practice (the maintained list and the
    /// recomputed list are both the canonical `(dist, id)`-minimal set);
    /// if an exact-distance tie ever resolves differently at the new δ,
    /// the change is parked in `regrid_changed`/`regrid_prelists` and
    /// folded into the next cycle's changed list and delta stream by
    /// [`EngineCore::finish_regrid`].
    pub(crate) fn rebind_grid<I: SpatialIndex>(&mut self, grid: &Grid<I>) {
        self.influence.reset(grid.dim());
        self.qid_buf.clear();
        self.qid_buf.extend(self.queries.keys().copied());
        self.qid_buf.sort_unstable();
        let qids = std::mem::take(&mut self.qid_buf);
        for &qid in &qids {
            let st = self.queries.get_mut(&qid).expect("listed query");
            st.influence_len = 0;
            let prev: Vec<Neighbor> = st.best.neighbors().to_vec();
            Self::compute_from_scratch(grid, &mut self.influence, st, &mut self.metrics);
            self.metrics.regrid_queries_recomputed += 1;
            if prev != st.best.neighbors() && !self.regrid_changed.contains(&qid) {
                // First pre-regrid list wins: it is what subscribers hold.
                self.regrid_changed.push(qid);
                if self.collect_deltas {
                    self.regrid_prelists.push((qid, prev));
                }
            }
        }
        self.qid_buf = qids;
    }

    /// Fold any re-grid-induced result changes into the finishing cycle's
    /// outputs. For each parked query the authoritative delta is
    /// `diff(pre-regrid list, current list)` — it *replaces* whatever the
    /// incremental path produced this cycle, whose base (the post-regrid
    /// list) is not what subscribers hold. Runs at the end of every
    /// cycle; a no-op unless a re-grid actually changed a result
    /// (exact-distance ties only).
    pub(crate) fn finish_regrid(&mut self, changed: &mut Vec<QueryId>) {
        if self.regrid_changed.is_empty() {
            return;
        }
        for (qid, pre) in std::mem::take(&mut self.regrid_prelists) {
            // `[]` if the query was terminated by this cycle's events.
            let cur: &[Neighbor] = self.queries.get(&qid).map_or(&[], |st| st.best.neighbors());
            let delta = NeighborDelta::diff(self.epoch, &pre, cur);
            if let Some(at) = self.deltas.iter().position(|(q, _)| *q == qid) {
                if delta.is_empty() {
                    self.deltas.remove(at);
                } else {
                    self.deltas[at].1 = delta;
                }
            } else if !delta.is_empty() {
                self.deltas.push((qid, delta));
            }
        }
        for qid in std::mem::take(&mut self.regrid_changed) {
            if self.queries.contains_key(&qid) && !changed.contains(&qid) {
                changed.push(qid);
            }
        }
    }

    /// Query-table memory units of all managed queries (Section 4.1).
    pub(crate) fn query_space_units(&self) -> usize {
        self.queries
            .values()
            .map(|st| st.space_units())
            .sum::<usize>()
            + self.influence.total_entries()
    }

    /// Note which queries have pending query events this cycle; they are
    /// skipped during object-update handling ("to avoid waste of
    /// computations for obsolete queries", Section 3.3).
    pub(crate) fn begin_cycle(&mut self, pending: impl Iterator<Item = QueryId>) {
        self.ignored.clear();
        self.ignored.extend(pending);
        self.deltas.clear();
    }

    pub(crate) fn install<I: SpatialIndex>(
        &mut self,
        grid: &Grid<I>,
        id: QueryId,
        spec: S,
        k: usize,
    ) -> Result<&[Neighbor], CpmError> {
        if k == 0 {
            return Err(CpmError::InvalidK(id));
        }
        if self.queries.contains_key(&id) {
            return Err(CpmError::DuplicateQuery(id));
        }
        let mut st = SpecQueryState::new(id, spec, k, grid.dim());
        Self::compute_from_scratch(grid, &mut self.influence, &mut st, &mut self.metrics);
        Ok(self.queries.entry(id).or_insert(st).result())
    }

    /// Overwrite the cycle counter during snapshot restore, after the
    /// restored queries have been installed. [`EngineCore::apply_records`]
    /// pre-increments, so a core restored to epoch `e` emits its next
    /// cycle at `e + 1` — exactly the numbering an uninterrupted engine
    /// would use.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Install a query from a snapshot: identical to
    /// [`EngineCore::install`], except that the snapshot's `captured`
    /// result (what the crashed engine last reported and subscribers
    /// hold) is reconciled against the freshly recomputed one. Both are
    /// the canonical `(dist, id)`-minimal set, so they agree in practice;
    /// if an exact-distance tie ever resolves differently, the change is
    /// parked through the same `regrid_changed`/`regrid_prelists`
    /// machinery a re-grid uses, and surfaces in the next cycle's changed
    /// list and delta stream instead of being silently dropped.
    pub(crate) fn restore_query<I: SpatialIndex>(
        &mut self,
        grid: &Grid<I>,
        id: QueryId,
        spec: S,
        k: usize,
        captured: &[Neighbor],
    ) -> Result<(), CpmError> {
        self.install(grid, id, spec, k)?;
        let st = &self.queries[&id];
        if st.best.neighbors() != captured {
            self.regrid_changed.push(id);
            if self.collect_deltas {
                self.regrid_prelists.push((id, captured.to_vec()));
            }
        }
        Ok(())
    }

    pub(crate) fn terminate(&mut self, id: QueryId) -> Result<(), CpmError> {
        match self.queries.remove(&id) {
            Some(st) => {
                for &(cell, _) in &st.visit_list[..st.influence_len] {
                    self.influence.remove(cell, id);
                }
                Ok(())
            }
            None => Err(CpmError::UnknownQuery(id)),
        }
    }

    pub(crate) fn update_spec<I: SpatialIndex>(
        &mut self,
        grid: &Grid<I>,
        id: QueryId,
        spec: S,
    ) -> Result<&[Neighbor], CpmError> {
        let st = self
            .queries
            .get_mut(&id)
            .ok_or(CpmError::UnknownQuery(id))?;
        for &(cell, _) in &st.visit_list[..st.influence_len] {
            self.influence.remove(cell, id);
        }
        st.influence_len = 0;
        st.spec = spec;
        Self::compute_from_scratch(grid, &mut self.influence, st, &mut self.metrics);
        Ok(st.result())
    }

    /// Run the batched update handling (Figure 3.8) for an already-ingested
    /// record batch. Only queries managed by *this* core are affected: each
    /// record is routed through this core's influence table, so records that
    /// touch no influenced cell are skipped for free.
    pub(crate) fn apply_records<I: SpatialIndex>(
        &mut self,
        grid: &Grid<I>,
        records: &[UpdateRecord],
        changed: &mut Vec<QueryId>,
    ) {
        self.epoch += 1;
        self.touched.clear();

        for rec in records {
            if let Some(old_cell) = rec.old_cell {
                self.process_departure(rec.id, old_cell, rec.new_pos);
            }
            if let (Some(new_cell), Some(new_pos)) = (rec.new_cell, rec.new_pos) {
                self.process_arrival(rec.id, new_cell, new_pos);
            }
        }

        self.finalize_touched(grid, changed);
    }

    /// Apply this core's share of the cycle's query events, in batch order.
    pub(crate) fn apply_query_events<I: SpatialIndex>(
        &mut self,
        grid: &Grid<I>,
        events: &[SpecEvent<S>],
        changed: &mut Vec<QueryId>,
    ) {
        for ev in events {
            match ev {
                SpecEvent::Terminate { id } => {
                    // A batched terminate of an id that is already gone is
                    // benign (the direct-call API reports it as
                    // `CpmError::UnknownQuery`).
                    let _ = self.terminate(*id);
                }
                SpecEvent::Update { id, spec } => {
                    let epoch = self.epoch;
                    if self.collect_deltas {
                        let st = self
                            .queries
                            .get_mut(id)
                            .unwrap_or_else(|| panic!("update of unknown query {id}"));
                        // Query events are rare relative to object
                        // updates; a plain owned snapshot is fine here.
                        let prev: Vec<Neighbor> = st.best.neighbors().to_vec();
                        let delta = {
                            let new = self
                                .update_spec(grid, *id, spec.clone())
                                .unwrap_or_else(|e| panic!("{e}"));
                            NeighborDelta::diff(epoch, &prev, new)
                        };
                        if !delta.is_empty() {
                            self.deltas.push((*id, delta));
                        }
                    } else {
                        self.update_spec(grid, *id, spec.clone())
                            .unwrap_or_else(|e| panic!("{e}"));
                    }
                    changed.push(*id);
                }
                SpecEvent::Install { id, spec, k } => {
                    let epoch = self.epoch;
                    if self.collect_deltas {
                        let delta = {
                            let result = self
                                .install(grid, *id, spec.clone(), *k)
                                .unwrap_or_else(|e| panic!("{e}"));
                            NeighborDelta::diff(epoch, &[], result)
                        };
                        if !delta.is_empty() {
                            self.deltas.push((*id, delta));
                        }
                    } else {
                        self.install(grid, *id, spec.clone(), *k)
                            .unwrap_or_else(|e| panic!("{e}"));
                    }
                    changed.push(*id);
                }
            }
        }
    }

    // ---- search ----

    fn compute_from_scratch<I: SpatialIndex>(
        grid: &Grid<I>,
        inf: &mut InfluenceTable,
        st: &mut SpecQueryState<S>,
        metrics: &mut Metrics,
    ) {
        debug_assert_eq!(st.influence_len, 0, "stale influence registrations");
        let counters_before = metrics.query_counters();
        st.best.clear();
        st.visit_list.clear();
        st.heap.clear();

        let (lo, hi) = st.spec.base_block(grid.geom());
        st.pinwheel = Pinwheel::around_block(lo, hi, grid.dim());

        for cell in st.pinwheel.base_cells() {
            if st.spec.admits_cell(grid.geom(), cell) {
                st.heap.push_cell(cell, st.spec.cell_key(grid.geom(), cell));
                metrics.heap_pushes += 1;
            }
        }
        for dir in Direction::ALL {
            if st.pinwheel.strip(dir, 0).is_some() {
                st.heap
                    .push_rect(dir, 0, st.spec.strip_key(&st.pinwheel, dir, 0));
                metrics.heap_pushes += 1;
            }
        }

        Self::drain_heap(grid, st, metrics);
        metrics.computations += 1;
        metrics.attribute_since(st.spec.kind(), counters_before);
        Self::sync_influence(inf, st);
    }

    fn recompute<I: SpatialIndex>(
        grid: &Grid<I>,
        inf: &mut InfluenceTable,
        st: &mut SpecQueryState<S>,
        metrics: &mut Metrics,
    ) {
        let counters_before = metrics.query_counters();
        st.best.clear();

        let mut exhausted = true;
        for i in 0..st.visit_list.len() {
            let (cell, key) = st.visit_list[i];
            if key > st.best.best_dist() {
                exhausted = false;
                break;
            }
            metrics.cell_accesses += 1;
            let oids = grid.objects_in(cell);
            st.spec.dist_batch(grid.coords(), oids, &mut st.dist_buf);
            metrics.objects_processed += oids.len() as u64;
            for (&oid, &d) in oids.iter().zip(&st.dist_buf) {
                if d.is_finite() {
                    st.best.offer(oid, d);
                }
            }
        }
        if exhausted {
            Self::drain_heap(grid, st, metrics);
        }
        metrics.recomputations += 1;
        metrics.attribute_since(st.spec.kind(), counters_before);
        Self::sync_influence(inf, st);
    }

    fn drain_heap<I: SpatialIndex>(
        grid: &Grid<I>,
        st: &mut SpecQueryState<S>,
        metrics: &mut Metrics,
    ) {
        let increment = st.spec.strip_increment(grid.delta());
        while let Some(key) = st.heap.peek_key() {
            if key > st.best.best_dist() {
                break;
            }
            let (key, entry) = st.heap.pop().expect("peeked entry");
            metrics.heap_pops += 1;
            match entry {
                HeapEntry::Cell(cell) => {
                    metrics.cell_accesses += 1;
                    let oids = grid.objects_in(cell);
                    st.spec.dist_batch(grid.coords(), oids, &mut st.dist_buf);
                    metrics.objects_processed += oids.len() as u64;
                    for (&oid, &d) in oids.iter().zip(&st.dist_buf) {
                        if d.is_finite() {
                            st.best.offer(oid, d);
                        }
                    }
                    st.visit_list.push((cell, key));
                }
                HeapEntry::Rect(dir, lvl) => {
                    let strip = st.pinwheel.strip(dir, lvl).expect("en-heaped strip exists");
                    for cell in strip.cells() {
                        if st.spec.admits_cell(grid.geom(), cell) {
                            st.heap.push_cell(cell, st.spec.cell_key(grid.geom(), cell));
                            metrics.heap_pushes += 1;
                        }
                    }
                    if st.pinwheel.strip(dir, lvl + 1).is_some() {
                        st.heap.push_rect(dir, lvl + 1, key + increment);
                        metrics.heap_pushes += 1;
                    }
                }
            }
        }
    }

    fn sync_influence(inf: &mut InfluenceTable, st: &mut SpecQueryState<S>) {
        let bd = st.best.best_dist();
        let new_len = if bd.is_finite() {
            st.visit_list.partition_point(|&(_, key)| key <= bd)
        } else {
            st.visit_list.len()
        };
        for i in st.influence_len..new_len {
            inf.add(st.visit_list[i].0, st.id);
        }
        for i in new_len..st.influence_len {
            inf.remove(st.visit_list[i].0, st.id);
        }
        st.influence_len = new_len;
    }

    // ---- update handling (Figure 3.8, aggregate distances) ----

    fn process_departure(&mut self, id: ObjectId, old_cell: CellCoord, new_pos: Option<Point>) {
        let qids = self.influence.queries_at(old_cell);
        if qids.is_empty() {
            return;
        }
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("influence list in sync");
            Self::touch(st, self.epoch, &mut self.touched);
            if st.in_list.remove(id) {
                st.in_removed = true;
            }
            if st.best.contains(id) {
                // `is_finite` mirrors the arrival guard: with an unfull
                // result `bd_orig` is +∞, and a member moving somewhere it
                // can never qualify (outside a constraint/range region,
                // dist = +∞) must be outgoing, not kept at rank ∞.
                let still_in = new_pos
                    .map(|p| st.spec.dist(p))
                    .filter(|d| d.is_finite() && *d <= st.bd_orig);
                let old_entry = match still_in {
                    Some(d) => st.best.update_dist(id, d),
                    None => {
                        st.out_count += 1;
                        st.best.remove(id).expect("member just checked")
                    }
                };
                // The replaced entry carries the cycle-start distance the
                // delta needs: log it (first mutation wins), and the
                // cycle-start list never has to be copied anywhere.
                if self.collect_deltas && !st.delta_log.iter().any(|&(l, _)| l == old_entry.id) {
                    st.delta_log.push((old_entry.id, old_entry.dist));
                }
                st.dirty = true;
            }
        }
    }

    fn process_arrival(&mut self, id: ObjectId, new_cell: CellCoord, new_pos: Point) {
        let qids = self.influence.queries_at(new_cell);
        if qids.is_empty() {
            return;
        }
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("influence list in sync");
            Self::touch(st, self.epoch, &mut self.touched);
            let d = st.spec.dist(new_pos);
            if d <= st.bd_orig && d.is_finite() && !st.best.contains(id) {
                st.in_list.update(id, d);
            }
        }
    }

    fn touch(st: &mut SpecQueryState<S>, epoch: u64, touched: &mut Vec<QueryId>) {
        if st.epoch != epoch {
            st.epoch = epoch;
            st.bd_orig = st.best_dist();
            st.out_count = 0;
            st.in_list.clear();
            st.in_removed = false;
            st.dirty = false;
            st.delta_log.clear();
            touched.push(st.id);
        }
    }

    fn finalize_touched<I: SpatialIndex>(&mut self, grid: &Grid<I>, changed: &mut Vec<QueryId>) {
        let mut touched = std::mem::take(&mut self.touched);
        // Each query's resolution is independent, so the finalize order is
        // free to choose. With delta capture on, walking in ascending id
        // order makes the emitted delta list born-canonical — sorting the
        // 4-byte ids here is far cheaper than sorting materialized deltas
        // afterwards.
        if self.collect_deltas {
            touched.sort_unstable();
        }
        for &qid in &touched {
            let st = self.queries.get_mut(&qid).expect("touched query installed");
            let unsound_in_list = st.in_list.evicted_since_clear() && st.in_removed;

            let mut resolved = false;
            if unsound_in_list || st.in_list.len() < st.out_count {
                self.snapshot.clear();
                self.snapshot.extend_from_slice(st.best.neighbors());
                Self::recompute(grid, &mut self.influence, st, &mut self.metrics);
                resolved = true;
            } else if st.out_count > 0 || st.in_list.len() > 0 {
                self.snapshot.clear();
                self.snapshot.extend_from_slice(st.best.neighbors());
                let mut candidates = Vec::with_capacity(self.snapshot.len() + st.in_list.len());
                candidates.extend_from_slice(&self.snapshot);
                candidates.extend_from_slice(st.in_list.entries());
                st.best.rebuild_from(candidates);
                self.metrics.merge_resolutions += 1;
                self.metrics.by_kind[st.spec.kind() as usize].merge_resolutions += 1;
                resolved = true;
                Self::sync_influence(&mut self.influence, st);
            } else if st.dirty {
                Self::sync_influence(&mut self.influence, st);
            }

            // Change detection. `dirty` covers in-place departure
            // mutations: the snapshot is *post*-departure, so a result
            // that shrank and refilled nothing compares equal to it even
            // though it changed versus the cycle start.
            if self.collect_deltas {
                if resolved || st.dirty {
                    // Everything the delta needs is cache-hot right here:
                    // the pre-resolution snapshot (just written above; the
                    // final list itself when no merge/recompute ran), the
                    // final list, and the in-place mutation log pinning
                    // down the cycle-start distances. The delta subsumes
                    // the plain path's snapshot comparison: for non-dirty
                    // queries an empty delta means bitwise-equal lists
                    // (distances are never NaN or -0.0, so bit equality
                    // and `==` agree), keeping `changed` identical with
                    // capture on or off.
                    let pre: &[Neighbor] = if resolved {
                        &self.snapshot
                    } else {
                        st.best.neighbors()
                    };
                    let delta = NeighborDelta::from_log(
                        self.epoch,
                        pre,
                        st.delta_log.as_slice(),
                        st.best.neighbors(),
                    );
                    if st.dirty || !delta.is_empty() {
                        changed.push(qid);
                    }
                    if !delta.is_empty() {
                        self.deltas.push((qid, delta));
                    }
                }
            } else if st.dirty || (resolved && self.snapshot != st.best.neighbors()) {
                changed.push(qid);
            }
        }
        self.touched = touched;
    }

    /// Verify all cross-structure invariants against `grid` (test helper).
    pub(crate) fn check_invariants<I: SpatialIndex>(&self, grid: &Grid<I>) {
        for (qid, st) in &self.queries {
            assert_eq!(*qid, st.id);
            st.best.check_invariants();
            for w in st.visit_list.windows(2) {
                assert!(w[0].1 <= w[1].1, "visit list out of order");
            }
            let bd = st.best_dist();
            for (i, &(cell, key)) in st.visit_list.iter().enumerate() {
                let registered = self.influence.contains(cell, *qid);
                assert_eq!(registered, i < st.influence_len, "registration mismatch");
                if bd.is_finite() {
                    assert_eq!(key <= bd, i < st.influence_len, "prefix mismatch");
                }
            }
            for n in st.result() {
                let p = grid
                    .position(n.id)
                    .unwrap_or_else(|| panic!("result contains off-line object {}", n.id));
                assert!(
                    (st.spec.dist(p) - n.dist).abs() < 1e-9,
                    "stale distance for {}",
                    n.id
                );
            }
            assert!(st.heap.boundary_boxes() <= 4);
        }
        let total: usize = self.queries.values().map(|st| st.influence_len).sum();
        assert_eq!(self.influence.total_entries(), total);
    }
}

/// The generic conceptual-partitioning monitor.
///
/// All queries in one engine share the same [`QuerySpec`] type (one engine
/// per query class); heterogeneous workloads use several engines over
/// separate grids or share a grid externally. Internally the engine is a
/// [`Grid`] plus a single `EngineCore` — the sharded variant
/// ([`crate::ShardedCpmEngine`]) pairs the same grid with several cores.
///
/// The second type parameter selects the [`SpatialIndex`] backend and
/// defaults to the paper-exact [`CellIndex`]; results are backend-
/// independent (specs only consume [`GridGeom`]), so the choice is purely
/// a performance knob. Runtime selection goes through
/// [`CpmEngine::with_grid`] and a [`cpm_grid::DynIndex`] grid.
#[derive(Debug)]
pub struct CpmEngine<S: QuerySpec, I: SpatialIndex = CellIndex> {
    grid: Grid<I>,
    core: EngineCore<S>,
    records: Vec<UpdateRecord>,
    regrid: RegridController,
}

impl<S: QuerySpec> CpmEngine<S> {
    /// Create an engine over an empty `dim × dim` grid with the default
    /// uniform backend.
    pub fn new(dim: u32) -> Self {
        Self::with_grid(cpm_grid::GridBuilder::new(dim).build_uniform())
    }
}

impl<S: QuerySpec, I: SpatialIndex> CpmEngine<S, I> {
    /// Create an engine over a pre-built (typically empty) grid, keeping
    /// whatever index backend it was configured with.
    pub fn with_grid(grid: Grid<I>) -> Self {
        let dim = grid.dim();
        Self {
            grid,
            core: EngineCore::new(dim),
            records: Vec::new(),
            regrid: RegridController::new(RegridPolicy::Manual),
        }
    }

    /// Replace the re-grid policy (default: [`RegridPolicy::Manual`]).
    /// With [`RegridPolicy::Auto`], the policy is evaluated at the start
    /// of every processing cycle against the observed workload.
    pub fn set_regrid_policy(&mut self, policy: RegridPolicy) {
        self.regrid.set_policy(policy);
    }

    /// The active re-grid policy.
    #[must_use]
    pub fn regrid_policy(&self) -> &RegridPolicy {
        self.regrid.policy()
    }

    /// Re-grid to a new resolution *now*: rebuild the cell index from the
    /// (untouched) object store and re-register every query against the
    /// new δ, in one deterministic pass. Results, changed lists and delta
    /// streams stay bit-identical to an engine built at `new_dim` from
    /// scratch. Returns the number of objects migrated (0 if `new_dim` is
    /// the current dimension).
    ///
    /// # Errors
    /// [`CpmError::InvalidDim`] if the active backend rejects `new_dim`
    /// (out of `1..=4096`, or not a power of two for a quadtree index).
    pub fn regrid_to(&mut self, new_dim: u32) -> Result<usize, CpmError> {
        if new_dim == self.grid.dim() {
            return Ok(0);
        }
        self.grid
            .index()
            .kind()
            .check_dim(new_dim)
            .map_err(CpmError::from)?;
        let migrated = self.grid.regrid(new_dim);
        let metrics = self.core.metrics_mut();
        metrics.regrids += 1;
        metrics.regrid_objects_migrated += migrated as u64;
        self.core.rebind_grid(&self.grid);
        Ok(migrated)
    }

    /// Evaluate the automatic policy at the cycle boundary (phase 0 of a
    /// processing cycle). Free under the default [`RegridPolicy::Manual`]
    /// — the observation and the O(queries) `k` sweep only run when a
    /// policy could act on them.
    fn maybe_auto_regrid(&mut self, object_events: usize, query_events: usize) {
        if !self.regrid.policy().is_auto() {
            return;
        }
        self.regrid.observe_cycle(
            object_events,
            query_events,
            self.grid.len(),
            self.core.query_count(),
        );
        self.regrid.observe_occupancy(self.grid.stats());
        let (n_queries, sum_k) = self.core.k_stats();
        let avg_k = sum_k / n_queries.max(1);
        if let Some(dim) = self.regrid.decide(
            self.core.epoch(),
            self.grid.len(),
            n_queries,
            avg_k,
            self.grid.dim(),
        ) {
            // The controller's dims come from the validated policy range;
            // a backend that rejects one (non-pow2 on a quadtree) simply
            // skips this adjustment and re-evaluates next period.
            let _ = self.regrid_to(dim);
        }
    }

    /// Bulk-load objects before any query is installed.
    ///
    /// # Panics
    /// Panics if queries are already installed.
    pub fn populate<It: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: It) {
        assert!(
            self.core.query_count() == 0,
            "populate() is only valid before queries are installed"
        );
        for (oid, pos) in objects {
            self.grid.insert(oid, pos);
        }
    }

    /// The object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<I> {
        &self.grid
    }

    /// Number of installed queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.core.query_count()
    }

    /// The current result of query `id`.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.core.query_state(id).map(|st| st.result())
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<S>> {
        self.core.query_state(id)
    }

    /// Work counters accumulated since the last [`CpmEngine::take_metrics`].
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.core.metrics()
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.core.take_metrics()
    }

    /// Install a new query and compute its initial result.
    ///
    /// # Errors
    /// [`CpmError::DuplicateQuery`] if `id` is already installed,
    /// [`CpmError::InvalidK`] if `k == 0`.
    pub fn install(&mut self, id: QueryId, spec: S, k: usize) -> Result<&[Neighbor], CpmError> {
        self.core.install(&self.grid, id, spec, k)
    }

    /// Terminate query `id`.
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if `id` is not installed.
    pub fn terminate(&mut self, id: QueryId) -> Result<(), CpmError> {
        self.core.terminate(id)
    }

    /// Replace the geometry of query `id` (terminate + reinstall).
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if `id` is not installed.
    pub fn update_spec(&mut self, id: QueryId, spec: S) -> Result<&[Neighbor], CpmError> {
        self.core.update_spec(&self.grid, id, spec)
    }

    /// Run one processing cycle: object events (batched update handling),
    /// then query events. Returns ids of queries whose result changed.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
    ) -> Vec<QueryId> {
        assert!(
            !self.core.collects_deltas(),
            "this engine collects deltas: use process_cycle_with_deltas, or the delta \
             stream silently loses this cycle's changes"
        );
        let mut changed = Vec::new();
        self.run_cycle(object_events, query_events, &mut changed);
        changed
    }

    /// The cycle body shared by [`CpmEngine::process_cycle`] and the
    /// delta-returning variants; changed ids are appended to the caller's
    /// buffer so recycling callers allocate nothing per cycle.
    fn run_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
        changed: &mut Vec<QueryId>,
    ) {
        // Phase 0: adaptive re-grid at the cycle boundary.
        self.maybe_auto_regrid(object_events.len(), query_events.len());

        self.core.begin_cycle(query_events.iter().map(|ev| ev.id()));

        // Phase 1: sequential grid ingest.
        self.records.clear();
        self.core.metrics_mut().updates_applied +=
            apply_events(&mut self.grid, object_events, &mut self.records);

        // Phase 2: query maintenance over the immutable grid.
        self.core.apply_records(&self.grid, &self.records, changed);
        self.core
            .apply_query_events(&self.grid, query_events, changed);
        self.core.finish_regrid(changed);
    }

    /// Turn per-cycle delta capture on (see
    /// [`CpmEngine::process_cycle_with_deltas`]). Capture costs one
    /// O(result) snapshot per touched query per cycle and is off by
    /// default.
    pub fn enable_deltas(&mut self) {
        self.core.set_collect_deltas(true);
    }

    /// The processing-cycle counter: 0 before any cycle, incremented by
    /// every `process_cycle` call. Delta epochs carry this value.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Run one processing cycle and return the per-query result deltas
    /// alongside the changed-query list (both ascending by query id).
    ///
    /// # Panics
    /// Panics if delta capture was not enabled with
    /// [`CpmEngine::enable_deltas`] — silently returning an empty batch
    /// would break replay losslessness.
    pub fn process_cycle_with_deltas(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
    ) -> crate::delta::CycleDeltas {
        let mut out = crate::delta::CycleDeltas::default();
        self.process_cycle_with_deltas_into(object_events, query_events, &mut out);
        out
    }

    /// [`CpmEngine::process_cycle_with_deltas`], but refilling a
    /// caller-owned batch so a steady-state caller that recycles the same
    /// [`crate::CycleDeltas`] pays no per-cycle batch allocation.
    ///
    /// # Panics
    /// Panics if delta capture was not enabled with
    /// [`CpmEngine::enable_deltas`].
    pub fn process_cycle_with_deltas_into(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
        out: &mut crate::delta::CycleDeltas,
    ) {
        assert!(
            self.core.collect_deltas,
            "enable_deltas() must be called before processing cycles with deltas"
        );
        out.changed.clear();
        self.run_cycle(object_events, query_events, &mut out.changed);
        out.changed.sort_unstable();
        out.deltas.clear();
        self.core.drain_deltas_into(&mut out.deltas);
        out.canonicalize(self.core.epoch());
    }

    /// Verify all cross-structure invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.core.check_invariants(&self.grid);
    }
}
