//! Continuous aggregate nearest neighbor (ANN) monitoring (Section 5).
//!
//! Given a set of query points `Q = {q_1 … q_m}` and a monotone aggregate
//! `f`, an ANN query continuously reports the object(s) minimizing
//! `adist(p, Q) = f(dist(p, q_1), …, dist(p, q_m))`:
//!
//! * `f = sum` — the meeting point minimizing total travel distance;
//! * `f = max` — minimizing the latest arrival time;
//! * `f = min` — the object closest to *any* query point.
//!
//! The search partitions space around the MBR `M` of `Q`; cells and
//! conceptual rectangles are ordered by `amindist` (the aggregate of the
//! per-point `mindist`s, a lower bound of `adist` for any object inside).
//! Corollary 5.1 (`sum`): consecutive rectangles of one direction differ by
//! `m·δ`; Corollary 5.2 (`min`/`max`): by `δ`. Update handling is the
//! machinery of Section 3 with `adist` in place of the Euclidean distance —
//! provided here by instantiating the generic engine (sharded across
//! worker threads when requested, [`crate::ShardedCpmEngine`]).

use cpm_geom::{Point, QueryId};
use cpm_grid::{CellCoord, Grid, GridGeom, Metrics, ObjectEvent};

use crate::engine::{QuerySpec, SpecEvent, SpecQueryState};
use crate::neighbors::Neighbor;
use crate::partition::{Direction, Pinwheel};

/// The aggregate function of an ANN query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFn {
    /// Minimize the sum of distances to all query points.
    Sum,
    /// Minimize the smallest distance to any query point.
    Min,
    /// Minimize the largest distance to any query point.
    Max,
}

impl AggregateFn {
    /// Fold an iterator of per-point distances into the aggregate.
    ///
    /// Returns `0.0` for an empty iterator only under `Sum`; ANN queries
    /// always carry at least one point (enforced by [`AnnQuery::new`]).
    #[inline]
    pub fn fold<I: IntoIterator<Item = f64>>(self, dists: I) -> f64 {
        let it = dists.into_iter();
        match self {
            AggregateFn::Sum => it.sum(),
            AggregateFn::Min => it.fold(f64::INFINITY, f64::min),
            AggregateFn::Max => it.fold(0.0, f64::max),
        }
    }
}

/// The geometry of one aggregate query: the point set `Q` plus the
/// aggregate function `f`.
#[derive(Debug, Clone)]
pub struct AnnQuery {
    points: Vec<Point>,
    f: AggregateFn,
    /// Cached MBR `M` of the point set: the conceptual partitioning is
    /// anchored on it, and for `min`/`max` it yields the O(1) strip keys
    /// of Section 5 ("computing amindist(DIR_0, Q) … reduces to
    /// calculating the minimum distance between rectangle DIR_0 and the
    /// closest [min] / opposite [max] edge of M").
    mbr: cpm_geom::Rect,
}

impl AnnQuery {
    /// Build an aggregate query.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn new(points: Vec<Point>, f: AggregateFn) -> Self {
        let mbr = cpm_geom::Rect::mbr_of(points.iter().copied())
            .expect("ANN query needs at least one point");
        Self { points, f, mbr }
    }

    /// The MBR `M` of the query set.
    pub fn mbr(&self) -> cpm_geom::Rect {
        self.mbr
    }

    /// The query points `Q`.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The aggregate function.
    pub fn aggregate(&self) -> AggregateFn {
        self.f
    }

    /// `adist(p, Q)`: the aggregate distance from `p` to the query set.
    #[inline]
    pub fn adist(&self, p: Point) -> f64 {
        self.f.fold(self.points.iter().map(|&q| p.dist(q)))
    }
}

impl QuerySpec for AnnQuery {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        self.adist(p)
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        (geom.cell_of(self.mbr.lo), geom.cell_of(self.mbr.hi))
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        let rect = geom.cell_rect(cell);
        self.f.fold(self.points.iter().map(|&q| rect.mindist(q)))
    }

    /// Strip keys: O(m) fold for `sum`; O(1) through the MBR edges for
    /// `min` and `max` (Section 5). The per-point strip distance is the
    /// axis distance to the strip's near edge, so its min/max over `Q` is
    /// attained at the corresponding MBR edge.
    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        match self.f {
            AggregateFn::Sum => self
                .f
                .fold(self.points.iter().map(|&q| pw.strip_mindist(dir, lvl, q))),
            AggregateFn::Min => {
                // Nearest edge of M in the strip's direction.
                let anchor = match dir {
                    Direction::Up => Point::new(self.mbr.lo.x, self.mbr.hi.y),
                    Direction::Down => self.mbr.lo,
                    Direction::Right => Point::new(self.mbr.hi.x, self.mbr.lo.y),
                    Direction::Left => self.mbr.lo,
                };
                pw.strip_mindist(dir, lvl, anchor)
            }
            AggregateFn::Max => {
                // Opposite edge of M.
                let anchor = match dir {
                    Direction::Up => self.mbr.lo,
                    Direction::Down => self.mbr.hi,
                    Direction::Right => Point::new(self.mbr.lo.x, self.mbr.lo.y),
                    Direction::Left => self.mbr.hi,
                };
                pw.strip_mindist(dir, lvl, anchor)
            }
        }
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        match self.f {
            // Corollary 5.1: amindist grows by m·δ per level for sum.
            AggregateFn::Sum => self.points.len() as f64 * delta,
            // Corollary 5.2: by δ for min and max.
            AggregateFn::Min | AggregateFn::Max => delta,
        }
    }

    #[inline]
    fn kind(&self) -> cpm_grid::QueryKind {
        cpm_grid::QueryKind::Ann
    }
}

/// Continuous aggregate-NN monitor — a single-kind **compatibility shim**
/// over [`crate::CpmServer`]. New code should use the server directly
/// ([`crate::CpmServer::install_ann`]), which hosts aggregate queries next
/// to every other kind on one shared grid; this type keeps the original
/// per-kind surface (panicking on registry misuse where the server
/// returns [`crate::CpmError`]).
///
/// User query ids must stay below the server's reserved internal band
/// (`2³¹`, [`crate::server::RESERVED_ID_BASE`]) — ids above it are
/// rejected, where the old dedicated engines accepted the full `u32`
/// range.
///
/// # Example
///
/// ```
/// use cpm_core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
/// use cpm_geom::{ObjectId, Point, QueryId};
///
/// let mut monitor = CpmAnnMonitor::new(64);
/// monitor.populate([
///     (ObjectId(0), Point::new(0.30, 0.52)), // central meeting candidate
///     (ObjectId(1), Point::new(0.05, 0.90)),
/// ]);
/// let users = vec![
///     Point::new(0.1, 0.5),
///     Point::new(0.5, 0.5),
///     Point::new(0.3, 0.8),
/// ];
/// monitor.install_query(QueryId(0), AnnQuery::new(users, AggregateFn::Sum), 1);
/// let best = monitor.result(QueryId(0)).unwrap();
/// assert_eq!(best[0].id, ObjectId(0));
/// ```
#[derive(Debug)]
pub struct CpmAnnMonitor {
    server: crate::CpmServer,
    /// Scratch: this cycle's events lifted to the unified vocabulary.
    event_buf: Vec<SpecEvent<crate::AnyQuerySpec>>,
}

impl CpmAnnMonitor {
    /// Create a sequential monitor over an empty `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self::new_sharded(dim, 1)
    }

    /// Create a monitor whose per-cycle maintenance runs across
    /// `shards ≥ 1` worker threads (`shards = 1` is sequential; results
    /// are bit-identical for every shard count — see
    /// [`crate::ShardedCpmEngine`]).
    pub fn new_sharded(dim: u32, shards: usize) -> Self {
        Self {
            server: crate::CpmServerBuilder::new(dim).shards(shards).build(),
            event_buf: Vec::new(),
        }
    }

    /// Bulk-load objects before any query is installed.
    pub fn populate<I: IntoIterator<Item = (cpm_geom::ObjectId, Point)>>(&mut self, objects: I) {
        self.server.populate(objects);
    }

    /// Install a continuous k-ANN query and compute its initial result.
    ///
    /// # Panics
    /// Panics if `id` is already installed or `k == 0`.
    pub fn install_query(&mut self, id: QueryId, query: AnnQuery, k: usize) -> &[Neighbor] {
        let h = self
            .server
            .install_ann(id, query, k)
            .unwrap_or_else(|e| panic!("{e}"));
        self.server.result(h).expect("just installed")
    }

    /// Terminate a query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.server.terminate(id).is_ok()
    }

    /// Replace the point set of a query (some users moved): terminate +
    /// reinstall, as in Section 3.3.
    ///
    /// # Panics
    /// Panics if the query is not installed.
    pub fn move_query(&mut self, id: QueryId, query: AnnQuery) -> &[Neighbor] {
        self.server
            .update_spec(id, crate::AnyQuerySpec::Ann(query))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one processing cycle over object and query events.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnnQuery>],
    ) -> Vec<QueryId> {
        self.event_buf.clear();
        // Legacy surface: a batched terminate of an id that is already
        // gone stays a benign no-op (the server's typed surface reports
        // it as `UnknownQuery`).
        self.event_buf.extend(
            query_events
                .iter()
                .filter(|ev| {
                    !matches!(ev, SpecEvent::Terminate { id }
                        if self.server.kind_of(*id).is_none())
                })
                .map(crate::any::wrap_event),
        );
        let events = std::mem::take(&mut self.event_buf);
        // Legacy monitor surface: clamp stray coordinates and keep each
        // object's final event, as sequential application always did,
        // before the server's strict ingest validation.
        let object_events = crate::server::sanitize_object_events(object_events);
        let changed = self
            .server
            .process_cycle(&object_events, &events)
            .unwrap_or_else(|e| panic!("{e}"));
        self.event_buf = events;
        changed
    }

    /// Current result of query `id`, ascending by aggregate distance.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.server.result(id)
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<crate::AnyQuerySpec>> {
        self.server.query_state(id)
    }

    /// The object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<cpm_grid::DynIndex> {
        self.server.grid()
    }

    /// Number of installed queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.server.query_count()
    }

    /// Merged snapshot of the work counters.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.server.metrics()
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.server.take_metrics()
    }

    /// Verify internal invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.server.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(monitor: &CpmAnnMonitor, q: &AnnQuery, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = monitor
            .grid()
            .iter_objects()
            .map(|(_, p)| q.adist(p))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    fn assert_matches(monitor: &CpmAnnMonitor, qid: QueryId) {
        let st = monitor.query_state(qid).unwrap();
        let expect = brute_force(
            monitor,
            st.spec.as_ann().expect("ann monitor query"),
            st.k(),
        );
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn aggregate_fold_semantics() {
        let d = [3.0, 1.0, 2.0];
        assert_eq!(AggregateFn::Sum.fold(d), 6.0);
        assert_eq!(AggregateFn::Min.fold(d), 1.0);
        assert_eq!(AggregateFn::Max.fold(d), 3.0);
    }

    #[test]
    fn sum_ann_finds_meeting_object_fig_5_1() {
        let mut m = CpmAnnMonitor::new(16);
        m.populate([
            (ObjectId(1), Point::new(0.15, 0.85)),
            (ObjectId(2), Point::new(0.42, 0.48)), // near the centroid
            (ObjectId(3), Point::new(0.85, 0.15)),
            (ObjectId(4), Point::new(0.9, 0.9)),
            (ObjectId(5), Point::new(0.55, 0.60)),
        ]);
        let q = AnnQuery::new(
            vec![
                Point::new(0.3, 0.4),
                Point::new(0.6, 0.45),
                Point::new(0.45, 0.7),
            ],
            AggregateFn::Sum,
        );
        m.install_query(QueryId(0), q, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn min_and_max_agree_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        for f in [AggregateFn::Min, AggregateFn::Max, AggregateFn::Sum] {
            let mut m = CpmAnnMonitor::new(32);
            m.populate((0..50u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
            let pts = (0..4).map(|_| Point::new(rng.gen(), rng.gen())).collect();
            m.install_query(QueryId(0), AnnQuery::new(pts, f), 3);
            assert_matches(&m, QueryId(0));
            m.check_invariants();
        }
    }

    #[test]
    fn single_point_ann_equals_plain_nn() {
        // With |Q| = 1 every aggregate degenerates to the Euclidean NN.
        let mut rng = StdRng::seed_from_u64(7);
        let objs: Vec<(ObjectId, Point)> = (0..40u32)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();
        let qp = Point::new(0.4, 0.6);

        let mut plain = crate::CpmKnnMonitor::new(16);
        plain.populate(objs.iter().copied());
        plain.install_query(QueryId(0), qp, 5);

        for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
            let mut ann = CpmAnnMonitor::new(16);
            ann.populate(objs.iter().copied());
            ann.install_query(QueryId(0), AnnQuery::new(vec![qp], f), 5);
            let a: Vec<_> = ann
                .result(QueryId(0))
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let p: Vec<_> = plain
                .result(QueryId(0))
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(a, p, "aggregate {f:?}");
        }
    }

    #[test]
    fn updates_maintain_ann_results() {
        let mut rng = StdRng::seed_from_u64(0xA55);
        for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
            let mut m = CpmAnnMonitor::new(16);
            m.populate((0..40u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
            let pts: Vec<Point> = (0..3).map(|_| Point::new(rng.gen(), rng.gen())).collect();
            m.install_query(QueryId(0), AnnQuery::new(pts, f), 2);

            let mut live: Vec<u32> = (0..40).collect();
            let mut next = 40u32;
            for _ in 0..25 {
                let mut evs = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(0..8) {
                    match rng.gen_range(0..8) {
                        0 if live.len() > 3 => {
                            let id = live.swap_remove(rng.gen_range(0..live.len()));
                            if seen.insert(id) {
                                evs.push(ObjectEvent::Disappear { id: ObjectId(id) });
                            } else {
                                live.push(id);
                            }
                        }
                        1 => {
                            live.push(next);
                            seen.insert(next);
                            evs.push(ObjectEvent::Appear {
                                id: ObjectId(next),
                                pos: Point::new(rng.gen(), rng.gen()),
                            });
                            next += 1;
                        }
                        _ => {
                            let id = live[rng.gen_range(0..live.len())];
                            if seen.insert(id) {
                                evs.push(ObjectEvent::Move {
                                    id: ObjectId(id),
                                    to: Point::new(rng.gen(), rng.gen()),
                                });
                            }
                        }
                    }
                }
                m.process_cycle(&evs, &[]);
                m.check_invariants();
                assert_matches(&m, QueryId(0));
            }
        }
    }

    #[test]
    fn moving_the_query_set_recomputes() {
        let mut m = CpmAnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.2, 0.2)),
            (ObjectId(1), Point::new(0.8, 0.8)),
        ]);
        let q0 = AnnQuery::new(
            vec![Point::new(0.1, 0.1), Point::new(0.3, 0.3)],
            AggregateFn::Max,
        );
        m.install_query(QueryId(0), q0, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
        let q1 = AnnQuery::new(
            vec![Point::new(0.7, 0.9), Point::new(0.9, 0.7)],
            AggregateFn::Max,
        );
        m.move_query(QueryId(0), q1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        m.check_invariants();
    }

    #[test]
    fn o1_strip_keys_equal_the_explicit_fold() {
        // Section 5's O(1) min/max amindist(DIR_lvl) through the MBR edges
        // must equal the O(m) per-point fold exactly.
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec((0.05..0.95f64, 0.05..0.95f64), 1..7),
                    0u32..3,
                ),
                |(raw, lvl)| {
                    let pts: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
                    let grid = cpm_grid::GridBuilder::new(32).build_uniform();
                    for f in [AggregateFn::Min, AggregateFn::Max] {
                        let q = AnnQuery::new(pts.clone(), f);
                        let (lo, hi) = q.base_block(grid.geom());
                        let pw = Pinwheel::around_block(lo, hi, grid.dim());
                        for dir in Direction::ALL {
                            let fast = q.strip_key(&pw, dir, lvl);
                            let slow = f.fold(pts.iter().map(|&p| pw.strip_mindist(dir, lvl, p)));
                            prop_assert!(
                                (fast - slow).abs() < 1e-12,
                                "{f:?} {dir:?} lvl {lvl}: {fast} vs {slow}"
                            );
                        }
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn corollary_increments_hold_in_engine_keys() {
        // Sum: m·δ; min/max: δ — exercised through QuerySpec directly.
        let grid = cpm_grid::GridBuilder::new(16).build_uniform();
        let pts = vec![
            Point::new(0.40, 0.40),
            Point::new(0.45, 0.50),
            Point::new(0.55, 0.45),
        ];
        for (f, factor) in [
            (AggregateFn::Sum, 3.0),
            (AggregateFn::Min, 1.0),
            (AggregateFn::Max, 1.0),
        ] {
            let q = AnnQuery::new(pts.clone(), f);
            let (lo, hi) = q.base_block(grid.geom());
            let pw = Pinwheel::around_block(lo, hi, grid.dim());
            for dir in Direction::ALL {
                for lvl in 0..3 {
                    let a = q.strip_key(&pw, dir, lvl);
                    let b = q.strip_key(&pw, dir, lvl + 1);
                    assert!(
                        (b - a - factor * grid.delta()).abs() < 1e-12,
                        "{f:?} {dir:?} {lvl}: {a} -> {b}"
                    );
                }
            }
        }
    }
}
