//! The search heap `H` of the NN computation module (Figure 3.4).
//!
//! The heap holds two kinds of entries keyed by `mindist` (or `amindist`
//! for aggregate queries): grid cells, and conceptual-rectangle markers.
//! The proof of correctness in Section 3.1 relies on the invariant that at
//! most one rectangle marker per direction (the *boundary box*) is in the
//! heap at any time; [`SearchHeap::boundary_boxes`] exposes the count so
//! tests can assert it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cpm_geom::TotalF64;
use cpm_grid::CellCoord;

use crate::partition::Direction;

/// A search-heap entry: a cell or a conceptual rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HeapEntry {
    /// A grid cell (ties order cells before rectangle markers and then by
    /// coordinate, for deterministic traversal).
    Cell(CellCoord),
    /// The conceptual rectangle `DIR_lvl`.
    Rect(Direction, u32),
}

/// Min-heap over `(key, entry)` with a total order on keys.
#[derive(Debug, Clone, Default)]
pub struct SearchHeap {
    heap: BinaryHeap<Reverse<(TotalF64, HeapEntry)>>,
    rect_entries: usize,
}

impl SearchHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.rect_entries = 0;
    }

    /// Push a cell with its `mindist` key.
    #[inline]
    pub fn push_cell(&mut self, cell: CellCoord, key: f64) {
        self.heap
            .push(Reverse((TotalF64::new(key), HeapEntry::Cell(cell))));
    }

    /// Push a rectangle marker with its `mindist` key.
    #[inline]
    pub fn push_rect(&mut self, dir: Direction, lvl: u32, key: f64) {
        self.heap
            .push(Reverse((TotalF64::new(key), HeapEntry::Rect(dir, lvl))));
        self.rect_entries += 1;
    }

    /// Smallest key currently in the heap.
    #[inline]
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((k, _))| k.get())
    }

    /// Pop the entry with the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, HeapEntry)> {
        let Reverse((k, e)) = self.heap.pop()?;
        if matches!(e, HeapEntry::Rect(..)) {
            self.rect_entries -= 1;
        }
        Some((k.get(), e))
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of rectangle markers currently enqueued (the boundary boxes).
    /// Invariant: `≤ 4`, one per non-exhausted direction.
    #[inline]
    pub fn boundary_boxes(&self) -> usize {
        self.rect_entries
    }

    /// Number of cell entries currently enqueued (the `C_SH` residue that
    /// the space analysis of Section 4.1 charges to the query table).
    #[inline]
    pub fn cell_entries(&self) -> usize {
        self.heap.len() - self.rect_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_key_order() {
        let mut h = SearchHeap::new();
        h.push_cell(CellCoord::new(0, 0), 0.5);
        h.push_rect(Direction::Up, 0, 0.1);
        h.push_cell(CellCoord::new(1, 1), 0.3);
        h.push_rect(Direction::Down, 2, 0.9);
        let keys: Vec<f64> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(keys, vec![0.1, 0.3, 0.5, 0.9]);
    }

    #[test]
    fn equal_keys_prefer_cells() {
        let mut h = SearchHeap::new();
        h.push_rect(Direction::Left, 1, 0.25);
        h.push_cell(CellCoord::new(2, 3), 0.25);
        assert!(matches!(h.pop(), Some((_, HeapEntry::Cell(_)))));
        assert!(matches!(h.pop(), Some((_, HeapEntry::Rect(..)))));
    }

    #[test]
    fn tracks_boundary_box_count() {
        let mut h = SearchHeap::new();
        assert_eq!(h.boundary_boxes(), 0);
        h.push_rect(Direction::Up, 0, 0.0);
        h.push_rect(Direction::Down, 0, 0.0);
        h.push_cell(CellCoord::new(0, 0), 0.0);
        assert_eq!(h.boundary_boxes(), 2);
        assert_eq!(h.cell_entries(), 1);
        while h.pop().is_some() {}
        assert_eq!(h.boundary_boxes(), 0);
        h.clear();
        assert!(h.is_empty());
    }
}
