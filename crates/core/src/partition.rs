//! Conceptual partitioning of the space around a query (Section 3.1).
//!
//! CPM organizes the cells around the query cell `c_q` into one-cell-thick
//! rectangles ("strips") identified by a [`Direction`] (U/D/L/R) and a level
//! number (the number of rectangles between the strip and `c_q`). The strips
//! of all directions and levels, together with the base, tile the grid
//! exactly — every cell belongs to exactly one of them (property-tested
//! below). Lemma 3.1 gives `mindist(DIR_{j+1}, q) = mindist(DIR_j, q) + δ`,
//! which lets the NN search en-heap a *constant* frontier (the four
//! "boundary boxes") instead of sorting all cells by `mindist`.
//!
//! The same pinwheel generalizes from a single base cell to a cell-aligned
//! base *rectangle*, which is how the aggregate-NN search of Section 5
//! partitions the space around the MBR `M` of the query set `Q`.

use cpm_geom::Point;
use cpm_grid::CellCoord;

/// The four strip directions of the conceptual partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Above the base (`U` in Figure 3.1b).
    Up,
    /// Below the base (`D`).
    Down,
    /// Left of the base (`L`).
    Left,
    /// Right of the base (`R`).
    Right,
}

impl Direction {
    /// All four directions, in the order used for deterministic iteration.
    pub const ALL: [Direction; 4] = [
        Direction::Up,
        Direction::Down,
        Direction::Left,
        Direction::Right,
    ];
}

/// The cells of one conceptual rectangle `DIR_lvl`, clipped to the grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strip {
    /// Direction of the rectangle.
    pub dir: Direction,
    /// Level number (0 = adjacent to the base).
    pub level: u32,
    /// Fixed coordinate: the strip's single row (for U/D) or column (L/R).
    fixed: u32,
    /// Inclusive cross-axis range (columns for U/D, rows for L/R), clipped.
    cross: (u32, u32),
}

impl Strip {
    /// Iterate over the cells of the strip.
    pub fn cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let fixed = self.fixed;
        let horizontal = matches!(self.dir, Direction::Up | Direction::Down);
        (self.cross.0..=self.cross.1).map(move |v| {
            if horizontal {
                CellCoord::new(v, fixed)
            } else {
                CellCoord::new(fixed, v)
            }
        })
    }

    /// Number of cells in the (clipped) strip.
    pub fn len(&self) -> usize {
        (self.cross.1 - self.cross.0 + 1) as usize
    }

    /// Strips are never empty (an off-grid strip is `None` at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The pinwheel partitioning around a cell-aligned base rectangle
/// `[c0, c1] × [r0, r1]` inside a `dim × dim` grid.
///
/// For a plain k-NN query the base is the single query cell `c_q`
/// (`c0 == c1`, `r0 == r1`); for an aggregate query it is the block of cells
/// covering the MBR `M` of the query set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pinwheel {
    /// Leftmost base column.
    pub c0: u32,
    /// Rightmost base column.
    pub c1: u32,
    /// Bottom base row.
    pub r0: u32,
    /// Top base row.
    pub r1: u32,
    /// Grid dimension.
    pub dim: u32,
}

impl Pinwheel {
    /// Pinwheel around a single cell.
    pub fn around_cell(c: CellCoord, dim: u32) -> Self {
        Self {
            c0: c.col,
            c1: c.col,
            r0: c.row,
            r1: c.row,
            dim,
        }
    }

    /// Pinwheel around a cell-aligned rectangle (for aggregate queries).
    ///
    /// # Panics
    /// Panics (debug) if the base is empty or exceeds the grid.
    pub fn around_block(lo: CellCoord, hi: CellCoord, dim: u32) -> Self {
        debug_assert!(lo.col <= hi.col && lo.row <= hi.row);
        debug_assert!(hi.col < dim && hi.row < dim);
        Self {
            c0: lo.col,
            c1: hi.col,
            r0: lo.row,
            r1: hi.row,
            dim,
        }
    }

    /// The cells of the base block itself (row-major).
    pub fn base_cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let (c0, c1) = (self.c0, self.c1);
        (self.r0..=self.r1).flat_map(move |row| (c0..=c1).map(move |col| CellCoord::new(col, row)))
    }

    /// The strip `DIR_lvl`, or `None` when it lies entirely outside the
    /// grid (that direction is exhausted at and beyond `lvl`).
    ///
    /// Construction (DESIGN.md §5): for level `lvl ≥ 0`,
    /// `U_lvl` = row `r1+lvl+1`, cols `[c0−lvl−1, c1+lvl]`;
    /// `R_lvl` = col `c1+lvl+1`, rows `[r0−lvl, r1+lvl+1]`;
    /// `D_lvl` = row `r0−lvl−1`, cols `[c0−lvl, c1+lvl+1]`;
    /// `L_lvl` = col `c0−lvl−1`, rows `[r0−lvl−1, r1+lvl]`.
    /// Each ring tiles the boundary of the base block expanded by `lvl+1`
    /// cells exactly once.
    pub fn strip(&self, dir: Direction, lvl: u32) -> Option<Strip> {
        let dim = self.dim as i64;
        let lvl_i = lvl as i64;
        let (c0, c1, r0, r1) = (
            self.c0 as i64,
            self.c1 as i64,
            self.r0 as i64,
            self.r1 as i64,
        );
        let (fixed, cross_lo, cross_hi) = match dir {
            Direction::Up => (r1 + lvl_i + 1, c0 - lvl_i - 1, c1 + lvl_i),
            Direction::Right => (c1 + lvl_i + 1, r0 - lvl_i, r1 + lvl_i + 1),
            Direction::Down => (r0 - lvl_i - 1, c0 - lvl_i, c1 + lvl_i + 1),
            Direction::Left => (c0 - lvl_i - 1, r0 - lvl_i - 1, r1 + lvl_i),
        };
        if fixed < 0 || fixed >= dim {
            return None;
        }
        let lo = cross_lo.max(0);
        let hi = cross_hi.min(dim - 1);
        debug_assert!(lo <= hi, "clipped strip cannot be empty: {dir:?} {lvl}");
        Some(Strip {
            dir,
            level: lvl,
            fixed: fixed as u32,
            cross: (lo as u32, hi as u32),
        })
    }

    /// `mindist(DIR_lvl, q)` for a query point `q` located inside (or on)
    /// the base block: the pure axis distance from `q` to the strip's near
    /// edge (Lemma 3.1). `δ = 1/dim`.
    ///
    /// For clipped strips this is a (safe) lower bound — cell entries carry
    /// their exact `mindist` anyway.
    #[inline]
    pub fn strip_mindist(&self, dir: Direction, lvl: u32, q: Point) -> f64 {
        let delta = 1.0 / self.dim as f64;
        let d = match dir {
            Direction::Up => (self.r1 + lvl + 1) as f64 * delta - q.y,
            Direction::Down => q.y - (self.r0 as f64 - lvl as f64) * delta,
            Direction::Right => (self.c1 + lvl + 1) as f64 * delta - q.x,
            Direction::Left => q.x - (self.c0 as f64 - lvl as f64) * delta,
        };
        // q on the base boundary can make d marginally negative through
        // rounding; distances are never negative.
        d.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::Rect;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Collect every strip cell for rings 0..max_lvl around the base.
    fn tile(pw: &Pinwheel, max_lvl: u32) -> HashMap<CellCoord, (Direction, u32)> {
        let mut seen = HashMap::new();
        for dir in Direction::ALL {
            for lvl in 0..=max_lvl {
                if let Some(strip) = pw.strip(dir, lvl) {
                    for c in strip.cells() {
                        let prev = seen.insert(c, (dir, lvl));
                        assert!(prev.is_none(), "cell {c} covered twice: {prev:?}");
                    }
                }
            }
        }
        seen
    }

    #[test]
    fn level0_around_center_cell_is_the_eight_neighbors() {
        let pw = Pinwheel::around_cell(CellCoord::new(4, 4), 9);
        let seen = tile(&pw, 0);
        assert_eq!(seen.len(), 8);
        for dc in -1i64..=1 {
            for dr in -1i64..=1 {
                if dc == 0 && dr == 0 {
                    continue;
                }
                let c = CellCoord::new((4 + dc) as u32, (4 + dr) as u32);
                assert!(seen.contains_key(&c), "missing neighbor {c}");
            }
        }
    }

    #[test]
    fn rings_tile_the_whole_grid_exactly_once() {
        let dim = 11u32;
        let pw = Pinwheel::around_cell(CellCoord::new(3, 7), dim);
        // Levels up to dim are guaranteed to cover the full grid.
        let mut seen = tile(&pw, dim);
        for c in pw.base_cells() {
            assert!(seen.insert(c, (Direction::Up, u32::MAX)).is_none());
        }
        assert_eq!(seen.len(), (dim * dim) as usize, "grid fully covered");
    }

    #[test]
    fn block_base_rings_tile_too() {
        let dim = 12u32;
        let pw = Pinwheel::around_block(CellCoord::new(4, 5), CellCoord::new(6, 8), dim);
        let mut seen = tile(&pw, dim);
        let base: Vec<_> = pw.base_cells().collect();
        assert_eq!(base.len(), 3 * 4);
        for c in base {
            assert!(seen.insert(c, (Direction::Up, u32::MAX)).is_none());
        }
        assert_eq!(seen.len(), (dim * dim) as usize);
    }

    #[test]
    fn exhausted_direction_returns_none() {
        // Query cell on the top row: U strips never exist.
        let pw = Pinwheel::around_cell(CellCoord::new(0, 7), 8);
        assert!(pw.strip(Direction::Up, 0).is_none());
        assert!(pw.strip(Direction::Left, 0).is_none());
        assert!(pw.strip(Direction::Down, 0).is_some());
        assert!(pw.strip(Direction::Down, 6).is_some());
        assert!(pw.strip(Direction::Down, 7).is_none());
    }

    #[test]
    fn lemma_3_1_mindist_increment_is_delta() {
        let dim = 16u32;
        let pw = Pinwheel::around_cell(CellCoord::new(5, 5), dim);
        let delta = 1.0 / dim as f64;
        let q = Point::new(5.3 * delta, 5.9 * delta); // inside cell (5,5)
        for dir in Direction::ALL {
            for lvl in 0..3 {
                let d0 = pw.strip_mindist(dir, lvl, q);
                let d1 = pw.strip_mindist(dir, lvl + 1, q);
                assert!(
                    (d1 - d0 - delta).abs() < 1e-12,
                    "{dir:?}: {d0} -> {d1} (δ={delta})"
                );
            }
        }
    }

    #[test]
    fn strip_mindist_lower_bounds_member_cells() {
        let dim = 16u32;
        let delta = 1.0 / dim as f64;
        let pw = Pinwheel::around_cell(CellCoord::new(8, 8), dim);
        let q = Point::new(8.5 * delta, 8.5 * delta);
        for dir in Direction::ALL {
            for lvl in 0..5 {
                let strip = pw.strip(dir, lvl).unwrap();
                let bound = pw.strip_mindist(dir, lvl, q);
                for c in strip.cells() {
                    let lo = Point::new(c.col as f64 * delta, c.row as f64 * delta);
                    let rect = Rect::new(lo, Point::new(lo.x + delta, lo.y + delta));
                    assert!(
                        rect.mindist(q) >= bound - 1e-12,
                        "{dir:?}{lvl} cell {c}: {} < {bound}",
                        rect.mindist(q)
                    );
                }
                // The bound is tight: some cell attains it (the one aligned
                // with q's projection, present while unclipped).
                let attained = strip.cells().any(|c| {
                    let lo = Point::new(c.col as f64 * delta, c.row as f64 * delta);
                    let rect = Rect::new(lo, Point::new(lo.x + delta, lo.y + delta));
                    (rect.mindist(q) - bound).abs() < 1e-12
                });
                assert!(attained, "{dir:?}{lvl}: bound not attained");
            }
        }
    }

    proptest! {
        #[test]
        fn pinwheel_tiles_any_center_any_grid(
            dim in 2u32..24,
            col in 0u32..24,
            row in 0u32..24,
        ) {
            let col = col % dim;
            let row = row % dim;
            let pw = Pinwheel::around_cell(CellCoord::new(col, row), dim);
            let mut seen = tile(&pw, dim);
            for c in pw.base_cells() {
                prop_assert!(seen.insert(c, (Direction::Up, u32::MAX)).is_none());
            }
            prop_assert_eq!(seen.len(), (dim * dim) as usize);
        }

        #[test]
        fn block_pinwheel_tiles(
            dim in 4u32..20,
            a in 0u32..20, b in 0u32..20, c in 0u32..20, d in 0u32..20,
        ) {
            let (c0, c1) = ((a % dim).min(b % dim), (a % dim).max(b % dim));
            let (r0, r1) = ((c % dim).min(d % dim), (c % dim).max(d % dim));
            let pw = Pinwheel::around_block(
                CellCoord::new(c0, r0), CellCoord::new(c1, r1), dim);
            let mut seen = tile(&pw, dim);
            for cell in pw.base_cells() {
                prop_assert!(seen.insert(cell, (Direction::Up, u32::MAX)).is_none());
            }
            prop_assert_eq!(seen.len(), (dim * dim) as usize);
        }
    }
}
