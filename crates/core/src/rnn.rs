//! Continuous *reverse* nearest neighbor (RNN) monitoring — the future
//! work named in the paper's conclusion ("we intend to explore … the
//! continuous monitoring for variations of NN search, such as reverse
//! NNs"), built entirely from the CPM machinery of this crate.
//!
//! An object `p` is a reverse nearest neighbor of the query `q` when `q`
//! lies closer to `p` than any other object does:
//! `p ∈ RNN(q) ⇔ ∄ p′ ≠ p : dist(p, p′) < dist(p, q)`.
//!
//! The implementation uses the classic *six-region* observation (Stanoi
//! et al. \[SRAA01\]): partition the space around `q` into six 60° wedges;
//! within one wedge, only the object nearest to `q` can possibly be an
//! RNN (any two objects with angular separation < 60° are closer to each
//! other than the farther one is to `q`). So:
//!
//! 1. **Candidates** — six sector-constrained continuous 1-NN queries,
//!    each an instantiation of the generic engine
//!    ([`crate::ShardedCpmEngine`], sequential by default) with a
//!    [`QuerySpec`] whose admission test is wedge/cell intersection.
//!    All CPM book-keeping (influence lists, visit lists, in/out merge)
//!    applies unchanged, so candidate maintenance touches only relevant
//!    updates.
//! 2. **Verification** — each candidate `c` is accepted iff the circle
//!    centered at `c` with radius `dist(c, q)` contains no other object,
//!    checked by a grid range scan (at most six tiny scans per query per
//!    cycle).

use std::f64::consts::TAU;

use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::{CellCoord, Grid, GridGeom, Metrics, ObjectEvent, QueryEvent};

use crate::engine::QuerySpec;
use crate::partition::{Direction, Pinwheel};

/// Number of wedges; 60° each makes the candidate lemma hold.
const SECTORS: u32 = 6;

/// Angle of `p` as seen from `origin`, normalized to `[0, 2π)`.
#[inline]
fn angle_from(origin: Point, p: Point) -> f64 {
    let a = (p.y - origin.y).atan2(p.x - origin.x);
    if a < 0.0 {
        a + TAU
    } else {
        a
    }
}

/// The wedge index of `p` around `origin` (half-open 60° ranges, so every
/// point belongs to exactly one sector; `p == origin` maps to sector 0).
#[inline]
pub fn sector_of(origin: Point, p: Point) -> u32 {
    let a = angle_from(origin, p);
    let s = (a / (TAU / SECTORS as f64)) as u32;
    s.min(SECTORS - 1)
}

/// Does the ray from `origin` with direction `(dx, dy)` hit `rect`?
/// (Slab method; touching an edge counts.)
fn ray_hits_rect(origin: Point, dx: f64, dy: f64, rect: &Rect) -> bool {
    let mut t_min = 0.0f64;
    let mut t_max = f64::INFINITY;
    for (o, d, lo, hi) in [
        (origin.x, dx, rect.lo.x, rect.hi.x),
        (origin.y, dy, rect.lo.y, rect.hi.y),
    ] {
        if d.abs() < 1e-15 {
            if o < lo || o > hi {
                return false;
            }
        } else {
            let (mut t0, mut t1) = ((lo - o) / d, (hi - o) / d);
            if t0 > t1 {
                std::mem::swap(&mut t0, &mut t1);
            }
            t_min = t_min.max(t0);
            t_max = t_max.min(t1);
            if t_min > t_max {
                return false;
            }
        }
    }
    true
}

/// Does the 60° wedge `sector` around `origin` intersect `rect`?
///
/// Exact for convex rectangles and wedges narrower than 180°: they
/// intersect iff the apex is inside, a rectangle corner lies in the
/// wedge, or one of the wedge's boundary rays crosses the rectangle.
pub fn sector_intersects_rect(origin: Point, sector: u32, rect: &Rect) -> bool {
    if rect.contains(origin) {
        return true;
    }
    let corners = [
        rect.lo,
        Point::new(rect.hi.x, rect.lo.y),
        rect.hi,
        Point::new(rect.lo.x, rect.hi.y),
    ];
    if corners.iter().any(|&c| sector_of(origin, c) == sector) {
        return true;
    }
    let step = TAU / SECTORS as f64;
    for angle in [sector as f64 * step, (sector as f64 + 1.0) * step] {
        if ray_hits_rect(origin, angle.cos(), angle.sin(), rect) {
            return true;
        }
    }
    false
}

/// One 60° wedge of a reverse-NN registration: a sector-constrained
/// continuous 1-NN query on `q`, the candidate-generation unit of the
/// six-region method. A server-level RNN query
/// ([`crate::CpmServer::install_rnn`]) expands into six of these on
/// reserved internal ids; their winners are then filtered by circle
/// verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RnnQuery {
    q: Point,
    sector: u32,
}

impl RnnQuery {
    /// The wedge `sector ∈ 0..6` around query point `q`.
    ///
    /// # Panics
    /// Panics if `sector >= 6`.
    pub fn new(q: Point, sector: u32) -> Self {
        assert!(sector < SECTORS, "sector out of range");
        Self { q, sector }
    }

    /// The query point.
    #[must_use]
    pub fn q(&self) -> Point {
        self.q
    }

    /// The wedge index (`0..6`).
    #[must_use]
    pub fn sector(&self) -> u32 {
        self.sector
    }
}

impl QuerySpec for RnnQuery {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        if sector_of(self.q, p) == self.sector {
            self.q.dist(p)
        } else {
            f64::INFINITY
        }
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        let c = geom.cell_of(self.q);
        (c, c)
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        geom.mindist(cell, self.q)
    }

    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        pw.strip_mindist(dir, lvl, self.q)
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        delta
    }

    #[inline]
    fn admits_cell(&self, geom: GridGeom, cell: CellCoord) -> bool {
        sector_intersects_rect(self.q, self.sector, &geom.cell_rect(cell))
    }

    #[inline]
    fn kind(&self) -> cpm_grid::QueryKind {
        cpm_grid::QueryKind::Rnn
    }
}

/// Continuous reverse-NN monitor — a **compatibility shim** over
/// [`crate::CpmServer`], which owns the six-region composition
/// (sector-constrained candidate queries on reserved internal ids plus
/// per-cycle circle verification). New code should use the server
/// directly ([`crate::CpmServer::install_rnn`]); this type keeps the
/// original per-kind surface, including [`QueryEvent`]-driven query
/// churn.
///
/// RNN ids must fit the server's sector-id mapping (roughly the bottom
/// 357M ids; the old monitor accepted up to `u32::MAX / 6`).
///
/// # Example
///
/// ```
/// use cpm_core::rnn::CpmRnnMonitor;
/// use cpm_geom::{ObjectId, Point, QueryId};
///
/// let mut monitor = CpmRnnMonitor::new(64);
/// monitor.populate([
///     (ObjectId(0), Point::new(0.52, 0.50)), // next to the query: an RNN
///     (ObjectId(1), Point::new(0.80, 0.80)), // its NN is object 2, not q
///     (ObjectId(2), Point::new(0.82, 0.80)),
/// ]);
/// monitor.install_query(QueryId(0), Point::new(0.5, 0.5));
/// assert_eq!(monitor.result(QueryId(0)).unwrap(), &[ObjectId(0)]);
/// ```
#[derive(Debug)]
pub struct CpmRnnMonitor {
    server: crate::CpmServer,
}

impl CpmRnnMonitor {
    /// Create a sequential monitor over an empty `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self::new_sharded(dim, 1)
    }

    /// Create a monitor whose candidate maintenance (the six
    /// sector-constrained 1-NN queries per RNN query) runs across
    /// `shards ≥ 1` worker threads (`shards = 1` is sequential; candidate
    /// results are bit-identical for every shard count).
    pub fn new_sharded(dim: u32, shards: usize) -> Self {
        Self {
            server: crate::CpmServerBuilder::new(dim).shards(shards).build(),
        }
    }

    /// Bulk-load objects before any query is installed.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        self.server.populate(objects);
    }

    /// The object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<cpm_grid::DynIndex> {
        self.server.grid()
    }

    /// Combined work counters (candidate maintenance + verification).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.server.metrics()
    }

    /// Install a continuous RNN query at `pos` and report its initial
    /// result.
    ///
    /// # Panics
    /// Panics if `id` is already installed or too large for the server's
    /// sector-id mapping.
    pub fn install_query(&mut self, id: QueryId, pos: Point) -> &[ObjectId] {
        let h = self
            .server
            .install_rnn(id, pos)
            .unwrap_or_else(|e| panic!("{e}"));
        self.server.rnn_result(h).expect("just installed")
    }

    /// Terminate an RNN query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.server.terminate(id).is_ok()
    }

    /// Current RNN set of query `id`, sorted by object id.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[ObjectId]> {
        self.server.rnn_result(id)
    }

    /// Run one processing cycle. Returns the queries whose RNN set
    /// changed (relative to before this call, so queries installed or
    /// moved by `query_events` report their fresh set as a change).
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        // Apply query churn through the server's direct RNN surface,
        // remembering each touched query's pre-cycle result so the
        // changed list keeps the monitor's original semantics.
        let mut touched: Vec<(QueryId, Vec<ObjectId>)> = Vec::new();
        for ev in query_events {
            match *ev {
                QueryEvent::Install { id, pos, .. } => {
                    touched.push((id, Vec::new()));
                    let _ = self
                        .server
                        .install_rnn(id, pos)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                QueryEvent::Move { id, to } => {
                    let prev = self
                        .server
                        .rnn_result(id)
                        .unwrap_or_else(|| panic!("move of unknown query {id}"))
                        .to_vec();
                    touched.push((id, prev));
                    // Deferred variant: the cycle below re-verifies every
                    // registration anyway, so the eager verification of
                    // `update_rnn` would be computed twice and discarded.
                    self.server
                        .move_rnn_sectors(id, to)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                QueryEvent::Terminate { id } => {
                    let _ = self.server.terminate(id);
                }
            }
        }
        // Legacy monitor surface: clamp stray coordinates and keep each
        // object's final event, as sequential application always did,
        // before the server's strict ingest validation.
        let object_events = crate::server::sanitize_object_events(object_events);
        let mut changed = self
            .server
            .process_cycle(&object_events, &[])
            .unwrap_or_else(|e| panic!("{e}"));
        for (id, prev) in touched {
            if self.server.rnn_result(id).is_some_and(|now| now != prev) {
                changed.push(id);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Verify internal invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.server.check_invariants();
    }

    /// Number of installed RNN queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.server.query_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force RNN: p ∈ RNN(q) iff no other object is strictly closer
    /// to p than q is.
    fn brute_rnn(objects: &[(ObjectId, Point)], q: Point) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for &(id, p) in objects {
            let dq = p.dist(q);
            let dominated = objects.iter().any(|&(o, op)| o != id && p.dist(op) < dq);
            if !dominated {
                out.push(id);
            }
        }
        out.sort_unstable();
        out
    }

    fn live_objects(m: &CpmRnnMonitor) -> Vec<(ObjectId, Point)> {
        m.grid().iter_objects().collect()
    }

    #[test]
    fn sector_assignment_partitions_the_plane() {
        let origin = Point::new(0.5, 0.5);
        for i in 0..360 {
            let a = i as f64 * TAU / 360.0;
            let p = Point::new(0.5 + 0.2 * a.cos(), 0.5 + 0.2 * a.sin());
            let s = sector_of(origin, p);
            assert!(s < SECTORS);
            let expected = ((i as f64 / 60.0).floor() as u32).min(5);
            if i % 60 == 0 {
                // Exact sector boundaries land on either side after the
                // cos/sin/atan2 round trip; only consistency matters (the
                // same sector_of decides candidates and membership).
                let alt = (expected + SECTORS - 1) % SECTORS;
                assert!(s == expected || s == alt, "angle {i}°: got {s}");
            } else {
                assert_eq!(s, expected, "angle {i}°");
            }
        }
    }

    #[test]
    fn wedge_rect_intersection_basics() {
        let q = Point::new(0.5, 0.5);
        // A rect due east intersects sector 0 ([0°, 60°)) and 5 but not 2-4.
        let east = Rect::new(Point::new(0.8, 0.48), Point::new(0.9, 0.52));
        assert!(sector_intersects_rect(q, 0, &east));
        assert!(sector_intersects_rect(q, 5, &east));
        assert!(!sector_intersects_rect(q, 2, &east));
        assert!(!sector_intersects_rect(q, 3, &east));
        // The apex cell intersects every sector.
        let home = Rect::new(Point::new(0.45, 0.45), Point::new(0.55, 0.55));
        for s in 0..SECTORS {
            assert!(sector_intersects_rect(q, s, &home));
        }
        // A narrow wedge passing *between* two corners: rect far north,
        // sector 1 covers [60°, 120°), its rays cross the rect body.
        let north = Rect::new(Point::new(0.3, 0.9), Point::new(0.7, 0.95));
        assert!(sector_intersects_rect(q, 1, &north));
    }

    proptest! {
        /// If the test says "no intersection", no sampled point of the
        /// rect may fall inside the wedge.
        #[test]
        fn non_intersection_is_sound(
            qx in 0.05..0.95f64, qy in 0.05..0.95f64,
            ax in 0.0..1.0f64, ay in 0.0..1.0f64,
            w in 0.01..0.3f64, h in 0.01..0.3f64,
            sector in 0u32..6,
        ) {
            let q = Point::new(qx, qy);
            let lo = Point::new(ax.min(0.99), ay.min(0.99));
            let rect = Rect::new(lo, Point::new((lo.x + w).min(1.0), (lo.y + h).min(1.0)));
            if !sector_intersects_rect(q, sector, &rect) {
                for i in 0..12 {
                    for j in 0..12 {
                        let p = Point::new(
                            rect.lo.x + rect.width() * i as f64 / 11.0,
                            rect.lo.y + rect.height() * j as f64 / 11.0,
                        );
                        if p != q {
                            prop_assert_ne!(
                                sector_of(q, p), sector,
                                "claimed disjoint but {:?} is inside", p
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn doc_example_shape() {
        let mut m = CpmRnnMonitor::new(64);
        m.populate([
            (ObjectId(0), Point::new(0.52, 0.50)),
            (ObjectId(1), Point::new(0.80, 0.80)),
            (ObjectId(2), Point::new(0.82, 0.80)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5));
        assert_eq!(m.result(QueryId(0)).unwrap(), &[ObjectId(0)]);
        let objs = live_objects(&m);
        assert_eq!(
            m.result(QueryId(0)).unwrap(),
            brute_rnn(&objs, Point::new(0.5, 0.5))
        );
    }

    #[test]
    fn updates_track_brute_force() {
        let mut rng = StdRng::seed_from_u64(0x4E4E);
        for trial in 0..4 {
            let mut m = CpmRnnMonitor::new([8, 16, 32, 64][trial]);
            let n = 30u32;
            m.populate((0..n).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
            let q0 = Point::new(rng.gen(), rng.gen());
            let q1 = Point::new(rng.gen(), rng.gen());
            m.install_query(QueryId(0), q0);
            m.install_query(QueryId(1), q1);
            let mut qpos = [q0, q1];
            for _ in 0..20 {
                let mut events = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(1..6) {
                    let id = rng.gen_range(0..n);
                    if seen.insert(id) {
                        events.push(ObjectEvent::Move {
                            id: ObjectId(id),
                            to: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                }
                let mut qev = Vec::new();
                if rng.gen_bool(0.3) {
                    let qi = rng.gen_range(0..2u32);
                    qpos[qi as usize] = Point::new(rng.gen(), rng.gen());
                    qev.push(QueryEvent::Move {
                        id: QueryId(qi),
                        to: qpos[qi as usize],
                    });
                }
                m.process_cycle(&events, &qev);
                let objs = live_objects(&m);
                for qi in 0..2u32 {
                    assert_eq!(
                        m.result(QueryId(qi)).unwrap(),
                        brute_rnn(&objs, qpos[qi as usize]),
                        "trial {trial}, query {qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn appear_disappear_churn() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = CpmRnnMonitor::new(16);
        m.populate((0..10u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        let q = Point::new(0.5, 0.5);
        m.install_query(QueryId(0), q);
        let mut live: Vec<u32> = (0..10).collect();
        let mut next = 10u32;
        for _ in 0..25 {
            let mut events = Vec::new();
            if live.len() > 2 && rng.gen_bool(0.5) {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                events.push(ObjectEvent::Disappear { id: ObjectId(id) });
            }
            if rng.gen_bool(0.6) {
                events.push(ObjectEvent::Appear {
                    id: ObjectId(next),
                    pos: Point::new(rng.gen(), rng.gen()),
                });
                live.push(next);
                next += 1;
            }
            m.process_cycle(&events, &[]);
            let objs = live_objects(&m);
            assert_eq!(m.result(QueryId(0)).unwrap(), brute_rnn(&objs, q));
        }
    }

    #[test]
    fn terminate_cleans_engine_state() {
        let mut m = CpmRnnMonitor::new(16);
        m.populate([(ObjectId(0), Point::new(0.4, 0.4))]);
        m.install_query(QueryId(3), Point::new(0.5, 0.5));
        assert!(m.terminate_query(QueryId(3)));
        assert!(!m.terminate_query(QueryId(3)));
        assert!(m.result(QueryId(3)).is_none());
        assert_eq!(m.query_count(), 0);
        // The server's invariant check asserts the six sector queries are
        // gone from the engine too.
        m.check_invariants();
    }
}
