//! Crash-consistent durability for the CPM engines: logical snapshots,
//! an append-only operation journal, and the [`DurableCpmServer`] wrapper
//! that combines the two into a checkpoint/replay recovery story.
//!
//! # Design
//!
//! A snapshot is **logical**, not a memory image: it stores the object
//! table, every installed query's `(spec, k)` plus its captured result
//! list, the engine epoch, the merged work counters, and the re-grid
//! controller's EMA state. Restore rebuilds the grid and re-registers the
//! queries from scratch in ascending id order — the exact discipline the
//! online re-grid path uses — so a restored engine is bit-identical to
//! the captured one in everything observable: results, changed lists and
//! delta streams (the recovery conformance suite asserts this at several
//! shard counts). The captured result lists double as a tripwire: if a
//! recomputed list ever differed from its captured counterpart, the
//! restore path parks the difference in the re-grid diff channel rather
//! than silently diverging.
//!
//! The journal is **write-after-commit**: a record is appended only after
//! the operation it describes succeeded, so a replayed journal never
//! applies an operation the original server rejected. A crash between
//! commit and append loses at most that one operation — exactly the
//! at-least-once redelivery window an upstream event source must cover
//! anyway (and which [`cpm_wire::Journal::replay`]'s deduplication makes
//! safe to re-send).
//!
//! Recovery = decode the snapshot frame (every corruption class surfaces
//! as a typed [`WireError`]), rebuild the server, then replay the journal
//! tail past the snapshot's watermark. A torn or corrupt journal *tail*
//! is crash residue, reported in the [`RecoveryReport`] and recovered
//! around; corruption anywhere load-bearing is a hard [`RecoveryError`].

use cpm_geom::{ObjectId, Point, QueryId};
use cpm_grid::{DynIndex, IndexKind, Metrics, ObjectEvent, QueryKind, SpatialIndex};
use cpm_wire::{
    decode_framed, encode_framed, Decode, Encode, Journal, Reader, WireError, Writer,
    FRAME_SNAPSHOT,
};

use crate::any::AnyQuerySpec;
use crate::delta::CycleDeltas;
use crate::engine::{PointQuery, QuerySpec, SpecEvent};
use crate::error::CpmError;
use crate::neighbors::Neighbor;
use crate::server::{CpmServer, QueryHandle, RESERVED_ID_BASE, SECTORS};
use crate::shard::ShardedCpmEngine;

/// A logical snapshot of a [`ShardedCpmEngine`]: everything needed to
/// rebuild an observably identical engine from scratch.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<S> {
    /// Grid resolution (cells per axis).
    pub dim: u32,
    /// The spatial-index backend the grid was built with. Restore
    /// rebuilds the same structure; [`EngineSnapshot::restore_expecting`]
    /// rejects a mismatched deployment with
    /// [`CpmError::IndexMismatch`].
    pub index: IndexKind,
    /// Worker-shard count.
    pub shards: usize,
    /// Whether the engine captures per-cycle deltas.
    pub collects_deltas: bool,
    /// The re-grid policy in force.
    pub policy: crate::regrid::RegridPolicy,
    /// The re-grid controller's observation state
    /// `(f_obj, f_qry, skew, primed, last_eval, last_regrid)`.
    pub regrid_state: (f64, f64, f64, bool, u64, u64),
    /// The processing-cycle counter at capture time.
    pub epoch: u64,
    /// Merged work counters at capture time.
    pub metrics: Metrics,
    /// Every live object, ascending by id.
    pub objects: Vec<(ObjectId, Point)>,
    /// Every installed query — `(id, spec, k, captured result)` —
    /// ascending by id.
    pub queries: Vec<(QueryId, S, usize, Vec<Neighbor>)>,
}

impl<S: QuerySpec + Clone + Send + Sync> EngineSnapshot<S> {
    /// Capture the engine's durable state (any index backend).
    #[must_use]
    pub fn capture<I: SpatialIndex>(engine: &ShardedCpmEngine<S, I>) -> Self {
        let mut objects: Vec<(ObjectId, Point)> = engine.grid().iter_objects().collect();
        objects.sort_unstable_by_key(|&(id, _)| id);
        let queries = engine
            .query_ids()
            .into_iter()
            .map(|id| {
                let st = engine.query_state(id).expect("listed query is installed");
                (id, st.spec.clone(), st.k(), st.best.neighbors().to_vec())
            })
            .collect();
        EngineSnapshot {
            dim: engine.grid().dim(),
            index: engine.grid().index().kind(),
            shards: engine.shard_count(),
            collects_deltas: engine.collects_deltas(),
            policy: *engine.regrid_policy(),
            regrid_state: engine.regrid_controller().export_state(),
            epoch: engine.epoch(),
            metrics: engine.metrics(),
            objects,
            queries,
        }
    }

    /// Rebuild an engine from this snapshot: rebuild the grid under the
    /// recorded index backend, populate it, then re-register every query
    /// from scratch in ascending id order (the re-grid discipline, so the
    /// result is bit-identical to the captured engine), then restore
    /// counters and the epoch.
    ///
    /// # Errors
    /// Propagates the registry error if a query cannot be re-installed
    /// (impossible for a snapshot that passed `Decode` validation).
    pub fn restore(&self) -> Result<ShardedCpmEngine<S, DynIndex>, CpmError> {
        let grid = cpm_grid::GridBuilder::new(self.dim)
            .index(self.index)
            .try_build()?;
        let mut engine = ShardedCpmEngine::with_grid(grid, self.shards);
        engine.set_regrid_policy(self.policy);
        engine
            .regrid_controller_mut()
            .import_state(self.regrid_state);
        if self.collects_deltas {
            engine.enable_deltas();
        }
        engine.populate(self.objects.iter().copied());
        for (id, spec, k, captured) in &self.queries {
            engine.restore_install(*id, spec.clone(), *k, captured)?;
        }
        engine.restore_metrics(self.metrics);
        engine.set_epoch_all(self.epoch);
        Ok(engine)
    }

    /// [`EngineSnapshot::restore`], guarded by the deployment's
    /// configured index backend: a snapshot captured under one
    /// [`IndexKind`] must not silently come back as another.
    ///
    /// # Errors
    /// [`CpmError::IndexMismatch`] when `configured` differs from the
    /// recorded kind; otherwise as [`EngineSnapshot::restore`].
    pub fn restore_expecting(
        &self,
        configured: IndexKind,
    ) -> Result<ShardedCpmEngine<S, DynIndex>, CpmError> {
        if self.index != configured {
            return Err(CpmError::IndexMismatch {
                expected: self.index,
                actual: configured,
            });
        }
        self.restore()
    }
}

impl<S: Encode> Encode for EngineSnapshot<S> {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.dim);
        self.index.encode(w);
        self.shards.encode(w);
        self.collects_deltas.encode(w);
        self.policy.encode(w);
        self.regrid_state.0.encode(w);
        self.regrid_state.1.encode(w);
        self.regrid_state.2.encode(w);
        self.regrid_state.3.encode(w);
        w.put_u64(self.regrid_state.4);
        w.put_u64(self.regrid_state.5);
        w.put_u64(self.epoch);
        self.metrics.encode(w);
        self.objects.encode(w);
        w.put_u32(u32::try_from(self.queries.len()).expect("query count fits a u32"));
        for (id, spec, k, captured) in &self.queries {
            id.encode(w);
            spec.encode(w);
            k.encode(w);
            captured.encode(w);
        }
    }
}

impl<S: Decode> Decode for EngineSnapshot<S> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let dim_at = r.offset();
        let dim = r.take_u32()?;
        if !(1..=4096).contains(&dim) {
            return Err(WireError::Invalid {
                offset: dim_at,
                what: "grid dimension outside 1..=4096",
            });
        }
        let index = IndexKind::decode(r)?;
        if index.check_dim(dim).is_err() {
            return Err(WireError::Invalid {
                offset: dim_at,
                what: "grid dimension rejected by the recorded index backend",
            });
        }
        let shards_at = r.offset();
        let shards = usize::decode(r)?;
        if !(1..=4096).contains(&shards) {
            return Err(WireError::Invalid {
                offset: shards_at,
                what: "shard count outside 1..=4096",
            });
        }
        let collects_deltas = bool::decode(r)?;
        let policy = crate::regrid::RegridPolicy::decode(r)?;
        let regrid_at = r.offset();
        let regrid_state = (
            r.take_f64()?,
            r.take_f64()?,
            r.take_f64()?,
            bool::decode(r)?,
            r.take_u64()?,
            r.take_u64()?,
        );
        if !regrid_state.0.is_finite()
            || !regrid_state.1.is_finite()
            || regrid_state.0 < 0.0
            || regrid_state.1 < 0.0
        {
            return Err(WireError::Invalid {
                offset: regrid_at,
                what: "regrid EMA state must be finite and non-negative",
            });
        }
        if !regrid_state.2.is_finite() || regrid_state.2 < 1.0 {
            return Err(WireError::Invalid {
                offset: regrid_at,
                what: "regrid skew EMA must be finite and at least 1",
            });
        }
        let epoch = r.take_u64()?;
        let metrics = Metrics::decode(r)?;
        let objects_at = r.offset();
        let objects: Vec<(ObjectId, Point)> = Vec::decode(r)?;
        for (i, &(id, p)) in objects.iter().enumerate() {
            if i > 0 && objects[i - 1].0 >= id {
                return Err(WireError::Invalid {
                    offset: objects_at,
                    what: "object table not strictly ascending by id",
                });
            }
            if !(0.0..=1.0).contains(&p.x) || !(0.0..=1.0).contains(&p.y) {
                return Err(WireError::Invalid {
                    offset: objects_at,
                    what: "object position outside the unit workspace",
                });
            }
        }
        let queries_at = r.offset();
        let n_queries = r.take_len(8)?;
        let mut queries = Vec::with_capacity(n_queries);
        for i in 0..n_queries {
            let id = QueryId::decode(r)?;
            let spec = S::decode(r)?;
            let k_at = r.offset();
            let k = usize::decode(r)?;
            if k == 0 {
                return Err(WireError::Invalid {
                    offset: k_at,
                    what: "installed query with k = 0",
                });
            }
            let captured: Vec<Neighbor> = Vec::decode(r)?;
            if i > 0 {
                let prev: &(QueryId, S, usize, Vec<Neighbor>) = &queries[i - 1];
                if prev.0 >= id {
                    return Err(WireError::Invalid {
                        offset: queries_at,
                        what: "query table not strictly ascending by id",
                    });
                }
            }
            queries.push((id, spec, k, captured));
        }
        Ok(EngineSnapshot {
            dim,
            index,
            shards,
            collects_deltas,
            policy,
            regrid_state,
            epoch,
            metrics,
            objects,
            queries,
        })
    }
}

/// A full [`CpmServer`] snapshot: the engine state plus the server-side
/// registries (kind map, reverse-NN composition state, verification
/// counters) and the journal watermark the snapshot was taken at.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The engine's logical state.
    pub engine: EngineSnapshot<AnyQuerySpec>,
    /// The user-visible kind registry, ascending by id.
    pub kinds: Vec<(QueryId, QueryKind)>,
    /// Reverse-NN composition state — `(id, query point, verified set)`
    /// — ascending by id.
    pub rnn: Vec<(QueryId, Point, Vec<ObjectId>)>,
    /// The RNN circle-verification counters.
    pub verify_metrics: Metrics,
    /// Sequence number of the last journal record folded into this
    /// snapshot; recovery replays records *after* it.
    pub watermark: u64,
}

impl Snapshot {
    /// Capture the server's durable state at journal `watermark`.
    #[must_use]
    pub fn capture(server: &CpmServer, watermark: u64) -> Self {
        let (kinds, rnn, verify_metrics) = server.export_registry();
        Snapshot {
            engine: EngineSnapshot::capture(server.engine()),
            kinds,
            rnn,
            verify_metrics,
            watermark,
        }
    }

    /// Encode as a single checksummed [`FRAME_SNAPSHOT`] frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        encode_framed(FRAME_SNAPSHOT, self)
    }

    /// Decode from a [`FRAME_SNAPSHOT`] frame, verifying the checksum and
    /// every structural invariant.
    ///
    /// # Errors
    /// A typed [`WireError`] locating the corruption.
    pub fn from_frame(bytes: &[u8]) -> Result<Self, WireError> {
        decode_framed(FRAME_SNAPSHOT, bytes)
    }

    /// Cross-validate the decoded registries against the engine's query
    /// table, so a corrupted-but-checksum-valid artifact (or a hand-built
    /// one) can never assemble a server whose internal maps disagree —
    /// the panics `CpmServer` reserves for programming errors must stay
    /// unreachable from input data.
    fn validate(&self) -> Result<(), WireError> {
        let invalid = |what: &'static str| WireError::Invalid { offset: 0, what };
        let mut engine_kinds: std::collections::BTreeMap<QueryId, QueryKind> =
            std::collections::BTreeMap::new();
        for (id, spec, _, _) in &self.engine.queries {
            engine_kinds.insert(*id, spec.kind());
        }
        for w in self.kinds.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(invalid("kind registry not strictly ascending by id"));
            }
        }
        for w in self.rnn.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(invalid("RNN registry not strictly ascending by id"));
            }
        }
        let mut expected_engine = 0usize;
        for &(id, kind) in &self.kinds {
            if id.0 >= RESERVED_ID_BASE {
                return Err(invalid("user query id in the reserved band"));
            }
            if kind == QueryKind::Rnn {
                let st = self
                    .rnn
                    .iter()
                    .find(|&&(rid, _, _)| rid == id)
                    .ok_or_else(|| invalid("RNN registration without composition state"))?;
                for sector in 0..SECTORS {
                    let sid = CpmServer::sector_id(id, sector);
                    match engine_kinds.get(&sid) {
                        Some(QueryKind::Rnn) => {}
                        _ => return Err(invalid("RNN registration missing a sector candidate")),
                    }
                    // The sector spec must agree with the registration's
                    // query point and its own sector index.
                    let (_, spec, _, _) = self
                        .engine
                        .queries
                        .iter()
                        .find(|(qid, _, _, _)| *qid == sid)
                        .expect("sector id present in engine_kinds");
                    match spec.as_rnn() {
                        Some(rq)
                            if rq.sector() == sector
                                && rq.q().x.to_bits() == st.1.x.to_bits()
                                && rq.q().y.to_bits() == st.1.y.to_bits() => {}
                        _ => return Err(invalid("sector candidate disagrees with RNN state")),
                    }
                }
                expected_engine += SECTORS as usize;
            } else {
                match engine_kinds.get(&id) {
                    Some(&ek) if ek == kind => {}
                    Some(_) => return Err(invalid("registry kind disagrees with the query spec")),
                    None => return Err(invalid("registered query missing from the engine")),
                }
                expected_engine += 1;
            }
        }
        let rnn_regs = self
            .kinds
            .iter()
            .filter(|&&(_, k)| k == QueryKind::Rnn)
            .count();
        if rnn_regs != self.rnn.len() {
            return Err(invalid("orphaned RNN composition state"));
        }
        if expected_engine != self.engine.queries.len() {
            return Err(invalid("engine queries not covered by the registry"));
        }
        Ok(())
    }
}

impl Encode for Snapshot {
    fn encode(&self, w: &mut Writer) {
        self.engine.encode(w);
        self.kinds.encode(w);
        self.rnn.encode(w);
        self.verify_metrics.encode(w);
        w.put_u64(self.watermark);
    }
}

impl Decode for Snapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let snap = Snapshot {
            engine: EngineSnapshot::decode(r)?,
            kinds: Vec::decode(r)?,
            rnn: Vec::decode(r)?,
            verify_metrics: Metrics::decode(r)?,
            watermark: r.take_u64()?,
        };
        snap.validate()?;
        Ok(snap)
    }
}

impl CpmServer {
    /// Rebuild a server from a snapshot. The restored server is
    /// observably identical to the captured one: same results, same
    /// epoch, and bit-identical changed lists and delta streams on every
    /// subsequent cycle (the recovery conformance suite's core claim).
    ///
    /// # Errors
    /// Propagates the registry error if a query cannot be re-installed
    /// (impossible for a snapshot that passed [`Snapshot::from_frame`]).
    pub fn restore(snapshot: &Snapshot) -> Result<CpmServer, CpmError> {
        let engine = snapshot.engine.restore()?;
        Ok(CpmServer::assemble(
            engine,
            snapshot.engine.collects_deltas,
            snapshot.kinds.clone(),
            snapshot.rnn.clone(),
            snapshot.verify_metrics,
        ))
    }

    /// [`CpmServer::restore`], guarded by the deployment's configured
    /// index backend: recovery must rebuild the structure the durable
    /// state describes, so a snapshot captured under one [`IndexKind`]
    /// refuses to come back under another.
    ///
    /// # Errors
    /// [`CpmError::IndexMismatch`] when `configured` differs from the
    /// snapshot's recorded kind; otherwise as [`CpmServer::restore`].
    pub fn restore_expecting(
        snapshot: &Snapshot,
        configured: IndexKind,
    ) -> Result<CpmServer, CpmError> {
        if snapshot.engine.index != configured {
            return Err(CpmError::IndexMismatch {
                expected: snapshot.engine.index,
                actual: configured,
            });
        }
        Self::restore(snapshot)
    }
}

/// One durable operation, as the journal records it. `Cycle` carries the
/// full event batches; the direct-call surface (typed installs, RNN
/// moves, terminations) gets one record per call.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// One processing cycle's input batches.
    Cycle {
        /// The cycle's object events.
        object_events: Vec<ObjectEvent>,
        /// The cycle's query events.
        query_events: Vec<SpecEvent<AnyQuerySpec>>,
    },
    /// A typed single-spec install (`install_knn` / `install_range` /
    /// `install_ann` / `install_constrained`). Never an RNN spec — those
    /// are composite and recorded as [`JournalRecord::InstallRnn`].
    Install {
        /// The query id.
        id: QueryId,
        /// The query geometry.
        spec: AnyQuerySpec,
        /// The result size.
        k: usize,
    },
    /// An `install_rnn` call.
    InstallRnn {
        /// The registration id.
        id: QueryId,
        /// The query point.
        pos: Point,
    },
    /// An `update_spec` (or typed update) call.
    Update {
        /// The query id.
        id: QueryId,
        /// The replacement geometry.
        spec: AnyQuerySpec,
    },
    /// An `update_rnn` call.
    UpdateRnn {
        /// The registration id.
        id: QueryId,
        /// The new query point.
        pos: Point,
    },
    /// A `terminate` call.
    Terminate {
        /// The query id.
        id: QueryId,
    },
}

impl JournalRecord {
    /// Re-apply this operation to a restored server (the replay path).
    fn apply(&self, server: &mut CpmServer, scratch: &mut CycleDeltas) -> Result<(), CpmError> {
        match self {
            JournalRecord::Cycle {
                object_events,
                query_events,
            } => {
                if server.collects_deltas() {
                    server.process_cycle_with_deltas_into(object_events, query_events, scratch)
                } else {
                    server
                        .process_cycle(object_events, query_events)
                        .map(|_| ())
                }
            }
            JournalRecord::Install { id, spec, k } => match spec {
                AnyQuerySpec::Knn(PointQuery(p)) => server.install_knn(*id, *p, *k).map(|_| ()),
                AnyQuerySpec::Range(q) => server.install_range(*id, *q).map(|_| ()),
                AnyQuerySpec::Ann(q) => server.install_ann(*id, q.clone(), *k).map(|_| ()),
                AnyQuerySpec::Constrained(q) => {
                    server.install_constrained(*id, q.clone(), *k).map(|_| ())
                }
                AnyQuerySpec::Rnn(_) => Err(CpmError::CompositeQuery(*id)),
            },
            JournalRecord::InstallRnn { id, pos } => server.install_rnn(*id, *pos).map(|_| ()),
            JournalRecord::Update { id, spec } => server.update_spec(*id, spec.clone()).map(|_| ()),
            JournalRecord::UpdateRnn { id, pos } => match server.kind_of(*id) {
                None => Err(CpmError::UnknownQuery(*id)),
                Some(QueryKind::Rnn) => {
                    let h = server.rnn_handle(*id).expect("kind-checked");
                    server.update_rnn(h, *pos).map(|_| ())
                }
                Some(actual) => Err(CpmError::KindMismatch {
                    id: *id,
                    expected: QueryKind::Rnn,
                    actual,
                }),
            },
            JournalRecord::Terminate { id } => server.terminate(*id),
        }
    }
}

impl Encode for JournalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalRecord::Cycle {
                object_events,
                query_events,
            } => {
                w.put_u8(0);
                object_events.encode(w);
                query_events.encode(w);
            }
            JournalRecord::Install { id, spec, k } => {
                w.put_u8(1);
                id.encode(w);
                spec.encode(w);
                k.encode(w);
            }
            JournalRecord::InstallRnn { id, pos } => {
                w.put_u8(2);
                id.encode(w);
                pos.encode(w);
            }
            JournalRecord::Update { id, spec } => {
                w.put_u8(3);
                id.encode(w);
                spec.encode(w);
            }
            JournalRecord::UpdateRnn { id, pos } => {
                w.put_u8(4);
                id.encode(w);
                pos.encode(w);
            }
            JournalRecord::Terminate { id } => {
                w.put_u8(5);
                id.encode(w);
            }
        }
    }
}

impl Decode for JournalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(JournalRecord::Cycle {
                object_events: Vec::decode(r)?,
                query_events: Vec::decode(r)?,
            }),
            1 => {
                let id = QueryId::decode(r)?;
                let spec_at = r.offset();
                let spec = AnyQuerySpec::decode(r)?;
                if spec.as_rnn().is_some() {
                    return Err(WireError::Invalid {
                        offset: spec_at,
                        what: "single-spec install record with a composite RNN spec",
                    });
                }
                let k_at = r.offset();
                let k = usize::decode(r)?;
                if k == 0 {
                    return Err(WireError::Invalid {
                        offset: k_at,
                        what: "install record with k = 0",
                    });
                }
                Ok(JournalRecord::Install { id, spec, k })
            }
            2 => Ok(JournalRecord::InstallRnn {
                id: QueryId::decode(r)?,
                pos: Point::decode(r)?,
            }),
            3 => Ok(JournalRecord::Update {
                id: QueryId::decode(r)?,
                spec: AnyQuerySpec::decode(r)?,
            }),
            4 => Ok(JournalRecord::UpdateRnn {
                id: QueryId::decode(r)?,
                pos: Point::decode(r)?,
            }),
            5 => Ok(JournalRecord::Terminate {
                id: QueryId::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown journal-record tag",
            }),
        }
    }
}

/// Why a recovery attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The snapshot or journal bytes did not decode (corruption anywhere
    /// load-bearing — the snapshot frame, or a non-tail journal
    /// inconsistency such as a sequence gap).
    Wire(WireError),
    /// A decoded journal record was rejected by the restored server — the
    /// journal and snapshot describe inconsistent histories.
    Apply {
        /// Sequence number of the rejected record.
        seq: u64,
        /// The registry error it produced.
        error: CpmError,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Wire(e) => write!(f, "recovery artifact corrupt: {e}"),
            RecoveryError::Apply { seq, error } => {
                write!(f, "journal record {seq} rejected on replay: {error}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WireError> for RecoveryError {
    fn from(e: WireError) -> Self {
        RecoveryError::Wire(e)
    }
}

/// What a successful [`DurableCpmServer::recover`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Journal records replayed on top of the snapshot.
    pub replayed: usize,
    /// The epoch the recovered server resumed at.
    pub epoch: u64,
    /// `Some` when the journal ended in crash residue (torn or corrupt
    /// tail); the records before it were replayed normally.
    pub tail_error: Option<WireError>,
}

/// A [`CpmServer`] wrapped with crash-consistent durability: every
/// mutating operation is journaled *after* it succeeds, and a checkpoint
/// policy periodically folds the journal into a fresh snapshot. See the
/// [module docs](self) for the recovery contract.
#[derive(Debug)]
pub struct DurableCpmServer {
    server: CpmServer,
    journal: Journal,
    /// Checkpoint after this many journaled cycles (0 = manual only).
    checkpoint_every: u64,
    cycles_since_checkpoint: u64,
    snapshot_bytes: Vec<u8>,
}

impl DurableCpmServer {
    /// Wrap `server`, taking an initial checkpoint. `checkpoint_every`
    /// re-checkpoints after that many journaled cycles (0 disables the
    /// automatic policy; [`DurableCpmServer::checkpoint`] remains
    /// available).
    #[must_use]
    pub fn new(server: CpmServer, checkpoint_every: u64) -> Self {
        let journal = Journal::new(0);
        let snapshot_bytes = Snapshot::capture(&server, journal.watermark()).to_frame();
        DurableCpmServer {
            server,
            journal,
            checkpoint_every,
            cycles_since_checkpoint: 0,
            snapshot_bytes,
        }
    }

    /// The wrapped server (read surface: results, metrics, epoch, …).
    #[must_use]
    pub fn server(&self) -> &CpmServer {
        &self.server
    }

    /// Unwrap, discarding the durability state.
    #[must_use]
    pub fn into_inner(self) -> CpmServer {
        self.server
    }

    /// The latest checkpoint's snapshot frame — what would live on stable
    /// storage.
    #[must_use]
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot_bytes
    }

    /// The journal bytes appended since the latest checkpoint.
    #[must_use]
    pub fn journal_bytes(&self) -> &[u8] {
        self.journal.bytes()
    }

    /// Sequence number of the most recently journaled operation.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.journal.watermark()
    }

    /// Fold the journal into a fresh snapshot now and truncate it.
    pub fn checkpoint(&mut self) {
        let watermark = self.journal.watermark();
        self.snapshot_bytes = Snapshot::capture(&self.server, watermark).to_frame();
        self.journal.truncate_to(watermark);
        self.cycles_since_checkpoint = 0;
    }

    fn journaled<T>(
        &mut self,
        record: &JournalRecord,
        op: impl FnOnce(&mut CpmServer) -> Result<T, CpmError>,
    ) -> Result<T, CpmError> {
        let out = op(&mut self.server)?;
        self.journal.append(&record.encode_to_vec());
        Ok(out)
    }

    /// Journaled [`CpmServer::install_knn`].
    pub fn install_knn(
        &mut self,
        id: QueryId,
        pos: Point,
        k: usize,
    ) -> Result<crate::server::KnnHandle, CpmError> {
        self.journaled(
            &JournalRecord::Install {
                id,
                spec: AnyQuerySpec::Knn(PointQuery(pos)),
                k,
            },
            |s| s.install_knn(id, pos, k),
        )
    }

    /// Journaled [`CpmServer::install_range`].
    pub fn install_range(
        &mut self,
        id: QueryId,
        query: crate::range::RangeQuery,
    ) -> Result<crate::server::RangeHandle, CpmError> {
        self.journaled(
            &JournalRecord::Install {
                id,
                spec: AnyQuerySpec::Range(query),
                k: crate::range::RangeQuery::UNBOUNDED_K,
            },
            |s| s.install_range(id, query),
        )
    }

    /// Journaled [`CpmServer::install_ann`].
    pub fn install_ann(
        &mut self,
        id: QueryId,
        query: crate::ann::AnnQuery,
        k: usize,
    ) -> Result<crate::server::AnnHandle, CpmError> {
        self.journaled(
            &JournalRecord::Install {
                id,
                spec: AnyQuerySpec::Ann(query.clone()),
                k,
            },
            |s| s.install_ann(id, query.clone(), k),
        )
    }

    /// Journaled [`CpmServer::install_constrained`].
    pub fn install_constrained(
        &mut self,
        id: QueryId,
        query: crate::constrained::ConstrainedQuery,
        k: usize,
    ) -> Result<crate::server::ConstrainedHandle, CpmError> {
        self.journaled(
            &JournalRecord::Install {
                id,
                spec: AnyQuerySpec::Constrained(query.clone()),
                k,
            },
            |s| s.install_constrained(id, query, k),
        )
    }

    /// Journaled [`CpmServer::install_rnn`].
    pub fn install_rnn(
        &mut self,
        id: QueryId,
        pos: Point,
    ) -> Result<crate::server::RnnHandle, CpmError> {
        self.journaled(&JournalRecord::InstallRnn { id, pos }, |s| {
            s.install_rnn(id, pos)
        })
    }

    /// Journaled [`CpmServer::update_spec`]; returns the recomputed
    /// result by value (the journal append ends the borrow).
    pub fn update_spec(
        &mut self,
        id: QueryId,
        spec: AnyQuerySpec,
    ) -> Result<Vec<Neighbor>, CpmError> {
        self.journaled(
            &JournalRecord::Update {
                id,
                spec: spec.clone(),
            },
            |s| s.update_spec(id, spec.clone()).map(<[Neighbor]>::to_vec),
        )
    }

    /// Journaled [`CpmServer::update_rnn`]; returns the re-verified set
    /// by value.
    pub fn update_rnn(
        &mut self,
        h: crate::server::RnnHandle,
        pos: Point,
    ) -> Result<Vec<ObjectId>, CpmError> {
        self.journaled(&JournalRecord::UpdateRnn { id: h.id(), pos }, |s| {
            s.update_rnn(h, pos).map(<[ObjectId]>::to_vec)
        })
    }

    /// Journaled [`CpmServer::terminate`].
    pub fn terminate(&mut self, id: impl Into<QueryId>) -> Result<(), CpmError> {
        let id = id.into();
        self.journaled(&JournalRecord::Terminate { id }, |s| s.terminate(id))
    }

    fn after_cycle(&mut self) {
        self.cycles_since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.cycles_since_checkpoint >= self.checkpoint_every {
            self.checkpoint();
        }
    }

    /// Journaled [`CpmServer::process_cycle`], applying the checkpoint
    /// policy after the cycle commits.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<Vec<QueryId>, CpmError> {
        let changed = self.journaled(
            &JournalRecord::Cycle {
                object_events: object_events.to_vec(),
                query_events: query_events.to_vec(),
            },
            |s| s.process_cycle(object_events, query_events),
        )?;
        self.after_cycle();
        Ok(changed)
    }

    /// Journaled [`CpmServer::process_cycle_with_deltas_into`], applying
    /// the checkpoint policy after the cycle commits.
    pub fn process_cycle_with_deltas_into(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
        out: &mut CycleDeltas,
    ) -> Result<(), CpmError> {
        self.journaled(
            &JournalRecord::Cycle {
                object_events: object_events.to_vec(),
                query_events: query_events.to_vec(),
            },
            |s| s.process_cycle_with_deltas_into(object_events, query_events, out),
        )?;
        self.after_cycle();
        Ok(())
    }

    /// Recover a server from on-disk artifacts: decode `snapshot_bytes`,
    /// rebuild the server, then replay the `journal_bytes` records past
    /// the snapshot's watermark. A torn or corrupt journal *tail* is
    /// tolerated (reported in the [`RecoveryReport`]); every other
    /// corruption class is a typed error.
    ///
    /// The recovered instance's journal is rebuilt from the replayed
    /// records, so a crash right after recovery recovers again.
    ///
    /// # Errors
    /// [`RecoveryError::Wire`] for undecodable artifacts,
    /// [`RecoveryError::Apply`] when a journal record contradicts the
    /// snapshot's registry state.
    pub fn recover(
        snapshot_bytes: &[u8],
        journal_bytes: &[u8],
        checkpoint_every: u64,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let snap = Snapshot::from_frame(snapshot_bytes)?;
        let mut server = CpmServer::restore(&snap).map_err(|error| RecoveryError::Apply {
            seq: snap.watermark,
            error,
        })?;
        let replay = Journal::replay(journal_bytes, snap.watermark)?;
        let mut journal = Journal::new(snap.watermark);
        let mut scratch = CycleDeltas::default();
        let mut replayed = 0usize;
        for (seq, payload) in &replay.records {
            let record = JournalRecord::decode_all(payload)?;
            record
                .apply(&mut server, &mut scratch)
                .map_err(|error| RecoveryError::Apply { seq: *seq, error })?;
            journal.append(payload);
            replayed += 1;
        }
        let report = RecoveryReport {
            replayed,
            epoch: server.epoch(),
            tail_error: replay.tail_error,
        };
        Ok((
            DurableCpmServer {
                server,
                journal,
                checkpoint_every,
                cycles_since_checkpoint: 0,
                snapshot_bytes: snapshot_bytes.to_vec(),
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CpmServerBuilder;

    fn seeded_server(shards: usize, deltas: bool) -> CpmServer {
        let mut s = CpmServerBuilder::new(16)
            .shards(shards)
            .deltas(deltas)
            .build();
        s.populate((0..50u32).map(|i| {
            let t = f64::from(i) / 50.0;
            (ObjectId(i), Point::new(t, (t * 3.7) % 1.0))
        }));
        let _ = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 3).unwrap();
        let _ = s
            .install_range(
                QueryId(1),
                crate::range::RangeQuery::circle(Point::new(0.3, 0.3), 0.2),
            )
            .unwrap();
        let _ = s.install_rnn(QueryId(2), Point::new(0.6, 0.4)).unwrap();
        s
    }

    fn drive(s: &mut CpmServer, cycles: u32) -> Vec<Vec<QueryId>> {
        let mut out = Vec::new();
        for step in 0..cycles {
            let events: Vec<ObjectEvent> = (0..6u32)
                .map(|i| ObjectEvent::Move {
                    id: ObjectId((step * 7 + i * 5) % 50),
                    to: Point::new(
                        (f64::from(step) * 0.13 + f64::from(i) * 0.07) % 1.0,
                        (f64::from(step) * 0.05 + f64::from(i) * 0.11) % 1.0,
                    ),
                })
                .collect();
            out.push(s.process_cycle(&events, &[]).unwrap());
        }
        out
    }

    #[test]
    fn snapshot_roundtrip_restores_an_identical_server() {
        for shards in [1usize, 4] {
            let mut original = seeded_server(shards, false);
            drive(&mut original, 5);
            let frame = Snapshot::capture(&original, 7).to_frame();
            let snap = Snapshot::from_frame(&frame).unwrap();
            assert_eq!(snap.watermark, 7);
            let mut restored = CpmServer::restore(&snap).unwrap();
            assert_eq!(restored.epoch(), original.epoch());
            assert_eq!(restored.query_count(), original.query_count());
            assert_eq!(
                restored.result(QueryId(0)).unwrap(),
                original.result(QueryId(0)).unwrap()
            );
            assert_eq!(
                restored.rnn_result(QueryId(2)).unwrap(),
                original.rnn_result(QueryId(2)).unwrap()
            );
            assert_eq!(restored.metrics(), original.metrics());
            restored.check_invariants();
            // Both lanes keep producing bit-identical changed lists.
            assert_eq!(drive(&mut restored, 5), drive(&mut original, 5));
        }
    }

    #[test]
    fn snapshots_record_and_rebuild_the_index_backend() {
        let mut original = CpmServerBuilder::new(16)
            .shards(2)
            .index(IndexKind::quadtree())
            .build();
        original.populate((0..50u32).map(|i| {
            let t = f64::from(i) / 50.0;
            (ObjectId(i), Point::new(t, (t * 3.7) % 1.0))
        }));
        let _ = original
            .install_knn(QueryId(0), Point::new(0.5, 0.5), 3)
            .unwrap();
        drive(&mut original, 4);
        let frame = Snapshot::capture(&original, 0).to_frame();
        let snap = Snapshot::from_frame(&frame).unwrap();
        assert_eq!(snap.engine.index, IndexKind::quadtree());
        // The guarded restore refuses a mismatched deployment...
        assert_eq!(
            CpmServer::restore_expecting(&snap, IndexKind::Uniform).unwrap_err(),
            CpmError::IndexMismatch {
                expected: IndexKind::quadtree(),
                actual: IndexKind::Uniform,
            }
        );
        // ...and rebuilds the recorded backend when the kinds agree.
        let mut restored = CpmServer::restore_expecting(&snap, IndexKind::quadtree()).unwrap();
        assert_eq!(restored.index_kind(), IndexKind::quadtree());
        assert_eq!(
            restored.result(QueryId(0)).unwrap(),
            original.result(QueryId(0)).unwrap()
        );
        assert_eq!(drive(&mut restored, 4), drive(&mut original, 4));
    }

    #[test]
    fn corrupted_snapshots_fail_typed_never_panic() {
        let mut s = seeded_server(2, false);
        drive(&mut s, 3);
        let frame = Snapshot::capture(&s, 0).to_frame();
        assert!(Snapshot::from_frame(&frame).is_ok());
        for cut in 0..frame.len() {
            assert!(Snapshot::from_frame(&frame[..cut]).is_err(), "cut {cut}");
        }
        for byte in (0..frame.len()).step_by(7) {
            let mut bad = frame.clone();
            bad[byte] ^= 0x40;
            assert!(Snapshot::from_frame(&bad).is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn inconsistent_registries_are_rejected_at_decode() {
        let mut s = seeded_server(1, false);
        drive(&mut s, 2);
        let mut snap = Snapshot::capture(&s, 0);
        // An RNN registration whose composition state is missing would
        // later panic inside update_rnn; the decoder must refuse it.
        snap.rnn.clear();
        let frame = encode_framed(FRAME_SNAPSHOT, &snap);
        assert!(matches!(
            Snapshot::from_frame(&frame),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn durable_server_checkpoints_and_recovers() {
        let server = seeded_server(2, false);
        let mut durable = DurableCpmServer::new(server, 0);
        let mut reference = seeded_server(2, false);
        for step in 0..8u32 {
            let ev = [ObjectEvent::Move {
                id: ObjectId(step % 50),
                to: Point::new(f64::from(step) * 0.1 % 1.0, 0.4),
            }];
            let a = durable.process_cycle(&ev, &[]).unwrap();
            let b = reference.process_cycle(&ev, &[]).unwrap();
            assert_eq!(a, b);
            if step == 3 {
                durable.checkpoint();
                assert!(durable.journal_bytes().is_empty());
            }
        }
        let (recovered, report) =
            DurableCpmServer::recover(durable.snapshot_bytes(), durable.journal_bytes(), 0)
                .unwrap();
        assert_eq!(report.replayed, 4);
        assert!(report.tail_error.is_none());
        assert_eq!(recovered.server().epoch(), reference.epoch());
        assert_eq!(
            recovered.server().result(QueryId(0)).unwrap(),
            reference.result(QueryId(0)).unwrap()
        );
        recovered.server().check_invariants();
    }
}
