//! Baseline algorithms for continuous k-NN monitoring: YPK-CNN and
//! SEA-CNN, the two state-of-the-art competitors the CPM paper evaluates
//! against (Sections 2, 4.2 and 6).
//!
//! Both share the grid index of [`cpm_grid`] and the result-list types of
//! [`cpm_core`], so the simulation harness can drive CPM and the baselines
//! with identical update streams and compare work counters one-to-one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sea;
mod search;
pub mod ypk;

pub use sea::SeaCnnMonitor;
pub use ypk::YpkCnnMonitor;
