//! Shared search primitives of the baseline algorithms.
//!
//! YPK-CNN's two-step NN search (Figure 2.1a) is used by YPK-CNN for
//! first-time evaluation and — following the paper's experimental setup —
//! by SEA-CNN to compute initial results and to recover when current NNs
//! disappear ("in the implementation of SEA-CNN, we use the NN search
//! algorithm of YPK-CNN", Section 6).

use cpm_geom::{Point, Rect};
use cpm_grid::{kernels, CellCoord, Grid, Metrics};

use cpm_core::neighbors::NeighborList;

/// Scan one cell into `best` (a *cell access* in the experiment metrics).
/// Distances come from the shared batched kernel over the grid's
/// struct-of-arrays columns — the same (bit-identical) kernel CPM's
/// engines use — with `dist_buf` as the reused per-search output buffer.
#[inline]
pub(crate) fn scan_cell(
    grid: &Grid,
    q: Point,
    cell: CellCoord,
    best: &mut NeighborList,
    dist_buf: &mut Vec<f64>,
    metrics: &mut Metrics,
) {
    metrics.cell_accesses += 1;
    let oids = grid.objects_in(cell);
    kernels::dist_into(grid.coords(), q, oids, dist_buf);
    metrics.objects_processed += oids.len() as u64;
    for (&oid, &d) in oids.iter().zip(dist_buf.iter()) {
        best.offer(oid, d);
    }
}

/// Step 1 of YPK-CNN's first-time evaluation: visit the cells of expanding
/// square rings around `c_q` until at least `k` objects have been found
/// (or the grid is exhausted). Returns the candidates found and the last
/// ring radius scanned.
pub(crate) fn expanding_square_candidates(
    grid: &Grid,
    q: Point,
    k: usize,
    dist_buf: &mut Vec<f64>,
    metrics: &mut Metrics,
) -> (NeighborList, u32) {
    let dim = grid.dim();
    let cq = grid.cell_of(q);
    let mut best = NeighborList::new(k);
    let mut found = 0usize;
    let mut radius = 0u32;
    loop {
        let mut any_cell = false;
        for cell in chebyshev_ring(cq, radius, dim) {
            any_cell = true;
            found += grid.cell_len(cell);
            scan_cell(grid, q, cell, &mut best, dist_buf, metrics);
        }
        // A ring is empty only once it lies entirely outside the grid, at
        // which point every farther ring is empty too: the grid is
        // exhausted.
        if found >= k || !any_cell {
            break;
        }
        radius += 1;
    }
    (best, radius)
}

/// The cells at exactly Chebyshev distance `radius` from `center`
/// (the whole square block for `radius == 0`).
pub(crate) fn chebyshev_ring(
    center: CellCoord,
    radius: u32,
    dim: u32,
) -> impl Iterator<Item = CellCoord> {
    let r = radius as i64;
    let mut out = Vec::new();
    if r == 0 {
        out.push(center);
    } else {
        for dc in -r..=r {
            for &dr in &[-r, r] {
                if let Some(c) = center.offset(dc, dr, dim) {
                    out.push(c);
                }
            }
        }
        for dr in (-r + 1)..r {
            for &dc in &[-r, r] {
                if let Some(c) = center.offset(dc, dr, dim) {
                    out.push(c);
                }
            }
        }
    }
    out.into_iter()
}

/// Step 2 of YPK-CNN (also its re-evaluation step): scan every cell
/// intersecting the square `SR` centered at the *cell* `c_q` with side
/// `2·d + δ`, skipping cells already scanned in step 1 (those within
/// Chebyshev radius `skip_within` of `c_q`).
pub(crate) fn scan_square(
    grid: &Grid,
    q: Point,
    d: f64,
    best: &mut NeighborList,
    skip_within: Option<u32>,
    dist_buf: &mut Vec<f64>,
    metrics: &mut Metrics,
) {
    let cq = grid.cell_of(q);
    let center = grid.cell_rect(cq).center();
    let half = d + grid.delta() / 2.0;
    let sr = Rect::new(
        Point::new(center.x - half, center.y - half),
        Point::new(center.x + half, center.y + half),
    );
    for cell in grid.cells_in_rect(&sr) {
        if let Some(skip) = skip_within {
            if cq.chebyshev(cell) <= skip {
                continue; // already contributed its objects in step 1
            }
        }
        scan_cell(grid, q, cell, best, dist_buf, metrics);
    }
}

/// YPK-CNN's complete two-step first-time NN computation (Figure 2.1a).
pub(crate) fn two_step_search(
    grid: &Grid,
    q: Point,
    k: usize,
    metrics: &mut Metrics,
) -> NeighborList {
    let mut dist_buf = Vec::new();
    let (mut best, radius) = expanding_square_candidates(grid, q, k, &mut dist_buf, metrics);
    metrics.computations += 1;
    let d = if best.is_full() {
        best.best_dist()
    } else {
        match best.neighbors().last() {
            Some(n) => n.dist,
            None => return best, // empty grid
        }
    };
    scan_square(grid, q, d, &mut best, Some(radius), &mut dist_buf, metrics);
    best
}

/// Scan every cell intersecting the circle `(center, r)` and collect the
/// k best objects by distance to `q` (SEA-CNN's search-region scan).
pub(crate) fn scan_circle(
    grid: &Grid,
    q: Point,
    center: Point,
    r: f64,
    k: usize,
    metrics: &mut Metrics,
) -> NeighborList {
    let mut best = NeighborList::new(k);
    let mut dist_buf = Vec::new();
    for cell in grid.cells_in_circle(center, r) {
        scan_cell(grid, q, cell, &mut best, &mut dist_buf, metrics);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_with(objects: &[(u32, f64, f64)]) -> Grid {
        let mut g = cpm_grid::GridBuilder::new(16).build_uniform();
        for &(id, x, y) in objects {
            g.insert(ObjectId(id), Point::new(x, y));
        }
        g
    }

    fn brute(grid: &Grid, q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = grid.iter_objects().map(|(_, p)| q.dist(p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    #[test]
    fn chebyshev_rings_partition_the_grid() {
        let dim = 8;
        let center = CellCoord::new(2, 5);
        let mut seen = std::collections::HashSet::new();
        for r in 0..dim {
            for c in chebyshev_ring(center, r, dim) {
                assert_eq!(center.chebyshev(c), r);
                assert!(seen.insert(c), "duplicate {c}");
            }
        }
        assert_eq!(seen.len(), (dim * dim) as usize);
    }

    #[test]
    fn two_step_matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mut g = cpm_grid::GridBuilder::new(16).build_uniform();
            let n = rng.gen_range(1..80);
            for i in 0..n {
                g.insert(ObjectId(i), Point::new(rng.gen(), rng.gen()));
            }
            let q = Point::new(rng.gen(), rng.gen());
            let k = rng.gen_range(1..8);
            let mut m = Metrics::default();
            let best = two_step_search(&g, q, k, &mut m);
            let expect = brute(&g, q, k);
            let got: Vec<f64> = best.neighbors().iter().map(|n| n.dist).collect();
            assert_eq!(got.len(), expect.len());
            for (g_, e) in got.iter().zip(&expect) {
                assert!((g_ - e).abs() < 1e-9);
            }
            assert!(m.cell_accesses > 0);
        }
    }

    #[test]
    fn two_step_on_empty_grid_returns_empty() {
        let g = cpm_grid::GridBuilder::new(8).build_uniform();
        let mut m = Metrics::default();
        let best = two_step_search(&g, Point::new(0.5, 0.5), 3, &mut m);
        assert!(best.is_empty());
    }

    #[test]
    fn figure_2_1a_cell_access_shape() {
        // A single NN found in ring 1 at distance d < δ means SR spans
        // 3 cells per axis: step 1 scans 9 cells, step 2 adds none beyond
        // the skip radius unless d pushes SR outside the 3×3 block.
        let g = grid_with(&[(1, 0.53, 0.53), (2, 0.40, 0.40)]);
        let q = Point::new(0.47, 0.47); // in cell (7,7) of a 16-grid
        let mut m = Metrics::default();
        let best = two_step_search(&g, q, 1, &mut m);
        assert_eq!(best.neighbors()[0].id, ObjectId(1)); // dist ≈ 0.085 < 0.099
                                                         // Never more than the 5×5 square around cq.
        assert!(m.cell_accesses <= 25, "accesses {}", m.cell_accesses);
    }

    #[test]
    fn scan_circle_matches_filtered_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = cpm_grid::GridBuilder::new(16).build_uniform();
        for i in 0..60u32 {
            g.insert(ObjectId(i), Point::new(rng.gen(), rng.gen()));
        }
        let q = Point::new(0.5, 0.5);
        let mut m = Metrics::default();
        let best = scan_circle(&g, q, q, 0.3, 4, &mut m);
        // Everything within 0.3 of q must be considered; the 4 best overall
        // within that radius equal the global 4 best if they are ≤ 0.3.
        let expect: Vec<f64> = brute(&g, q, 4).into_iter().filter(|d| *d <= 0.3).collect();
        let got: Vec<f64> = best
            .neighbors()
            .iter()
            .map(|n| n.dist)
            .take(expect.len())
            .collect();
        for (g_, e) in got.iter().zip(&expect) {
            assert!((g_ - e).abs() < 1e-9);
        }
    }
}
