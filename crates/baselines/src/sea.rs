//! SEA-CNN (Xiong, Mokbel, Aref — ICDE 2005), as described in Section 2 /
//! Figure 2.2 of the CPM paper.
//!
//! SEA-CNN is a pure maintenance method: it book-keeps, for each query,
//! the *answer region* — the circle centered at `q` with radius
//! `best_dist` — by marking the grid cells that intersect it. A query is
//! affected only when an update touches its answer region or one of its
//! NNs. Per affected query it determines a circular search region `SR` and
//! recomputes the k NN set from the objects inside:
//!
//! * **(i)** NNs moved within the region and/or outer objects entered it:
//!   `r = best_dist`;
//! * **(ii)** some NN left the region: `r = d_max`, the new distance of the
//!   previous NN that moved furthest;
//! * **(iii)** the query moved to `q′`: `r = best_dist + dist(q, q′)`,
//!   centered at `q′`.
//!
//! SEA-CNN has no first-time evaluation module, and it "does not handle
//! the case where some of the current NNs go off-line"; following the CPM
//! paper's experimental setup, both gaps are filled with YPK-CNN's
//! two-step search.

use cpm_geom::{FastHashMap, FastHashSet, ObjectId, Point, QueryId};
use cpm_grid::{CellCoord, Grid, InfluenceTable, Metrics, ObjectEvent, QueryEvent};

use cpm_core::neighbors::{Neighbor, NeighborList};

use crate::search::{scan_circle, two_step_search};

#[derive(Debug)]
struct SeaQueryState {
    q: Point,
    best: NeighborList,
    /// Cells currently marked as intersecting the answer region.
    marked: Vec<CellCoord>,
    // --- per-batch transient state ---
    epoch: u64,
    /// Case (i): within-region movement or incomer.
    affected: bool,
    /// Case (ii): max new distance of NNs that left the answer region.
    d_max: f64,
    /// An NN went off-line: fall back to the two-step search.
    needs_full: bool,
}

impl SeaQueryState {
    fn best_dist_or_inf(&self) -> f64 {
        self.best.best_dist()
    }
}

/// The SEA-CNN continuous k-NN monitor.
#[derive(Debug)]
pub struct SeaCnnMonitor {
    grid: Grid,
    answer_regions: InfluenceTable,
    queries: FastHashMap<QueryId, SeaQueryState>,
    /// Queries whose result holds fewer than `k` objects (the whole
    /// workspace influences them).
    starved: FastHashSet<QueryId>,
    metrics: Metrics,
    epoch: u64,
    touched: Vec<QueryId>,
    ignored: FastHashSet<QueryId>,
    qid_buf: Vec<QueryId>,
}

impl SeaCnnMonitor {
    /// Create a monitor over an empty `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self {
            grid: cpm_grid::GridBuilder::new(dim).build_uniform(),
            answer_regions: InfluenceTable::new(dim),
            queries: FastHashMap::default(),
            starved: FastHashSet::default(),
            metrics: Metrics::default(),
            epoch: 0,
            touched: Vec::new(),
            ignored: FastHashSet::default(),
            qid_buf: Vec::new(),
        }
    }

    /// Bulk-load objects before any query is installed.
    ///
    /// # Panics
    /// Panics if queries are already installed.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        assert!(
            self.queries.is_empty(),
            "populate() is only valid before queries are installed"
        );
        for (oid, pos) in objects {
            self.grid.insert(oid, pos);
        }
    }

    /// The object index.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of installed queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Current result of query `id`, ascending by distance.
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|st| st.best.neighbors())
    }

    /// Work counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.metrics.take()
    }

    /// Install a new query (initial result via YPK-CNN's two-step search,
    /// as in the paper's experiments).
    ///
    /// # Panics
    /// Panics if `id` is already installed.
    pub fn install_query(&mut self, id: QueryId, pos: Point, k: usize) -> &[Neighbor] {
        assert!(
            !self.queries.contains_key(&id),
            "query {id} is already installed"
        );
        let best = two_step_search(&self.grid, pos, k, &mut self.metrics);
        let mut st = SeaQueryState {
            q: pos,
            best,
            marked: Vec::new(),
            epoch: 0,
            affected: false,
            d_max: 0.0,
            needs_full: false,
        };
        Self::remark_answer_region(
            &self.grid,
            &mut self.answer_regions,
            &mut self.starved,
            id,
            &mut st,
        );
        self.queries.entry(id).or_insert(st).best.neighbors()
    }

    /// Terminate a query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        match self.queries.remove(&id) {
            Some(st) => {
                for cell in st.marked {
                    self.answer_regions.remove(cell, id);
                }
                true
            }
            None => false,
        }
    }

    /// Run one processing cycle. Returns the queries whose result changed.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        self.epoch += 1;
        self.touched.clear();
        self.ignored.clear();
        for ev in query_events {
            self.ignored.insert(ev.id());
        }

        // Phase 1: apply object updates, classifying affected queries.
        for ev in object_events {
            match *ev {
                ObjectEvent::Move { id, to } => {
                    let (_, old_cell, new_cell) = self.grid.update_position(id, to);
                    self.metrics.updates_applied += 1;
                    let new_pos = self.grid.position(id).expect("just inserted");
                    self.classify_departure(id, old_cell, Some(new_pos));
                    self.classify_arrival(id, new_cell, new_pos);
                }
                ObjectEvent::Appear { id, pos } => {
                    let cell = self.grid.insert(id, pos);
                    self.metrics.updates_applied += 1;
                    let pos = self.grid.position(id).expect("just inserted");
                    self.classify_arrival(id, cell, pos);
                }
                ObjectEvent::Disappear { id } => {
                    let (_, cell) = self
                        .grid
                        .remove(id)
                        .unwrap_or_else(|| panic!("disappear of off-line object {id}"));
                    self.metrics.updates_applied += 1;
                    self.classify_departure(id, cell, None);
                }
            }
        }

        // Phase 2: recompute every affected query within its search region.
        let mut changed = Vec::new();
        let touched = std::mem::take(&mut self.touched);
        for &qid in &touched {
            let st = self.queries.get_mut(&qid).expect("touched query installed");
            let old: Vec<Neighbor> = st.best.neighbors().to_vec();
            let k = st.best.k();
            if st.needs_full || !st.best.is_full() {
                st.best = two_step_search(&self.grid, st.q, k, &mut self.metrics);
            } else {
                let r = if st.d_max > 0.0 {
                    st.d_max // case (ii), covers any concurrent case-(i) updates
                } else {
                    st.best_dist_or_inf() // case (i)
                };
                st.best = scan_circle(&self.grid, st.q, st.q, r, k, &mut self.metrics);
                self.metrics.recomputations += 1;
            }
            Self::remark_answer_region(
                &self.grid,
                &mut self.answer_regions,
                &mut self.starved,
                qid,
                st,
            );
            if old != st.best.neighbors() {
                changed.push(qid);
            }
        }
        self.touched = touched;

        // Phase 3: query updates.
        for ev in query_events {
            match *ev {
                QueryEvent::Terminate { id } => {
                    self.terminate_query(id);
                }
                QueryEvent::Move { id, to } => {
                    self.move_query(id, to);
                    changed.push(id);
                }
                QueryEvent::Install { id, pos, k } => {
                    self.install_query(id, pos, k);
                    changed.push(id);
                }
            }
        }
        changed
    }

    /// Case (iii): the query moves to `q′`; the new result is computed from
    /// the circle at `q′` with radius `best_dist + dist(q, q′)`.
    fn move_query(&mut self, id: QueryId, to: Point) -> &[Neighbor] {
        let st = self
            .queries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("move of unknown query {id}"));
        let k = st.best.k();
        if st.best.is_full() {
            let r = st.best.best_dist() + st.q.dist(to);
            st.q = to;
            st.best = scan_circle(&self.grid, to, to, r, k, &mut self.metrics);
            self.metrics.recomputations += 1;
            if !st.best.is_full() || st.best.best_dist() > r {
                // The radius was derived from the *pre-batch* best_dist;
                // if the previous NNs also moved this cycle the circle can
                // hold fewer than k objects (a k-th hit beyond r comes
                // from a partially-covered cell and proves nothing).
                // Recover with a full search.
                st.best = two_step_search(&self.grid, st.q, k, &mut self.metrics);
            }
        } else {
            st.q = to;
            st.best = two_step_search(&self.grid, to, k, &mut self.metrics);
        }
        Self::remark_answer_region(
            &self.grid,
            &mut self.answer_regions,
            &mut self.starved,
            id,
            st,
        );
        self.queries[&id].best.neighbors()
    }

    fn classify_departure(&mut self, id: ObjectId, old_cell: CellCoord, new_pos: Option<Point>) {
        let qids = self.answer_regions.queries_at(old_cell);
        if qids.is_empty() {
            return;
        }
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("answer region in sync");
            Self::touch(st, qid, self.epoch, &mut self.touched);
            if st.best.contains(id) {
                match new_pos {
                    Some(p) => {
                        let d = st.q.dist(p);
                        if d > st.best.best_dist() {
                            st.d_max = st.d_max.max(d); // case (ii)
                        } else {
                            st.affected = true; // case (i): moved within
                        }
                    }
                    None => st.needs_full = true, // off-line NN
                }
            }
        }
    }

    fn classify_arrival(&mut self, id: ObjectId, new_cell: CellCoord, new_pos: Point) {
        let qids = self.answer_regions.queries_at(new_cell);
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("answer region in sync");
            Self::touch(st, qid, self.epoch, &mut self.touched);
            if !st.best.contains(id) && st.q.dist(new_pos) <= st.best.best_dist() {
                st.affected = true; // case (i): incoming object
            }
        }
        // Starved queries (fewer than k objects in the system) conceptually
        // have an unbounded answer region: any arrival affects them, even
        // in cells that were empty (and therefore unmarked) before.
        if !self.starved.is_empty() {
            self.qid_buf.clear();
            self.qid_buf.extend(
                self.starved
                    .iter()
                    .copied()
                    .filter(|q| !self.ignored.contains(q)),
            );
            for i in 0..self.qid_buf.len() {
                let qid = self.qid_buf[i];
                let st = self.queries.get_mut(&qid).expect("starved query installed");
                Self::touch(st, qid, self.epoch, &mut self.touched);
                st.affected = true;
            }
        }
    }

    fn touch(st: &mut SeaQueryState, qid: QueryId, epoch: u64, touched: &mut Vec<QueryId>) {
        if st.epoch != epoch {
            st.epoch = epoch;
            st.affected = false;
            st.d_max = 0.0;
            st.needs_full = false;
            touched.push(qid);
        }
    }

    /// Replace the answer-region cell marks with the cells intersecting the
    /// current circle `(q, best_dist)`, and keep the starved set in sync.
    fn remark_answer_region(
        grid: &Grid,
        regions: &mut InfluenceTable,
        starved: &mut FastHashSet<QueryId>,
        id: QueryId,
        st: &mut SeaQueryState,
    ) {
        for &cell in &st.marked {
            regions.remove(cell, id);
        }
        let bd = st.best.best_dist();
        // Refill the mark list in place: the circle cover streams straight
        // out of the allocation-free `cells_in_circle` iterator into the
        // query's reused buffer, so steady-state re-marking allocates
        // nothing (this runs for every affected query every cycle).
        st.marked.clear();
        if bd.is_finite() {
            starved.remove(&id);
            st.marked.extend(grid.cells_in_circle(st.q, bd));
        } else {
            // Fewer than k objects exist: the whole workspace influences
            // the result. Departures/disappearances are caught through the
            // occupied-cell marks; arrivals anywhere are caught through the
            // starved set in `classify_arrival`.
            starved.insert(id);
            st.marked
                .extend(grid.occupied_cells().chain([grid.cell_of(st.q)]));
        }
        for &cell in &st.marked {
            regions.add(cell, id);
        }
    }

    /// Memory footprint in the paper's memory units: `3·N` for the grid
    /// data, one unit per answer-region cell mark, plus `3 + 2k` per
    /// query-table entry.
    pub fn space_units(&self) -> usize {
        self.grid.space_units()
            + self.answer_regions.total_entries()
            + self
                .queries
                .values()
                .map(|st| 3 + 2 * st.best.k())
                .sum::<usize>()
    }

    /// Verify answer-region book-keeping invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for (qid, st) in &self.queries {
            total += st.marked.len();
            for &cell in &st.marked {
                assert!(
                    self.answer_regions.contains(cell, *qid),
                    "mark list out of sync for {qid}"
                );
            }
            let bd = st.best.best_dist();
            if bd.is_finite() {
                for &cell in &st.marked {
                    assert!(
                        self.grid.cell_rect(cell).intersects_circle(st.q, bd),
                        "marked cell outside answer region"
                    );
                }
            }
            for n in st.best.neighbors() {
                let p = self.grid.position(n.id).expect("result object live");
                assert!((st.q.dist(p) - n.dist).abs() < 1e-9, "stale distance");
            }
        }
        assert_eq!(self.answer_regions.total_entries(), total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(grid: &Grid, q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = grid.iter_objects().map(|(_, p)| q.dist(p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    fn assert_matches(m: &SeaCnnMonitor, id: QueryId) {
        let st = m.queries.get(&id).unwrap();
        let expect = brute(&m.grid, st.q, st.best.k());
        let got: Vec<f64> = st.best.neighbors().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn unaffected_queries_do_no_work() {
        let mut m = SeaCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.1, 0.1)),
            (ObjectId(1), Point::new(0.12, 0.12)),
            (ObjectId(2), Point::new(0.9, 0.9)),
        ]);
        m.install_query(QueryId(0), Point::new(0.1, 0.11), 1);
        m.take_metrics();
        // An update far from the answer region: SEA-CNN must not touch q.
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(2),
                to: Point::new(0.85, 0.85),
            }],
            &[],
        );
        assert!(changed.is_empty());
        assert_eq!(m.metrics().cell_accesses, 0);
        m.check_invariants();
    }

    #[test]
    fn incomer_triggers_answer_region_rescan_fig_4_3a() {
        let mut m = SeaCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.50, 0.55)),
            (ObjectId(1), Point::new(0.9, 0.9)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        m.take_metrics();
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(1),
                to: Point::new(0.5, 0.52),
            }],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        // SEA-CNN pays cell accesses for this (CPM would resolve it from
        // the update alone — the Figure 4.3a contrast).
        assert!(m.metrics().cell_accesses > 0);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn outgoing_nn_uses_dmax_region_fig_2_2a() {
        let mut m = SeaCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.50, 0.55)), // p2: NN
            (ObjectId(1), Point::new(0.42, 0.42)), // p1: next best
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(0),
                to: Point::new(0.8, 0.8),
            }],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn query_move_uses_expanded_circle_fig_2_2b() {
        let mut m = SeaCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.3, 0.3)),
            (ObjectId(1), Point::new(0.62, 0.62)),
        ]);
        m.install_query(QueryId(0), Point::new(0.3, 0.32), 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
        let changed = m.process_cycle(
            &[],
            &[QueryEvent::Move {
                id: QueryId(0),
                to: Point::new(0.6, 0.6),
            }],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn offline_nn_falls_back_to_two_step_search() {
        let mut m = SeaCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.5, 0.52)),
            (ObjectId(1), Point::new(0.2, 0.8)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        let changed = m.process_cycle(&[ObjectEvent::Disappear { id: ObjectId(0) }], &[]);
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn randomized_stream_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(0x5EA);
        let mut m = SeaCnnMonitor::new(32);
        m.populate((0..80u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        for qi in 0..5u32 {
            m.install_query(
                QueryId(qi),
                Point::new(rng.gen(), rng.gen()),
                1 + (qi as usize % 3) * 4,
            );
        }
        let mut live: Vec<u32> = (0..80).collect();
        let mut next = 80u32;
        for _ in 0..25 {
            let mut evs = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(0..12) {
                match rng.gen_range(0..10) {
                    0 if live.len() > 10 => {
                        let id = live.swap_remove(rng.gen_range(0..live.len()));
                        if seen.insert(id) {
                            evs.push(ObjectEvent::Disappear { id: ObjectId(id) });
                        } else {
                            live.push(id);
                        }
                    }
                    1 => {
                        live.push(next);
                        seen.insert(next);
                        evs.push(ObjectEvent::Appear {
                            id: ObjectId(next),
                            pos: Point::new(rng.gen(), rng.gen()),
                        });
                        next += 1;
                    }
                    _ => {
                        let id = live[rng.gen_range(0..live.len())];
                        if seen.insert(id) {
                            evs.push(ObjectEvent::Move {
                                id: ObjectId(id),
                                to: Point::new(rng.gen(), rng.gen()),
                            });
                        }
                    }
                }
            }
            let qev = if rng.gen_bool(0.25) {
                vec![QueryEvent::Move {
                    id: QueryId(rng.gen_range(0..5)),
                    to: Point::new(rng.gen(), rng.gen()),
                }]
            } else {
                Vec::new()
            };
            m.process_cycle(&evs, &qev);
            m.check_invariants();
            for qi in 0..5u32 {
                assert_matches(&m, QueryId(qi));
            }
        }
    }
}
