//! YPK-CNN (Yu, Pu, Koudas — ICDE 2005), as described in Section 2 /
//! Figure 2.1 of the CPM paper.
//!
//! YPK-CNN applies location updates directly to the grid and re-evaluates
//! *every* installed query every `T` time units (the CPM paper's
//! experiments evaluate queries at every timestamp, i.e. `T = 1`):
//!
//! * **First-time evaluation** (new or moved queries): the two-step search
//!   of Figure 2.1a — expanding square rings around `c_q` until `k`
//!   candidates are found (distance `d` of the k-th), then a scan of every
//!   cell intersecting the square `SR` of side `2·d + δ` centered at `c_q`.
//! * **Re-evaluation** (Figure 2.1b): `d_max` = current distance of the
//!   previous NN that moved furthest; scan the square of side `2·d_max+δ`.
//!   The previous NNs all lie within `d_max`, so the square is guaranteed
//!   to contain at least `k` objects.
//!
//! There is no update-detection book-keeping: queries are re-evaluated even
//! when nothing near them changed — the primary cost driver the CPM paper
//! identifies (Section 4.2). When a previous NN has gone off-line, the
//! query falls back to first-time evaluation (YPK-CNN itself leaves this
//! case unspecified).

use cpm_geom::{FastHashMap, Point, QueryId};
use cpm_grid::{Grid, Metrics, ObjectEvent, QueryEvent};

use cpm_core::neighbors::{Neighbor, NeighborList};

use crate::search::{scan_square, two_step_search};

#[derive(Debug)]
struct YpkQueryState {
    q: Point,
    best: NeighborList,
}

/// The YPK-CNN continuous k-NN monitor.
#[derive(Debug)]
pub struct YpkCnnMonitor {
    grid: Grid,
    queries: FastHashMap<QueryId, YpkQueryState>,
    metrics: Metrics,
    eval_period: u64,
    tick: u64,
}

impl YpkCnnMonitor {
    /// Create a monitor over an empty `dim × dim` grid, re-evaluating every
    /// cycle (`T = 1`, the paper's experimental setting).
    pub fn new(dim: u32) -> Self {
        Self::with_period(dim, 1)
    }

    /// Create a monitor that re-evaluates queries every `period` cycles.
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn with_period(dim: u32, period: u64) -> Self {
        assert!(period > 0, "evaluation period must be positive");
        Self {
            grid: cpm_grid::GridBuilder::new(dim).build_uniform(),
            queries: FastHashMap::default(),
            metrics: Metrics::default(),
            eval_period: period,
            tick: 0,
        }
    }

    /// Bulk-load objects before any query is installed.
    ///
    /// # Panics
    /// Panics if queries are already installed.
    pub fn populate<I: IntoIterator<Item = (cpm_geom::ObjectId, Point)>>(&mut self, objects: I) {
        assert!(
            self.queries.is_empty(),
            "populate() is only valid before queries are installed"
        );
        for (oid, pos) in objects {
            self.grid.insert(oid, pos);
        }
    }

    /// The object index.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of installed queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Current result of query `id`, ascending by distance.
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|st| st.best.neighbors())
    }

    /// Work counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.metrics.take()
    }

    /// Install a new query and evaluate it with the two-step search.
    ///
    /// # Panics
    /// Panics if `id` is already installed.
    pub fn install_query(&mut self, id: QueryId, pos: Point, k: usize) -> &[Neighbor] {
        assert!(
            !self.queries.contains_key(&id),
            "query {id} is already installed"
        );
        let best = two_step_search(&self.grid, pos, k, &mut self.metrics);
        self.queries
            .entry(id)
            .or_insert(YpkQueryState { q: pos, best })
            .best
            .neighbors()
    }

    /// Terminate a query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.queries.remove(&id).is_some()
    }

    /// Run one processing cycle: apply object updates directly to the grid,
    /// apply query updates, then (every `T`-th cycle) re-evaluate all
    /// queries. Returns the queries whose reported result changed.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        self.tick += 1;

        // YPK-CNN "does not process updates as they arrive, but directly
        // applies the changes to the grid".
        for ev in object_events {
            match *ev {
                ObjectEvent::Move { id, to } => {
                    self.grid.update_position(id, to);
                }
                ObjectEvent::Appear { id, pos } => {
                    self.grid.insert(id, pos);
                }
                ObjectEvent::Disappear { id } => {
                    self.grid
                        .remove(id)
                        .unwrap_or_else(|| panic!("disappear of off-line object {id}"));
                }
            }
            self.metrics.updates_applied += 1;
        }

        let mut changed = Vec::new();
        for ev in query_events {
            match *ev {
                QueryEvent::Terminate { id } => {
                    self.terminate_query(id);
                }
                QueryEvent::Move { id, to } => {
                    // "When a query q changes location, it is handled as a
                    // new one."
                    let st = self
                        .queries
                        .get_mut(&id)
                        .unwrap_or_else(|| panic!("move of unknown query {id}"));
                    st.q = to;
                    st.best = two_step_search(&self.grid, to, st.best.k(), &mut self.metrics);
                    changed.push(id);
                }
                QueryEvent::Install { id, pos, k } => {
                    self.install_query(id, pos, k);
                    changed.push(id);
                }
            }
        }

        if self.tick.is_multiple_of(self.eval_period) {
            self.reevaluate_all(&mut changed);
        }
        changed
    }

    /// Memory footprint in the paper's memory units: `3·N` for the grid
    /// data plus `3 + 2k` per query-table entry (id, coordinates, result).
    /// YPK-CNN keeps no influence lists, visit lists or search heaps.
    pub fn space_units(&self) -> usize {
        self.grid.space_units()
            + self
                .queries
                .values()
                .map(|st| 3 + 2 * st.best.k())
                .sum::<usize>()
    }

    /// Periodic re-evaluation of every installed query (Figure 2.1b).
    fn reevaluate_all(&mut self, changed: &mut Vec<QueryId>) {
        // Deterministic iteration order for reproducible metrics.
        let mut ids: Vec<QueryId> = self.queries.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let st = self.queries.get_mut(&id).expect("query installed");
            let k = st.best.k();

            // d_max over the *current* positions of the previous NNs; an
            // off-line previous NN forces evaluation from scratch.
            let mut d_max = 0.0f64;
            let mut offline = false;
            for n in st.best.neighbors() {
                match self.grid.position(n.id) {
                    Some(p) => d_max = d_max.max(st.q.dist(p)),
                    None => {
                        offline = true;
                        break;
                    }
                }
            }

            let old: Vec<Neighbor> = st.best.neighbors().to_vec();
            if offline || !st.best.is_full() {
                st.best = two_step_search(&self.grid, st.q, k, &mut self.metrics);
            } else {
                let mut best = NeighborList::new(k);
                let mut dist_buf = Vec::new();
                scan_square(
                    &self.grid,
                    st.q,
                    d_max,
                    &mut best,
                    None,
                    &mut dist_buf,
                    &mut self.metrics,
                );
                self.metrics.recomputations += 1;
                debug_assert!(best.is_full(), "SR square must contain k objects");
                st.best = best;
            }
            if old != st.best.neighbors() {
                changed.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(grid: &Grid, q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = grid.iter_objects().map(|(_, p)| q.dist(p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    fn assert_matches(m: &YpkCnnMonitor, id: QueryId) {
        let st = m.queries.get(&id).unwrap();
        let expect = brute(&m.grid, st.q, st.best.k());
        let got: Vec<f64> = st.best.neighbors().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn install_then_updates_track_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = YpkCnnMonitor::new(16);
        m.populate((0..50u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 4);
        assert_matches(&m, QueryId(0));
        for _ in 0..20 {
            let mut evs = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1..10) {
                let id = rng.gen_range(0..50u32);
                if seen.insert(id) {
                    evs.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            m.process_cycle(&evs, &[]);
            assert_matches(&m, QueryId(0));
        }
    }

    #[test]
    fn reevaluates_every_cycle_even_without_updates() {
        let mut m = YpkCnnMonitor::new(16);
        m.populate([(ObjectId(0), Point::new(0.2, 0.2))]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        m.take_metrics();
        m.process_cycle(&[], &[]);
        // One re-evaluation with its cell scans happened despite no change:
        // the cost driver CPM eliminates.
        let metrics = m.metrics();
        assert!(metrics.cell_accesses > 0);
    }

    #[test]
    fn respects_evaluation_period() {
        let mut m = YpkCnnMonitor::with_period(16, 3);
        m.populate([
            (ObjectId(0), Point::new(0.2, 0.2)),
            (ObjectId(1), Point::new(0.8, 0.8)),
        ]);
        m.install_query(QueryId(0), Point::new(0.3, 0.3), 1);
        // The NN teleports away; the stale result persists until the next
        // evaluation tick.
        let moved = [ObjectEvent::Move {
            id: ObjectId(0),
            to: Point::new(0.9, 0.9),
        }];
        let changed = m.process_cycle(&moved, &[]); // tick 1
        assert!(changed.is_empty());
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(0)); // stale
        m.process_cycle(&[], &[]); // tick 2
        let changed = m.process_cycle(&[], &[]); // tick 3 → re-evaluate
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
    }

    #[test]
    fn offline_previous_nn_forces_full_search() {
        let mut m = YpkCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.5, 0.52)),
            (ObjectId(1), Point::new(0.1, 0.9)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        let changed = m.process_cycle(&[ObjectEvent::Disappear { id: ObjectId(0) }], &[]);
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
    }

    #[test]
    fn moving_query_is_recomputed_from_scratch() {
        let mut m = YpkCnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.1, 0.1)),
            (ObjectId(1), Point::new(0.9, 0.9)),
        ]);
        m.install_query(QueryId(0), Point::new(0.2, 0.2), 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
        m.process_cycle(
            &[],
            &[QueryEvent::Move {
                id: QueryId(0),
                to: Point::new(0.8, 0.8),
            }],
        );
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
    }

    #[test]
    fn multiple_queries_randomized_against_oracle() {
        let mut rng = StdRng::seed_from_u64(0x1234);
        let mut m = YpkCnnMonitor::new(32);
        m.populate((0..80u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        for qi in 0..5u32 {
            m.install_query(
                QueryId(qi),
                Point::new(rng.gen(), rng.gen()),
                1 + qi as usize * 2,
            );
        }
        let mut live: Vec<u32> = (0..80).collect();
        let mut next = 80u32;
        for _ in 0..20 {
            let mut evs = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(0..12) {
                match rng.gen_range(0..10) {
                    0 if live.len() > 10 => {
                        let id = live.swap_remove(rng.gen_range(0..live.len()));
                        if seen.insert(id) {
                            evs.push(ObjectEvent::Disappear { id: ObjectId(id) });
                        } else {
                            live.push(id);
                        }
                    }
                    1 => {
                        live.push(next);
                        seen.insert(next);
                        evs.push(ObjectEvent::Appear {
                            id: ObjectId(next),
                            pos: Point::new(rng.gen(), rng.gen()),
                        });
                        next += 1;
                    }
                    _ => {
                        let id = live[rng.gen_range(0..live.len())];
                        if seen.insert(id) {
                            evs.push(ObjectEvent::Move {
                                id: ObjectId(id),
                                to: Point::new(rng.gen(), rng.gen()),
                            });
                        }
                    }
                }
            }
            let qev = if rng.gen_bool(0.25) {
                vec![QueryEvent::Move {
                    id: QueryId(rng.gen_range(0..5)),
                    to: Point::new(rng.gen(), rng.gen()),
                }]
            } else {
                Vec::new()
            };
            m.process_cycle(&evs, &qev);
            for qi in 0..5u32 {
                assert_matches(&m, QueryId(qi));
            }
        }
    }
}
