//! The coordinator/worker message schema of the `cpm-cluster` subsystem.
//!
//! Every message crossing the cluster boundary is one [`ClusterMsg`]
//! wrapped in a [`crate::FRAME_CLUSTER`] frame, so the transport layer
//! ships opaque length-prefixed byte strings and version skew, truncation
//! and bit rot all surface as typed [`WireError`]s before any cluster
//! logic runs.
//!
//! The schema layers the same way [`crate`] itself does: fields whose
//! types live *below* the engine (ids, events, cell rectangles, epochs)
//! are first-class and individually validated, while engine-owned values
//! (query-event batches, per-cycle delta batches, full snapshots — all of
//! which already have `Encode`/`Decode` impls in `cpm-core`) travel as
//! pre-encoded `payload` byte strings. That keeps `cpm-wire` free of a
//! dependency on the engine crate while every byte still rides one
//! checksummed frame format.
//!
//! Worker tiles are [`TileRect`]s: inclusive cell-coordinate rectangles
//! over the coordinator's grid geometry. The coordinator partitions the
//! workspace into disjoint tiles and hands each worker a *coverage*
//! rectangle — its tile expanded by the boundary-overlap margin — so the
//! messages carry both.

use crate::{
    decode_framed, encode_framed, encode_framed_into, Decode, Encode, Reader, WireError, Writer,
    FRAME_CLUSTER,
};
use cpm_geom::{ObjectId, QueryId};
use cpm_grid::{CellCoord, IndexKind, ObjectEvent};

/// An inclusive rectangle of grid cells: columns `c0..=c1`, rows
/// `r0..=r1`. The unit of workspace partitioning (worker tiles and
/// coverage regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// First column (inclusive).
    pub c0: u32,
    /// First row (inclusive).
    pub r0: u32,
    /// Last column (inclusive).
    pub c1: u32,
    /// Last row (inclusive).
    pub r1: u32,
}

impl TileRect {
    /// Build a tile rectangle.
    ///
    /// # Panics
    /// Panics if the bounds are inverted.
    pub fn new(c0: u32, r0: u32, c1: u32, r1: u32) -> Self {
        assert!(c0 <= c1 && r0 <= r1, "inverted tile bounds");
        Self { c0, r0, c1, r1 }
    }

    /// `true` if cell `(col, row)` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, col: u32, row: u32) -> bool {
        self.c0 <= col && col <= self.c1 && self.r0 <= row && row <= self.r1
    }

    /// `true` if `cell` lies inside the rectangle.
    #[inline]
    pub fn contains_cell(&self, cell: CellCoord) -> bool {
        self.contains(cell.col, cell.row)
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &TileRect) -> bool {
        self.c0 <= other.c0 && other.c1 <= self.c1 && self.r0 <= other.r0 && other.r1 <= self.r1
    }

    /// The rectangle grown by `margin` cells on every side, clamped to a
    /// `dim × dim` grid.
    pub fn expanded(&self, margin: u32, dim: u32) -> Self {
        Self {
            c0: self.c0.saturating_sub(margin),
            r0: self.r0.saturating_sub(margin),
            c1: (self.c1 + margin).min(dim - 1),
            r1: (self.r1 + margin).min(dim - 1),
        }
    }
}

impl Encode for TileRect {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.c0);
        w.put_u32(self.r0);
        w.put_u32(self.c1);
        w.put_u32(self.r1);
    }
}

impl Decode for TileRect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        let (c0, r0, c1, r1) = (r.take_u32()?, r.take_u32()?, r.take_u32()?, r.take_u32()?);
        if c0 > c1 || r0 > r1 {
            return Err(WireError::Invalid {
                offset: at,
                what: "inverted tile rectangle bounds",
            });
        }
        Ok(Self { c0, r0, c1, r1 })
    }
}

/// Why a worker refused a message — the wire image of the cluster
/// layer's typed errors. Carried by [`ClusterMsg::Reject`]; never a
/// silent drop.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterReject {
    /// The peer speaks a different wire version.
    VersionSkew {
        /// The rejecting side's version.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// A batch arrived out of sequence: the worker expected the next
    /// epoch and refuses to fabricate or skip history.
    EpochGap {
        /// The epoch the worker was ready to run.
        expected: u64,
        /// The epoch the message carried.
        got: u64,
    },
    /// An object event was routed to a worker whose coverage does not
    /// contain it — the whole batch is refused before any state changes.
    PartitionMismatch {
        /// The misrouted object.
        oid: ObjectId,
        /// The coverage tile the position falls outside of.
        tile: TileRect,
    },
    /// A query was routed to a worker whose tile does not own its anchor
    /// point.
    QueryOutOfTile {
        /// The misrouted query.
        qid: QueryId,
        /// The ownership tile the anchor falls outside of.
        tile: TileRect,
    },
    /// A query's influence region grew past the worker's coverage, so
    /// local results can no longer be certified globally correct.
    CoverageExceeded {
        /// The escaping query.
        qid: QueryId,
        /// The coverage tile the influence region escaped.
        tile: TileRect,
    },
    /// The worker's engine refused the batch (a `CpmError`, rendered).
    Engine {
        /// The engine error's display form.
        detail: String,
    },
}

impl Encode for ClusterReject {
    fn encode(&self, w: &mut Writer) {
        match self {
            ClusterReject::VersionSkew { ours, theirs } => {
                w.put_u8(0);
                w.put_u16(*ours);
                w.put_u16(*theirs);
            }
            ClusterReject::EpochGap { expected, got } => {
                w.put_u8(1);
                w.put_u64(*expected);
                w.put_u64(*got);
            }
            ClusterReject::PartitionMismatch { oid, tile } => {
                w.put_u8(2);
                oid.encode(w);
                tile.encode(w);
            }
            ClusterReject::QueryOutOfTile { qid, tile } => {
                w.put_u8(3);
                qid.encode(w);
                tile.encode(w);
            }
            ClusterReject::CoverageExceeded { qid, tile } => {
                w.put_u8(4);
                qid.encode(w);
                tile.encode(w);
            }
            ClusterReject::Engine { detail } => {
                w.put_u8(5);
                detail.encode(w);
            }
        }
    }
}

impl Decode for ClusterReject {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        Ok(match r.take_u8()? {
            0 => ClusterReject::VersionSkew {
                ours: r.take_u16()?,
                theirs: r.take_u16()?,
            },
            1 => ClusterReject::EpochGap {
                expected: r.take_u64()?,
                got: r.take_u64()?,
            },
            2 => ClusterReject::PartitionMismatch {
                oid: ObjectId::decode(r)?,
                tile: TileRect::decode(r)?,
            },
            3 => ClusterReject::QueryOutOfTile {
                qid: QueryId::decode(r)?,
                tile: TileRect::decode(r)?,
            },
            4 => ClusterReject::CoverageExceeded {
                qid: QueryId::decode(r)?,
                tile: TileRect::decode(r)?,
            },
            5 => ClusterReject::Engine {
                detail: String::decode(r)?,
            },
            _ => {
                return Err(WireError::Invalid {
                    offset: at,
                    what: "unknown cluster-reject tag",
                })
            }
        })
    }
}

/// One message of the coordinator ⇄ worker protocol.
///
/// `payload` fields are pre-encoded engine values (the engine crate owns
/// their `Encode`/`Decode` impls): query-event batches for `Install` and
/// `Batch`, a `CycleDeltas` batch for `Deltas`, and a full snapshot
/// frame for `SnapshotXfer`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Coordinator → worker: your assignment. The worker checks the
    /// version and builds a server for `dim`/`index`, owning `tile` and
    /// ingesting `coverage`.
    Hello {
        /// The coordinator's wire version ([`crate::WIRE_VERSION`]).
        version: u16,
        /// The worker's index in the cluster.
        worker: u32,
        /// Grid resolution (cells per axis).
        dim: u32,
        /// Spatial-index backend every worker must run.
        index: IndexKind,
        /// The worker's ownership tile (disjoint across workers).
        tile: TileRect,
        /// The worker's ingest region: `tile` plus the overlap margin.
        coverage: TileRect,
    },
    /// Worker → coordinator: assignment accepted; echoes the version and
    /// reports the engine epoch (non-zero after a snapshot restore).
    HelloAck {
        /// The worker's index.
        worker: u32,
        /// The worker's wire version.
        version: u16,
        /// The worker engine's current epoch.
        epoch: u64,
    },
    /// Coordinator → worker: install queries *between* cycles (no epoch
    /// advance). Payload: an engine-encoded query-event batch.
    Install {
        /// Engine-encoded `Vec<SpecEvent<AnyQuerySpec>>`.
        payload: Vec<u8>,
    },
    /// Coordinator → worker: run one processing cycle.
    Batch {
        /// The epoch this cycle will produce (worker epoch + 1).
        epoch: u64,
        /// Object events, already routed/translated to this worker's
        /// coverage.
        objects: Vec<ObjectEvent>,
        /// Engine-encoded `Vec<SpecEvent<AnyQuerySpec>>` for queries this
        /// worker owns.
        queries: Vec<u8>,
    },
    /// Worker → coordinator: the cycle's result deltas.
    Deltas {
        /// The worker's index.
        worker: u32,
        /// The epoch the cycle produced.
        epoch: u64,
        /// Engine-encoded `CycleDeltas`.
        payload: Vec<u8>,
    },
    /// Coordinator → worker: ship your full state (for a restart
    /// handoff).
    SnapshotReq,
    /// Worker ⇄ coordinator: a full engine snapshot. Sent by a worker
    /// answering [`ClusterMsg::SnapshotReq`]; sent by the coordinator to
    /// seed a replacement worker.
    SnapshotXfer {
        /// The worker's index.
        worker: u32,
        /// The epoch the snapshot captures.
        epoch: u64,
        /// A full snapshot frame (`Snapshot::to_frame` bytes).
        payload: Vec<u8>,
    },
    /// Worker → coordinator: message applied, no deltas to report.
    Ack {
        /// The worker's index.
        worker: u32,
        /// The worker engine's epoch after applying.
        epoch: u64,
    },
    /// Worker → coordinator: message refused, nothing changed.
    Reject {
        /// The worker's index.
        worker: u32,
        /// Why.
        reject: ClusterReject,
    },
    /// Coordinator → worker: exit the serve loop.
    Shutdown,
}

impl ClusterMsg {
    /// Encode into one [`FRAME_CLUSTER`] frame, ready for a transport.
    pub fn to_frame(&self) -> Vec<u8> {
        encode_framed(FRAME_CLUSTER, self)
    }

    /// Encode into one [`FRAME_CLUSTER`] frame in `out`, reusing its
    /// allocation. Byte-identical to [`ClusterMsg::to_frame`].
    pub fn to_frame_into(&self, out: &mut Vec<u8>) {
        encode_framed_into(FRAME_CLUSTER, self, out);
    }

    /// Decode from one [`FRAME_CLUSTER`] frame.
    pub fn from_frame(bytes: &[u8]) -> Result<Self, WireError> {
        decode_framed(FRAME_CLUSTER, bytes)
    }
}

/// A borrowed image of [`ClusterMsg::Batch`]: the per-cycle hot-path
/// frame, built from the coordinator's reusable per-worker buffers
/// without cloning the event vectors into an owned message first.
///
/// Encodes byte-identically to the owned variant — decoding a
/// `BatchRef` frame yields the equal [`ClusterMsg::Batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchRef<'a> {
    /// The cycle this batch opens (must be the worker's epoch + 1).
    pub epoch: u64,
    /// In-coverage object events, already translated to this worker.
    pub objects: &'a [ObjectEvent],
    /// Engine-encoded `Vec<SpecEvent<AnyQuerySpec>>` routed to this worker.
    pub queries: &'a [u8],
}

impl BatchRef<'_> {
    /// Encode into one [`FRAME_CLUSTER`] frame in `out`, reusing its
    /// allocation.
    pub fn to_frame_into(&self, out: &mut Vec<u8>) {
        encode_framed_into(FRAME_CLUSTER, self, out);
    }
}

impl Encode for BatchRef<'_> {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(3);
        w.put_u64(self.epoch);
        encode_len_prefix(self.objects.len(), w);
        for ev in self.objects {
            ev.encode(w);
        }
        encode_len_prefix(self.queries.len(), w);
        w.put_bytes(self.queries);
    }
}

/// A borrowed image of [`ClusterMsg::Deltas`]: the worker's per-cycle
/// reply frame, built from its reusable delta-payload buffer.
///
/// Encodes byte-identically to the owned variant.
#[derive(Debug, Clone, Copy)]
pub struct DeltasRef<'a> {
    /// The replying worker's id.
    pub worker: u32,
    /// The cycle these deltas close.
    pub epoch: u64,
    /// Engine-encoded `CycleDeltas`.
    pub payload: &'a [u8],
}

impl DeltasRef<'_> {
    /// Encode into one [`FRAME_CLUSTER`] frame in `out`, reusing its
    /// allocation.
    pub fn to_frame_into(&self, out: &mut Vec<u8>) {
        encode_framed_into(FRAME_CLUSTER, self, out);
    }
}

impl Encode for DeltasRef<'_> {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(4);
        w.put_u32(self.worker);
        w.put_u64(self.epoch);
        encode_len_prefix(self.payload.len(), w);
        w.put_bytes(self.payload);
    }
}

/// The `Vec<T>` length prefix (a `u32` count), so the borrowed encoders
/// above stay byte-compatible with the owned `Vec` fields they mirror.
fn encode_len_prefix(len: usize, w: &mut Writer) {
    w.put_u32(u32::try_from(len).expect("collection fits a u32 length prefix"));
}

impl Encode for ClusterMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            ClusterMsg::Hello {
                version,
                worker,
                dim,
                index,
                tile,
                coverage,
            } => {
                w.put_u8(0);
                w.put_u16(*version);
                w.put_u32(*worker);
                w.put_u32(*dim);
                index.encode(w);
                tile.encode(w);
                coverage.encode(w);
            }
            ClusterMsg::HelloAck {
                worker,
                version,
                epoch,
            } => {
                w.put_u8(1);
                w.put_u32(*worker);
                w.put_u16(*version);
                w.put_u64(*epoch);
            }
            ClusterMsg::Install { payload } => {
                w.put_u8(2);
                payload.encode(w);
            }
            ClusterMsg::Batch {
                epoch,
                objects,
                queries,
            } => {
                w.put_u8(3);
                w.put_u64(*epoch);
                objects.encode(w);
                queries.encode(w);
            }
            ClusterMsg::Deltas {
                worker,
                epoch,
                payload,
            } => {
                w.put_u8(4);
                w.put_u32(*worker);
                w.put_u64(*epoch);
                payload.encode(w);
            }
            ClusterMsg::SnapshotReq => w.put_u8(5),
            ClusterMsg::SnapshotXfer {
                worker,
                epoch,
                payload,
            } => {
                w.put_u8(6);
                w.put_u32(*worker);
                w.put_u64(*epoch);
                payload.encode(w);
            }
            ClusterMsg::Ack { worker, epoch } => {
                w.put_u8(7);
                w.put_u32(*worker);
                w.put_u64(*epoch);
            }
            ClusterMsg::Reject { worker, reject } => {
                w.put_u8(8);
                w.put_u32(*worker);
                reject.encode(w);
            }
            ClusterMsg::Shutdown => w.put_u8(9),
        }
    }
}

impl Decode for ClusterMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        Ok(match r.take_u8()? {
            0 => {
                let version = r.take_u16()?;
                let worker = r.take_u32()?;
                let dim = r.take_u32()?;
                let index = IndexKind::decode(r)?;
                let tile = TileRect::decode(r)?;
                let coverage = TileRect::decode(r)?;
                if !coverage.contains_rect(&tile) {
                    return Err(WireError::Invalid {
                        offset: at,
                        what: "worker coverage does not contain its tile",
                    });
                }
                ClusterMsg::Hello {
                    version,
                    worker,
                    dim,
                    index,
                    tile,
                    coverage,
                }
            }
            1 => ClusterMsg::HelloAck {
                worker: r.take_u32()?,
                version: r.take_u16()?,
                epoch: r.take_u64()?,
            },
            2 => ClusterMsg::Install {
                payload: Vec::<u8>::decode(r)?,
            },
            3 => ClusterMsg::Batch {
                epoch: r.take_u64()?,
                objects: Vec::<ObjectEvent>::decode(r)?,
                queries: Vec::<u8>::decode(r)?,
            },
            4 => ClusterMsg::Deltas {
                worker: r.take_u32()?,
                epoch: r.take_u64()?,
                payload: Vec::<u8>::decode(r)?,
            },
            5 => ClusterMsg::SnapshotReq,
            6 => ClusterMsg::SnapshotXfer {
                worker: r.take_u32()?,
                epoch: r.take_u64()?,
                payload: Vec::<u8>::decode(r)?,
            },
            7 => ClusterMsg::Ack {
                worker: r.take_u32()?,
                epoch: r.take_u64()?,
            },
            8 => ClusterMsg::Reject {
                worker: r.take_u32()?,
                reject: ClusterReject::decode(r)?,
            },
            9 => ClusterMsg::Shutdown,
            _ => {
                return Err(WireError::Invalid {
                    offset: at,
                    what: "unknown cluster-message tag",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<ClusterMsg> {
        vec![
            ClusterMsg::Hello {
                version: crate::WIRE_VERSION,
                worker: 2,
                dim: 16,
                index: IndexKind::quadtree(),
                tile: TileRect::new(8, 0, 11, 15),
                coverage: TileRect::new(5, 0, 14, 15),
            },
            ClusterMsg::HelloAck {
                worker: 2,
                version: crate::WIRE_VERSION,
                epoch: 7,
            },
            ClusterMsg::Install {
                payload: vec![1, 2, 3],
            },
            ClusterMsg::Batch {
                epoch: 9,
                objects: vec![ObjectEvent::Disappear { id: ObjectId(4) }],
                queries: vec![],
            },
            ClusterMsg::Deltas {
                worker: 0,
                epoch: 9,
                payload: vec![0xFF; 9],
            },
            ClusterMsg::SnapshotReq,
            ClusterMsg::SnapshotXfer {
                worker: 1,
                epoch: 9,
                payload: vec![9, 9],
            },
            ClusterMsg::Ack {
                worker: 3,
                epoch: 0,
            },
            ClusterMsg::Reject {
                worker: 1,
                reject: ClusterReject::PartitionMismatch {
                    oid: ObjectId(77),
                    tile: TileRect::new(0, 0, 3, 15),
                },
            },
            ClusterMsg::Reject {
                worker: 0,
                reject: ClusterReject::Engine {
                    detail: "duplicate query id 5".to_owned(),
                },
            },
            ClusterMsg::Shutdown,
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_a_frame() {
        for msg in sample_messages() {
            let frame = msg.to_frame();
            assert_eq!(ClusterMsg::from_frame(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn to_frame_into_is_byte_identical_and_reuses_the_buffer() {
        let mut buf = Vec::new();
        for msg in sample_messages() {
            msg.to_frame_into(&mut buf);
            assert_eq!(buf, msg.to_frame());
        }
        // Steady state: a large-enough buffer is reused, not regrown.
        buf.reserve(4096);
        let cap = buf.capacity();
        for msg in sample_messages() {
            msg.to_frame_into(&mut buf);
        }
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn borrowed_batch_and_deltas_encode_byte_identically_to_owned() {
        let objects = vec![
            ObjectEvent::Appear {
                id: ObjectId(3),
                pos: cpm_geom::Point::new(0.25, 0.75),
            },
            ObjectEvent::Disappear { id: ObjectId(4) },
        ];
        let queries = vec![7u8, 0, 0, 0, 1];
        let owned = ClusterMsg::Batch {
            epoch: 42,
            objects: objects.clone(),
            queries: queries.clone(),
        };
        let mut frame = Vec::new();
        BatchRef {
            epoch: 42,
            objects: &objects,
            queries: &queries,
        }
        .to_frame_into(&mut frame);
        assert_eq!(frame, owned.to_frame());
        assert_eq!(ClusterMsg::from_frame(&frame).unwrap(), owned);

        let payload = vec![0xABu8; 17];
        let owned = ClusterMsg::Deltas {
            worker: 3,
            epoch: 42,
            payload: payload.clone(),
        };
        DeltasRef {
            worker: 3,
            epoch: 42,
            payload: &payload,
        }
        .to_frame_into(&mut frame);
        assert_eq!(frame, owned.to_frame());
        assert_eq!(ClusterMsg::from_frame(&frame).unwrap(), owned);

        // Empty slices hit the same length-prefix path as empty vectors.
        let owned = ClusterMsg::Batch {
            epoch: 1,
            objects: vec![],
            queries: vec![],
        };
        BatchRef {
            epoch: 1,
            objects: &[],
            queries: &[],
        }
        .to_frame_into(&mut frame);
        assert_eq!(frame, owned.to_frame());
    }

    #[test]
    fn tile_rect_validates_and_expands() {
        let t = TileRect::new(4, 0, 7, 15);
        assert!(t.contains(4, 0) && t.contains(7, 15));
        assert!(!t.contains(3, 0) && !t.contains(8, 15));
        let cov = t.expanded(2, 16);
        assert_eq!(cov, TileRect::new(2, 0, 9, 15));
        assert!(cov.contains_rect(&t));
        // Clamped at the workspace edge.
        assert_eq!(
            TileRect::new(0, 0, 3, 15).expanded(2, 16),
            TileRect::new(0, 0, 5, 15)
        );
        // Inverted bounds are refused by the decoder.
        let mut w = Writer::new();
        for v in [5u32, 0, 2, 15] {
            w.put_u32(v);
        }
        assert!(matches!(
            TileRect::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn hello_with_coverage_smaller_than_tile_is_refused() {
        let mut w = Writer::new();
        ClusterMsg::Hello {
            version: 1,
            worker: 0,
            dim: 16,
            index: IndexKind::Uniform,
            tile: TileRect::new(4, 0, 7, 15),
            coverage: TileRect::new(4, 0, 7, 15),
        }
        .encode(&mut w);
        let mut bytes = w.into_bytes();
        // Shrink the coverage rectangle's last column below the tile's.
        let n = bytes.len();
        bytes[n - 8] = 5;
        assert!(matches!(
            ClusterMsg::decode_all(&bytes),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn corrupted_frames_are_typed_errors() {
        let frame = sample_messages()[0].to_frame();
        // Truncation at every split point.
        for cut in 0..frame.len() {
            assert!(ClusterMsg::from_frame(&frame[..cut]).is_err(), "cut {cut}");
        }
        // A flipped bit anywhere fails the CRC (or an earlier check).
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(ClusterMsg::from_frame(&bad).is_err(), "flip {i}");
        }
    }

    mod prop {
        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;

        fn arb_tile(dim: u32) -> impl Strategy<Value = TileRect> {
            (0..dim, 0..dim, 0..dim, 0..dim)
                .prop_map(|(a, b, c, d)| TileRect::new(a.min(c), b.min(d), a.max(c), b.max(d)))
        }

        fn arb_reject() -> impl Strategy<Value = ClusterReject> {
            prop_oneof![
                (any::<u16>(), any::<u16>())
                    .prop_map(|(ours, theirs)| ClusterReject::VersionSkew { ours, theirs }),
                (any::<u64>(), any::<u64>())
                    .prop_map(|(expected, got)| ClusterReject::EpochGap { expected, got }),
                (any::<u32>(), arb_tile(64)).prop_map(|(o, tile)| {
                    ClusterReject::PartitionMismatch {
                        oid: ObjectId(o),
                        tile,
                    }
                }),
                (any::<u32>(), arb_tile(64)).prop_map(|(q, tile)| {
                    ClusterReject::QueryOutOfTile {
                        qid: QueryId(q),
                        tile,
                    }
                }),
                (any::<u32>(), arb_tile(64)).prop_map(|(q, tile)| {
                    ClusterReject::CoverageExceeded {
                        qid: QueryId(q),
                        tile,
                    }
                }),
                pvec(0x20u8..0x7F, 0..24).prop_map(|bytes| ClusterReject::Engine {
                    detail: String::from_utf8(bytes).unwrap(),
                }),
            ]
        }

        fn arb_msg() -> impl Strategy<Value = ClusterMsg> {
            let payload = pvec(any::<u8>(), 0..64);
            prop_oneof![
                (1u16..4, any::<u32>(), 1u32..64, arb_tile(64), 0u32..8).prop_map(
                    |(version, worker, dim, tile, margin)| {
                        let dim = dim.max(tile.c1 + 1).max(tile.r1 + 1);
                        ClusterMsg::Hello {
                            version,
                            worker,
                            dim,
                            index: IndexKind::Uniform,
                            tile,
                            coverage: tile.expanded(margin, dim),
                        }
                    }
                ),
                (any::<u32>(), any::<u16>(), any::<u64>()).prop_map(|(worker, version, epoch)| {
                    ClusterMsg::HelloAck {
                        worker,
                        version,
                        epoch,
                    }
                }),
                pvec(any::<u8>(), 0..64).prop_map(|payload| ClusterMsg::Install { payload }),
                (
                    any::<u64>(),
                    pvec(any::<u32>(), 0..8),
                    pvec(any::<u8>(), 0..64)
                )
                    .prop_map(|(epoch, ids, queries)| ClusterMsg::Batch {
                        epoch,
                        objects: ids
                            .into_iter()
                            .map(|id| ObjectEvent::Disappear { id: ObjectId(id) })
                            .collect(),
                        queries,
                    }),
                (any::<u32>(), any::<u64>(), payload).prop_map(|(worker, epoch, payload)| {
                    ClusterMsg::Deltas {
                        worker,
                        epoch,
                        payload,
                    }
                }),
                Just(ClusterMsg::SnapshotReq),
                (any::<u32>(), any::<u64>(), pvec(any::<u8>(), 0..64)).prop_map(
                    |(worker, epoch, payload)| ClusterMsg::SnapshotXfer {
                        worker,
                        epoch,
                        payload,
                    }
                ),
                (any::<u32>(), any::<u64>())
                    .prop_map(|(worker, epoch)| ClusterMsg::Ack { worker, epoch }),
                (any::<u32>(), arb_reject())
                    .prop_map(|(worker, reject)| ClusterMsg::Reject { worker, reject }),
                Just(ClusterMsg::Shutdown),
            ]
        }

        proptest! {
            #[test]
            fn cluster_messages_roundtrip(msg in arb_msg()) {
                let frame = msg.to_frame();
                prop_assert_eq!(ClusterMsg::from_frame(&frame).unwrap(), msg);
            }

            #[test]
            fn mangled_frames_never_panic(msg in arb_msg(), at in 0usize..1024, bit in 0u8..8) {
                let mut frame = msg.to_frame();
                let at = at % frame.len();
                frame[at] ^= 1 << bit;
                // Either it fails typed, or (if the flip landed in a
                // payload byte *and* the CRC happens to collide — it
                // cannot) decodes to something; it must never panic.
                let _ = ClusterMsg::from_frame(&frame);
            }
        }
    }
}
