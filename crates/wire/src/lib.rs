//! Hand-rolled binary codec for the CPM suite's durability and (future)
//! distribution boundaries: length-prefixed, versioned, CRC-checksummed
//! frames plus an append-only journal framing with sequence numbers.
//!
//! The build environment has no crates.io access, so serialization is
//! written out by hand against two tiny primitives — [`Writer`] (append
//! little-endian fields to a byte buffer) and [`Reader`] (consume them,
//! tracking the byte offset for error context). Everything that crosses a
//! durability boundary goes through the [`Encode`]/[`Decode`] traits, and
//! every artifact is wrapped in a [frame](write_frame) carrying a magic
//! number, a format version, a payload length and a CRC-32 of the whole
//! frame, so truncation, bit flips and version skew surface as typed
//! [`WireError`]s — never as a panic or a silently wrong value.
//!
//! Decoding is defensive by construction:
//!
//! * every length prefix is checked against the bytes actually remaining
//!   ([`Reader::take_len`]), so a corrupted count cannot trigger a huge
//!   allocation;
//! * invariants that constructors enforce by panicking (finite
//!   coordinates, ordered rectangles, known enum tags) are re-checked by
//!   `Decode` and reported as [`WireError::Invalid`] with the offending
//!   offset;
//! * [`Decode::decode_all`] rejects trailing garbage.
//!
//! The [`Journal`] builds on frames: each record is one frame whose
//! payload starts with a monotone sequence number. [`Journal::replay`]
//! tolerates exactly the failure modes of an append-only log — a torn or
//! corrupt *tail* stops replay (reported, not fatal), duplicated records
//! are deduplicated, reordered records are sorted — while a genuine gap in
//! the sequence is a hard error, because silently skipping a committed
//! record would resurrect a different history.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::{IndexKind, KindMetrics, Metrics, ObjectEvent, QueryKind};

/// Magic number opening every frame (`"CPMW"` in ASCII).
pub const FRAME_MAGIC: u32 = 0x4350_4D57;

/// Current wire-format version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u16 = 1;

/// Frame kind: a full engine/server snapshot.
pub const FRAME_SNAPSHOT: u16 = 1;

/// Frame kind: one journal record.
pub const FRAME_JOURNAL: u16 = 2;

/// Frame kind: one [`cluster::ClusterMsg`] of the coordinator/worker
/// protocol.
pub const FRAME_CLUSTER: u16 = 3;

pub mod cluster;

/// A typed decoding failure, carrying the byte offset where the input
/// stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field could be read in full.
    UnexpectedEof {
        /// Offset of the truncated field.
        offset: usize,
        /// Bytes the field still needed.
        needed: usize,
    },
    /// A frame did not start with [`FRAME_MAGIC`].
    BadMagic {
        /// Offset of the magic field.
        offset: usize,
        /// The value found instead.
        found: u32,
    },
    /// The frame's format version is not understood by this build.
    UnsupportedVersion {
        /// Offset of the version field.
        offset: usize,
        /// The version found.
        version: u16,
    },
    /// The frame kind did not match what the caller expected.
    WrongKind {
        /// Offset of the kind field.
        offset: usize,
        /// The kind found.
        found: u16,
        /// The kind expected.
        expected: u16,
    },
    /// The frame checksum did not match its contents.
    Checksum {
        /// Offset of the checksum field.
        offset: usize,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// A decoded value violates an invariant of its type.
    Invalid {
        /// Offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Bytes were left over after the value was fully decoded.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
        /// Number of unconsumed bytes.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::UnexpectedEof { offset, needed } => {
                write!(f, "unexpected end of input at offset {offset} ({needed} more bytes needed)")
            }
            WireError::BadMagic { offset, found } => {
                write!(f, "bad frame magic {found:#010x} at offset {offset}")
            }
            WireError::UnsupportedVersion { offset, version } => {
                write!(f, "unsupported wire version {version} at offset {offset}")
            }
            WireError::WrongKind {
                offset,
                found,
                expected,
            } => write!(
                f,
                "frame kind {found} at offset {offset} (expected kind {expected})"
            ),
            WireError::Checksum {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::Invalid { offset, what } => {
                write!(f, "invalid value at offset {offset}: {what}")
            }
            WireError::TrailingBytes { offset, len } => {
                write!(f, "{len} trailing bytes at offset {offset}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3 polynomial) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append-only byte sink for encoding; all integers are little-endian.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that reuses `buf`'s allocation; any previous contents
    /// are cleared. This is the amortized-allocation path for encode
    /// loops that produce one value per cycle into the same buffer.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Forward-only byte source for decoding, tracking the current offset so
/// every [`WireError`] can say *where* the input went wrong.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset from the start of the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Error unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                offset: self.pos,
                len: self.remaining(),
            })
        }
    }

    /// Take `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Take a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Take a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Take an `f64` bit pattern (any bits — callers validate finiteness
    /// where it matters).
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Take a `u32` element count and sanity-check it against the bytes
    /// remaining (`min_elem_bytes ≥ 1` per element), so a corrupted count
    /// cannot drive a huge allocation.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let at = self.pos;
        let len = self.take_u32()? as usize;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Invalid {
                offset: at,
                what: "length prefix exceeds remaining input",
            });
        }
        Ok(len)
    }
}

/// Serialize a value into a [`Writer`].
pub trait Encode {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Encode into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encode into `out`, clearing it first but reusing its allocation.
    ///
    /// Produces exactly the bytes of [`Encode::encode_to_vec`]; steady
    /// state performs no allocation once `out` has grown to the working
    /// size.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::reusing(core::mem::take(out));
        self.encode(&mut w);
        *out = w.into_bytes();
    }
}

/// Deserialize a value from a [`Reader`], validating every invariant the
/// type's constructors would otherwise enforce by panicking.
pub trait Decode: Sized {
    /// Decode one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decode a value that must span the whole input (no trailing bytes).
    fn decode_all(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! impl_codec_uint {
    ($($ty:ty => $put:ident / $take:ident),+ $(,)?) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$take()
            }
        }
    )+};
}

impl_codec_uint! {
    u8 => put_u8 / take_u8,
    u16 => put_u16 / take_u16,
    u32 => put_u32 / take_u32,
    u64 => put_u64 / take_u64,
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        usize::try_from(r.take_u64()?).map_err(|_| WireError::Invalid {
            offset: at,
            what: "count does not fit this platform's usize",
        })
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "boolean tag outside {0, 1}",
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(u32::try_from(self.len()).expect("collection fits a u32 length prefix"));
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if bool::decode(r)? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(u32::try_from(self.len()).expect("string fits a u32 length prefix"));
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        let at = r.offset();
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            offset: at,
            what: "string bytes are not valid UTF-8",
        })
    }
}

impl Encode for ObjectId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for ObjectId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ObjectId(r.take_u32()?))
    }
}

impl Encode for QueryId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for QueryId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(QueryId(r.take_u32()?))
    }
}

impl Encode for Point {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
}

impl Decode for Point {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        let x = r.take_f64()?;
        let y = r.take_f64()?;
        if !x.is_finite() || !y.is_finite() {
            return Err(WireError::Invalid {
                offset: at,
                what: "non-finite point coordinate",
            });
        }
        Ok(Point::new(x, y))
    }
}

impl Encode for Rect {
    fn encode(&self, w: &mut Writer) {
        self.lo.encode(w);
        self.hi.encode(w);
    }
}

impl Decode for Rect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        let lo = Point::decode(r)?;
        let hi = Point::decode(r)?;
        if lo.x > hi.x || lo.y > hi.y {
            return Err(WireError::Invalid {
                offset: at,
                what: "rectangle corners out of order",
            });
        }
        Ok(Rect::new(lo, hi))
    }
}

impl Encode for QueryKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for QueryKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(QueryKind::Knn),
            1 => Ok(QueryKind::Range),
            2 => Ok(QueryKind::Ann),
            3 => Ok(QueryKind::Constrained),
            4 => Ok(QueryKind::Rnn),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown query-kind tag",
            }),
        }
    }
}

impl Encode for IndexKind {
    fn encode(&self, w: &mut Writer) {
        match *self {
            IndexKind::Uniform => w.put_u8(0),
            IndexKind::Quadtree { split_threshold } => {
                w.put_u8(1);
                w.put_u32(split_threshold);
            }
        }
    }
}

impl Decode for IndexKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(IndexKind::Uniform),
            1 => {
                let split_at = r.offset();
                let split_threshold = r.take_u32()?;
                if split_threshold == 0 {
                    return Err(WireError::Invalid {
                        offset: split_at,
                        what: "quadtree split threshold must be at least 1",
                    });
                }
                Ok(IndexKind::Quadtree { split_threshold })
            }
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown index-kind tag",
            }),
        }
    }
}

impl Encode for ObjectEvent {
    fn encode(&self, w: &mut Writer) {
        match *self {
            ObjectEvent::Appear { id, pos } => {
                w.put_u8(0);
                id.encode(w);
                pos.encode(w);
            }
            ObjectEvent::Move { id, to } => {
                w.put_u8(1);
                id.encode(w);
                to.encode(w);
            }
            ObjectEvent::Disappear { id } => {
                w.put_u8(2);
                id.encode(w);
            }
        }
    }
}

impl Decode for ObjectEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(ObjectEvent::Appear {
                id: ObjectId::decode(r)?,
                pos: Point::decode(r)?,
            }),
            1 => Ok(ObjectEvent::Move {
                id: ObjectId::decode(r)?,
                to: Point::decode(r)?,
            }),
            2 => Ok(ObjectEvent::Disappear {
                id: ObjectId::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown object-event tag",
            }),
        }
    }
}

impl Encode for KindMetrics {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.cell_accesses);
        w.put_u64(self.objects_processed);
        w.put_u64(self.heap_pushes);
        w.put_u64(self.heap_pops);
        w.put_u64(self.computations);
        w.put_u64(self.recomputations);
        w.put_u64(self.merge_resolutions);
    }
}

impl Decode for KindMetrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(KindMetrics {
            cell_accesses: r.take_u64()?,
            objects_processed: r.take_u64()?,
            heap_pushes: r.take_u64()?,
            heap_pops: r.take_u64()?,
            computations: r.take_u64()?,
            recomputations: r.take_u64()?,
            merge_resolutions: r.take_u64()?,
        })
    }
}

impl Encode for Metrics {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.cell_accesses);
        w.put_u64(self.objects_processed);
        w.put_u64(self.heap_pushes);
        w.put_u64(self.heap_pops);
        w.put_u64(self.computations);
        w.put_u64(self.recomputations);
        w.put_u64(self.merge_resolutions);
        w.put_u64(self.updates_applied);
        w.put_u64(self.regrids);
        w.put_u64(self.regrid_objects_migrated);
        w.put_u64(self.regrid_queries_recomputed);
        for km in &self.by_kind {
            km.encode(w);
        }
    }
}

impl Decode for Metrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut m = Metrics {
            cell_accesses: r.take_u64()?,
            objects_processed: r.take_u64()?,
            heap_pushes: r.take_u64()?,
            heap_pops: r.take_u64()?,
            computations: r.take_u64()?,
            recomputations: r.take_u64()?,
            merge_resolutions: r.take_u64()?,
            updates_applied: r.take_u64()?,
            regrids: r.take_u64()?,
            regrid_objects_migrated: r.take_u64()?,
            regrid_queries_recomputed: r.take_u64()?,
            by_kind: Default::default(),
        };
        for km in m.by_kind.iter_mut() {
            *km = KindMetrics::decode(r)?;
        }
        Ok(m)
    }
}

/// Append one frame — `[magic][version][kind][payload len][payload][crc]`,
/// with the CRC-32 computed over everything before it — to `out`.
pub fn write_frame(out: &mut Vec<u8>, kind: u16, payload: &[u8]) {
    let start = out.len();
    let mut w = Writer::new();
    w.put_u32(FRAME_MAGIC);
    w.put_u16(WIRE_VERSION);
    w.put_u16(kind);
    w.put_u32(u32::try_from(payload.len()).expect("frame payload fits a u32 length"));
    w.put_bytes(payload);
    out.extend_from_slice(w.as_slice());
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Read one frame of kind `expect_kind` from `r`, verifying magic,
/// version, length and checksum; returns the payload slice.
pub fn read_frame<'a>(r: &mut Reader<'a>, expect_kind: u16) -> Result<&'a [u8], WireError> {
    let start = r.offset();
    let magic = r.take_u32()?;
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic {
            offset: start,
            found: magic,
        });
    }
    let version_at = r.offset();
    let version = r.take_u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            offset: version_at,
            version,
        });
    }
    let kind_at = r.offset();
    let kind = r.take_u16()?;
    if kind != expect_kind {
        return Err(WireError::WrongKind {
            offset: kind_at,
            found: kind,
            expected: expect_kind,
        });
    }
    let len = r.take_len(1)?;
    let payload = r.take_bytes(len)?;
    let body_end = r.offset();
    let crc_at = r.offset();
    let stored = r.take_u32()?;
    // Recompute over the whole frame body (header + payload). The reader
    // only hands out slices of its original buffer, so the frame bytes are
    // still addressable at `start..body_end`.
    let computed = {
        let whole = r.buf;
        crc32(&whole[start..body_end])
    };
    if stored != computed {
        return Err(WireError::Checksum {
            offset: crc_at,
            stored,
            computed,
        });
    }
    Ok(payload)
}

/// Encode `value` as a single standalone frame of `kind`.
pub fn encode_framed<T: Encode>(kind: u16, value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, kind, &value.encode_to_vec());
    out
}

/// Encode `value` as a single standalone frame of `kind` into `out`,
/// clearing it first but reusing its allocation.
///
/// Byte-identical to [`encode_framed`], without that path's two per-call
/// allocations (the intermediate payload vector and the frame vector):
/// the payload is encoded straight into the frame buffer after a length
/// placeholder that is backfilled once the payload size is known.
pub fn encode_framed_into<T: Encode>(kind: u16, value: &T, out: &mut Vec<u8>) {
    let mut w = Writer::reusing(core::mem::take(out));
    w.put_u32(FRAME_MAGIC);
    w.put_u16(WIRE_VERSION);
    w.put_u16(kind);
    w.put_u32(0); // payload length, backfilled below
    let body = w.len();
    value.encode(&mut w);
    let len = u32::try_from(w.len() - body).expect("frame payload fits a u32 length");
    let mut buf = w.into_bytes();
    buf[body - 4..body].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    *out = buf;
}

/// Decode a single standalone frame of `kind` that must span all of
/// `bytes`, then decode its payload as `T`.
pub fn decode_framed<T: Decode>(kind: u16, bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let payload = read_frame(&mut r, kind)?;
    r.expect_end()?;
    T::decode_all(payload)
}

/// An in-memory append-only journal: each record is one
/// [`FRAME_JOURNAL`] frame whose payload opens with a monotone sequence
/// number. See [`Journal::replay`] for the recovery semantics.
#[derive(Debug, Clone)]
pub struct Journal {
    bytes: Vec<u8>,
    next_seq: u64,
}

/// The outcome of [`Journal::replay`]: the usable records plus, when the
/// journal did not end cleanly, the typed error describing its tail.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// `(sequence, payload)` records — deduplicated, sorted, and
    /// contiguous starting right after the requested watermark.
    pub records: Vec<(u64, Vec<u8>)>,
    /// `Some` when replay stopped at a torn or corrupt tail frame; the
    /// records before it are still valid (an append-only log's normal
    /// crash residue).
    pub tail_error: Option<WireError>,
}

impl Journal {
    /// An empty journal whose first appended record will carry sequence
    /// number `watermark + 1` (the snapshot it complements stores
    /// `watermark`).
    pub fn new(watermark: u64) -> Self {
        Self {
            bytes: Vec::new(),
            next_seq: watermark + 1,
        }
    }

    /// Append one record; returns its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut body = Writer::new();
        body.put_u64(seq);
        body.put_bytes(payload);
        write_frame(&mut self.bytes, FRAME_JOURNAL, body.as_slice());
        seq
    }

    /// The journal's raw bytes (what would be written to stable storage).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Sequence number of the most recently appended record (the
    /// watermark a snapshot taken *now* should store).
    pub fn watermark(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number the *next* [`Journal::append`] will stamp.
    ///
    /// This is the journal's at-least-once delivery cursor: a receiver
    /// that remembers the last sequence it applied can hand it to
    /// [`Journal::replay`] (as `after`) or to [`dedup`] and redelivered
    /// records collapse away. Always `watermark() + 1`.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Drop every record and restart the sequence after a checkpoint at
    /// `watermark`.
    pub fn truncate_to(&mut self, watermark: u64) {
        self.bytes.clear();
        self.next_seq = watermark + 1;
    }

    /// Parse `bytes` as a journal and return the records with sequence
    /// numbers greater than `after`, ready to replay:
    ///
    /// * a torn or corrupt **tail** (truncated mid-frame, flipped bits —
    ///   the residue of a crash during an append) stops parsing; the
    ///   records already parsed are returned with
    ///   [`JournalReplay::tail_error`] describing the tail;
    /// * **duplicated** records (same sequence, same bytes — an at-least-
    ///   once redelivery) are deduplicated;
    /// * **reordered** records are sorted by sequence;
    /// * a **gap** in the sequence, or two records claiming the same
    ///   sequence with different payloads, is a hard error: replaying
    ///   around either would fabricate a history that was never run.
    pub fn replay(bytes: &[u8], after: u64) -> Result<JournalReplay, WireError> {
        let mut r = Reader::new(bytes);
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut tail_error = None;
        while !r.is_at_end() {
            let payload = match read_frame(&mut r, FRAME_JOURNAL) {
                Ok(p) => p,
                Err(e) => {
                    tail_error = Some(e);
                    break;
                }
            };
            let mut body = Reader::new(payload);
            match body.take_u64() {
                Ok(seq) => records.push((seq, payload[body.offset()..].to_vec())),
                Err(e) => {
                    tail_error = Some(e);
                    break;
                }
            }
        }
        Ok(JournalReplay {
            records: dedup(records, after)?,
            tail_error,
        })
    }
}

/// Collapse an at-least-once record stream into the unique, contiguous
/// suffix after `after` — the journal's sequence-number dedup, exposed so
/// any receiver of sequence-stamped frames (recovery, the cluster delta
/// plane) can apply the same semantics:
///
/// * records with `seq <= after` are already applied and dropped;
/// * **reordered** records are sorted by sequence;
/// * **duplicated** records (same sequence, same bytes) collapse to one;
/// * two records claiming the same sequence with *different* payloads are
///   a hard [`WireError::Invalid`] — so is a gap in the sequence, because
///   replaying around either would fabricate a history that was never
///   run.
pub fn dedup(
    mut records: Vec<(u64, Vec<u8>)>,
    after: u64,
) -> Result<Vec<(u64, Vec<u8>)>, WireError> {
    records.retain(|&(seq, _)| seq > after);
    records.sort_by_key(|&(seq, _)| seq);
    let mut deduped: Vec<(u64, Vec<u8>)> = Vec::with_capacity(records.len());
    for (seq, payload) in records {
        match deduped.last() {
            Some((prev, prev_payload)) if *prev == seq => {
                if *prev_payload != payload {
                    return Err(WireError::Invalid {
                        offset: 0,
                        what: "conflicting journal records with the same sequence number",
                    });
                }
            }
            _ => deduped.push((seq, payload)),
        }
    }
    for (i, (seq, _)) in deduped.iter().enumerate() {
        if *seq != after + 1 + i as u64 {
            return Err(WireError::Invalid {
                offset: 0,
                what: "gap in journal sequence numbers",
            });
        }
    }
    Ok(deduped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        7u8.encode(&mut w);
        513u16.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        u64::MAX.encode(&mut w);
        (-1.25f64).encode(&mut w);
        true.encode(&mut w);
        42usize.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 7);
        assert_eq!(u16::decode(&mut r).unwrap(), 513);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-1.25f64).to_bits());
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(usize::decode(&mut r).unwrap(), 42);
        r.expect_end().unwrap();
    }

    #[test]
    fn geometry_and_event_types_roundtrip() {
        let values = (
            Point::new(0.25, 0.75),
            Rect::new(Point::new(0.1, 0.2), Point::new(0.3, 0.4)),
            vec![
                ObjectEvent::Appear {
                    id: ObjectId(3),
                    pos: Point::new(0.5, 0.5),
                },
                ObjectEvent::Move {
                    id: ObjectId(4),
                    to: Point::new(0.9, 0.1),
                },
                ObjectEvent::Disappear { id: ObjectId(5) },
            ],
        );
        let bytes = values.encode_to_vec();
        let got = <(Point, Rect, Vec<ObjectEvent>)>::decode_all(&bytes).unwrap();
        assert_eq!(got.0, values.0);
        assert_eq!(got.1.lo, values.1.lo);
        assert_eq!(got.1.hi, values.1.hi);
        assert_eq!(got.2, values.2);
    }

    #[test]
    fn encode_framed_into_matches_encode_framed_byte_for_byte() {
        let values = (
            Point::new(0.125, 0.875),
            vec![
                ObjectEvent::Appear {
                    id: ObjectId(3),
                    pos: Point::new(0.5, 0.5),
                },
                ObjectEvent::Disappear { id: ObjectId(5) },
            ],
        );
        let fresh = encode_framed(FRAME_SNAPSHOT, &values);
        let mut reused = vec![0xEE; 3]; // stale contents must be cleared
        encode_framed_into(FRAME_SNAPSHOT, &values, &mut reused);
        assert_eq!(reused, fresh);
        // The reused path decodes through the same validated gate.
        let got: (Point, Vec<ObjectEvent>) = decode_framed(FRAME_SNAPSHOT, &reused).unwrap();
        assert_eq!(got.0, values.0);
        assert_eq!(got.1, values.1);
        // encode_into mirrors encode_to_vec the same way.
        let mut buf = Vec::new();
        values.1.encode_into(&mut buf);
        assert_eq!(buf, values.1.encode_to_vec());
    }

    #[test]
    fn index_kinds_roundtrip_and_reject_degenerate_thresholds() {
        for kind in [
            IndexKind::Uniform,
            IndexKind::quadtree(),
            IndexKind::Quadtree { split_threshold: 1 },
        ] {
            assert_eq!(IndexKind::decode_all(&kind.encode_to_vec()).unwrap(), kind);
        }
        // A zero split threshold could never have been built.
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u32(0);
        assert!(matches!(
            IndexKind::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
        // Unknown backend tag.
        let mut w = Writer::new();
        w.put_u8(9);
        assert!(matches!(
            IndexKind::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn metrics_roundtrip_bit_exact() {
        let mut m = Metrics {
            cell_accesses: 10,
            updates_applied: 99,
            regrids: 2,
            ..Default::default()
        };
        m.by_kind[2].heap_pushes = 17;
        let got = Metrics::decode_all(&m.encode_to_vec()).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn invalid_values_are_typed_errors() {
        // NaN point.
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        w.put_f64(0.5);
        assert!(matches!(
            Point::decode_all(w.as_slice()),
            Err(WireError::Invalid { offset: 0, .. })
        ));
        // Out-of-order rect.
        let bad_rect = (Point::new(0.9, 0.9), Point::new(0.1, 0.1)).encode_to_vec();
        assert!(matches!(
            Rect::decode_all(&bad_rect),
            Err(WireError::Invalid { .. })
        ));
        // Bad bool tag / kind tag / event tag.
        assert!(matches!(
            bool::decode_all(&[7]),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            QueryKind::decode_all(&[9]),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            ObjectEvent::decode_all(&[9]),
            Err(WireError::Invalid { .. })
        ));
        // Oversized length prefix cannot drive an allocation.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        assert!(matches!(
            Vec::<u64>::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn frames_detect_every_corruption_class() {
        let value = vec![1u64, 2, 3];
        let good = encode_framed(FRAME_SNAPSHOT, &value);
        assert_eq!(
            decode_framed::<Vec<u64>>(FRAME_SNAPSHOT, &good).unwrap(),
            value
        );
        // Truncation at every prefix length fails typed, never panics.
        for cut in 0..good.len() {
            assert!(decode_framed::<Vec<u64>>(FRAME_SNAPSHOT, &good[..cut]).is_err());
        }
        // A flip of any single bit fails typed.
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode_framed::<Vec<u64>>(FRAME_SNAPSHOT, &bad).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
        // Wrong kind is reported as such.
        assert!(matches!(
            decode_framed::<Vec<u64>>(FRAME_JOURNAL, &good),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn journal_replay_handles_crash_residue() {
        let mut j = Journal::new(10);
        assert_eq!(j.append(b"a"), 11);
        assert_eq!(j.append(b"bb"), 12);
        assert_eq!(j.append(b"ccc"), 13);
        assert_eq!(j.watermark(), 13);

        // Clean replay from the snapshot watermark.
        let replay = Journal::replay(j.bytes(), 10).unwrap();
        assert!(replay.tail_error.is_none());
        assert_eq!(
            replay.records,
            vec![
                (11, b"a".to_vec()),
                (12, b"bb".to_vec()),
                (13, b"ccc".to_vec())
            ]
        );
        // Replay after a later watermark skips the prefix.
        assert_eq!(Journal::replay(j.bytes(), 12).unwrap().records.len(), 1);

        // Torn tail: truncation anywhere inside the last frame loses only
        // that record and reports the tear.
        let frame_len = {
            let mut probe = Journal::new(0);
            probe.append(b"ccc");
            probe.bytes().len()
        };
        for cut in 1..frame_len {
            let torn = &j.bytes()[..j.bytes().len() - cut];
            let replay = Journal::replay(torn, 10).unwrap();
            assert_eq!(replay.records.len(), 2, "cut {cut}");
            assert!(replay.tail_error.is_some(), "cut {cut}");
        }

        // A duplicated frame (at-least-once redelivery) is deduplicated,
        // and a reordering is sorted back.
        let mut solo = Journal::new(0);
        solo.append(b"x");
        let frame = solo.bytes().to_vec();
        let mut j2 = Journal::new(1);
        j2.append(b"y");
        let mut duped = frame.clone();
        duped.extend_from_slice(j2.bytes());
        duped.extend_from_slice(&frame);
        let replay = Journal::replay(&duped, 0).unwrap();
        assert!(replay.tail_error.is_none());
        assert_eq!(replay.records, vec![(1, b"x".to_vec()), (2, b"y".to_vec())]);
        let mut reordered = j2.bytes().to_vec();
        reordered.extend_from_slice(&frame);
        let replay = Journal::replay(&reordered, 0).unwrap();
        assert_eq!(replay.records, vec![(1, b"x".to_vec()), (2, b"y".to_vec())]);

        // A genuine gap is a hard error.
        let mut j3 = Journal::new(5);
        j3.append(b"z");
        assert!(matches!(
            Journal::replay(j3.bytes(), 3),
            Err(WireError::Invalid { .. })
        ));
        // Conflicting payloads under one sequence number are a hard error.
        let mut conflict = frame.clone();
        let mut other = Journal::new(0);
        other.append(b"X");
        conflict.extend_from_slice(other.bytes());
        assert!(matches!(
            Journal::replay(&conflict, 0),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn next_seq_tracks_appends_and_truncation() {
        let mut j = Journal::new(7);
        assert_eq!(j.next_seq(), 8);
        j.append(b"a");
        assert_eq!(j.next_seq(), 9);
        assert_eq!(j.next_seq(), j.watermark() + 1);
        j.truncate_to(20);
        assert_eq!(j.next_seq(), 21);
    }

    #[test]
    fn dedup_collapses_redelivery_and_rejects_gaps_and_conflicts() {
        let rec = |seq: u64, b: &[u8]| (seq, b.to_vec());
        // Reordered + duplicated at-least-once stream collapses to the
        // contiguous suffix after the watermark.
        let stream = vec![
            rec(3, b"c"),
            rec(1, b"a"),
            rec(2, b"b"),
            rec(2, b"b"),
            rec(1, b"a"),
        ];
        assert_eq!(
            dedup(stream, 0).unwrap(),
            vec![rec(1, b"a"), rec(2, b"b"), rec(3, b"c")]
        );
        // Records at or below the watermark are already applied.
        assert_eq!(
            dedup(vec![rec(1, b"a"), rec(2, b"b"), rec(3, b"c")], 2).unwrap(),
            vec![rec(3, b"c")]
        );
        assert_eq!(dedup(vec![rec(1, b"a")], 5).unwrap(), vec![]);
        // A gap is a hard error, not a silent skip.
        assert!(matches!(
            dedup(vec![rec(1, b"a"), rec(3, b"c")], 0),
            Err(WireError::Invalid { .. })
        ));
        // So is the same sequence claiming two different payloads.
        assert!(matches!(
            dedup(vec![rec(1, b"a"), rec(1, b"A")], 0),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn truncate_to_restarts_the_sequence() {
        let mut j = Journal::new(0);
        j.append(b"a");
        j.append(b"b");
        j.truncate_to(2);
        assert!(j.bytes().is_empty());
        assert_eq!(j.append(b"c"), 3);
    }

    #[test]
    fn mid_journal_corruption_stops_replay_without_panicking() {
        let mut j = Journal::new(0);
        j.append(b"one");
        j.append(b"two");
        j.append(b"three");
        // Flip one bit in the middle frame: that record and everything
        // after it are dropped, and the tail error says why.
        let frame_one_len = {
            let mut probe = Journal::new(0);
            probe.append(b"one");
            probe.bytes().len()
        };
        let mut bad = j.bytes().to_vec();
        bad[frame_one_len + 12] ^= 0x01;
        let replay = Journal::replay(&bad, 0).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.tail_error.is_some());
    }
}
