//! The δ-independent half of the grid index: the central object tables.
//!
//! [`ObjectStore`] owns the per-object state that does **not** depend on
//! the cell side `δ`: the dense position table (`oid → Option<Point>`,
//! `None` = off-line) and the parallel back-pointer table that makes
//! bucket removal O(1). Everything keyed by `δ` — cell buckets, coordinate
//! math, packed cell ids — lives in [`crate::CellIndex`]; the composed
//! [`crate::Grid`] orchestrates the two.
//!
//! The split exists so that **changing resolution never touches the
//! object tables**: [`crate::Grid::regrid`] rebuilds the cell index from
//! the store's positions and rewrites back-pointer *values* in place,
//! while the tables themselves (their allocations, their `oid → slot`
//! addressing, the live population) are carried over untouched. The
//! regrid property suite asserts exactly this invariance.

use cpm_geom::{clamp_coord, ObjectId, Point};

/// Back-pointer of one indexed object: which bucket it lives in and at
/// which slot. Valid only while the object's position slot is `Some`.
///
/// The *table* is δ-independent (one entry per object id); the stored
/// `cell_id` values are in the current index's packed-id space and are
/// rewritten by [`crate::Grid::regrid`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BackRef {
    /// Packed id of the cell whose bucket holds the object.
    pub(crate) cell_id: u64,
    /// Index of the object inside that bucket.
    pub(crate) slot: u32,
}

/// The central object tables: positions and back-pointers, one dense slot
/// per object id. This is the δ-independent half of the store/index
/// split: [`crate::Grid::regrid`] rebuilds the [`crate::CellIndex`]
/// around it while these tables — and every `oid → position` answer read
/// through them — are carried over untouched.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    /// Central position table, one slot per object id. `None` = off-line.
    positions: Vec<Option<Point>>,
    /// Back-pointer table, parallel to `positions`: `oid → (cell, slot)`.
    pub(crate) backrefs: Vec<BackRef>,
    /// Number of live (indexed) objects.
    live: usize,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (indexed) objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no objects are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current position of object `oid`, or `None` if it is off-line.
    #[inline]
    pub fn position(&self, oid: ObjectId) -> Option<Point> {
        self.positions.get(oid.index()).copied().flatten()
    }

    /// Iterate over `(oid, position)` for every live object, ascending by
    /// object id.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (ObjectId(i as u32), p)))
    }

    /// Memory footprint estimate in the paper's "memory units" (one unit =
    /// one number; Section 4.1 charges `s_obj = 3·N` for the object data).
    pub fn space_units(&self) -> usize {
        3 * self.live
    }

    /// Mark `oid` live at `p` (clamped into the workspace), growing the
    /// tables as needed. Returns the stored (clamped) position. The caller
    /// ([`crate::Grid::insert`]) is responsible for bucketing the object
    /// and writing its back-pointer.
    ///
    /// # Panics
    /// Panics if the object is already live.
    #[inline]
    pub(crate) fn activate(&mut self, oid: ObjectId, p: Point) -> Point {
        debug_assert!(p.is_finite(), "object position must be finite");
        let idx = oid.index();
        if idx >= self.positions.len() {
            self.positions.resize(idx + 1, None);
            self.backrefs.resize(idx + 1, BackRef::default());
        }
        assert!(
            self.positions[idx].is_none(),
            "object {oid} is already indexed"
        );
        let p = Point::new(clamp_coord(p.x), clamp_coord(p.y));
        self.positions[idx] = Some(p);
        self.live += 1;
        p
    }

    /// Mark `oid` off-line, returning its last position (`None` if it was
    /// not live). The caller is responsible for unbucketing the object
    /// first (its back-pointer is only meaningful while live).
    #[inline]
    pub(crate) fn deactivate(&mut self, oid: ObjectId) -> Option<Point> {
        let p = self.positions.get_mut(oid.index())?.take()?;
        self.live -= 1;
        Some(p)
    }

    /// Verify the store's own invariants (test helper; the cross-checks
    /// against the cell index live in [`crate::Grid::check_integrity`]).
    #[doc(hidden)]
    pub fn check_integrity(&self) {
        let live_positions = self.positions.iter().flatten().count();
        assert_eq!(live_positions, self.live, "position table != live count");
        assert_eq!(
            self.positions.len(),
            self.backrefs.len(),
            "back-pointer table not parallel to positions"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_deactivate_roundtrip() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        let p = s.activate(ObjectId(3), Point::new(0.25, 0.75));
        assert_eq!(p, Point::new(0.25, 0.75));
        assert_eq!(s.len(), 1);
        assert_eq!(s.position(ObjectId(3)), Some(p));
        assert_eq!(s.position(ObjectId(2)), None);
        assert_eq!(s.space_units(), 3);
        assert_eq!(s.deactivate(ObjectId(3)), Some(p));
        assert_eq!(s.deactivate(ObjectId(3)), None);
        assert!(s.is_empty());
        s.check_integrity();
    }

    #[test]
    fn activate_clamps_into_workspace() {
        let mut s = ObjectStore::new();
        let p = s.activate(ObjectId(0), Point::new(2.0, -1.0));
        assert!(p.x < 1.0 && p.y == 0.0);
    }

    #[test]
    fn iter_is_ascending_by_id() {
        let mut s = ObjectStore::new();
        for id in [5u32, 1, 9, 3] {
            s.activate(ObjectId(id), Point::new(0.5, 0.5));
        }
        s.deactivate(ObjectId(9)).unwrap();
        let ids: Vec<u32> = s.iter().map(|(o, _)| o.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_activate_panics() {
        let mut s = ObjectStore::new();
        s.activate(ObjectId(0), Point::new(0.1, 0.1));
        s.activate(ObjectId(0), Point::new(0.2, 0.2));
    }
}
