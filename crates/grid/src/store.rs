//! The δ-independent half of the grid index: the central object tables.
//!
//! [`ObjectStore`] owns the per-object state that does **not** depend on
//! the cell side `δ`: the dense position table and the parallel
//! back-pointer table that makes bucket removal O(1). Everything keyed by
//! `δ` — cell buckets, coordinate math, packed cell ids — lives in
//! [`crate::CellIndex`]; the composed [`crate::Grid`] orchestrates the two.
//!
//! The split exists so that **changing resolution never touches the
//! object tables**: [`crate::Grid::regrid`] rebuilds the cell index from
//! the store's positions and rewrites back-pointer *values* in place,
//! while the tables themselves (their allocations, their `oid → slot`
//! addressing, the live population) are carried over untouched. The
//! regrid property suite asserts exactly this invariance.
//!
//! # Struct-of-arrays layout
//!
//! Positions are stored as two parallel `Vec<f64>` columns (`xs`, `ys`)
//! rather than a `Vec<Option<Point>>`. An off-line slot holds `NaN` in
//! both columns — a safe sentinel because [`ObjectStore::activate`]
//! rejects non-finite coordinates with a hard (release-mode) assert, so
//! no *live* object can ever carry a `NaN` coordinate. The columnar
//! layout is what the batched distance kernels in [`crate::kernels`]
//! consume: a bucket scan reads two contiguous gather streams instead of
//! decoding an `Option<Point>` per object, and the per-bucket loops
//! auto-vectorize. The public API is unchanged: `position(oid)` still
//! answers `Option<Point>`.

use crate::kernels::Coords;
use cpm_geom::{clamp_coord, ObjectId, Point};

/// Back-pointer of one indexed object: which bucket it lives in and at
/// which slot. Valid only while the object's position slot is live.
///
/// The *table* is δ-independent (one entry per object id); the stored
/// `cell_id` values are in the current index's packed-id space and are
/// rewritten by [`crate::Grid::regrid`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BackRef {
    /// Packed id of the cell whose bucket holds the object.
    pub(crate) cell_id: u64,
    /// Index of the object inside that bucket.
    pub(crate) slot: u32,
}

/// The central object tables: positions and back-pointers, one dense slot
/// per object id. This is the δ-independent half of the store/index
/// split: [`crate::Grid::regrid`] rebuilds the [`crate::CellIndex`]
/// around it while these tables — and every `oid → position` answer read
/// through them — are carried over untouched.
///
/// Positions live in two parallel `f64` columns (struct-of-arrays) with
/// `NaN` marking off-line slots; see the module docs for why that is
/// safe and what the layout buys the distance kernels.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    /// X column of the position table, one slot per object id.
    /// `NaN` = off-line.
    xs: Vec<f64>,
    /// Y column, parallel to `xs`. `NaN` = off-line.
    ys: Vec<f64>,
    /// Back-pointer table, parallel to the columns: `oid → (cell, slot)`.
    pub(crate) backrefs: Vec<BackRef>,
    /// Number of live (indexed) objects.
    live: usize,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (indexed) objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no objects are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current position of object `oid`, or `None` if it is off-line.
    #[inline]
    pub fn position(&self, oid: ObjectId) -> Option<Point> {
        let idx = oid.index();
        let x = *self.xs.get(idx)?;
        if x.is_nan() {
            None
        } else {
            Some(Point::new(x, self.ys[idx]))
        }
    }

    /// Borrow the raw coordinate columns for the batched distance
    /// kernels. Live slots hold finite coordinates; off-line slots hold
    /// `NaN`. Cell buckets only ever reference live objects, so a kernel
    /// gathering through a bucket's `&[ObjectId]` never reads a `NaN`.
    #[inline]
    pub fn coords(&self) -> Coords<'_> {
        Coords::from_columns(&self.xs, &self.ys)
    }

    /// Iterate over `(oid, position)` for every live object, ascending by
    /// object id.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.xs
            .iter()
            .zip(&self.ys)
            .enumerate()
            .filter(|(_, (x, _))| !x.is_nan())
            .map(|(i, (&x, &y))| (ObjectId(i as u32), Point::new(x, y)))
    }

    /// Memory footprint estimate in the paper's "memory units" (one unit =
    /// one number; Section 4.1 charges `s_obj = 3·N` for the object data).
    pub fn space_units(&self) -> usize {
        3 * self.live
    }

    /// Mark `oid` live at `p` (clamped into the workspace), growing the
    /// tables as needed. Returns the stored (clamped) position. The caller
    /// ([`crate::Grid::insert`]) is responsible for bucketing the object
    /// and writing its back-pointer.
    ///
    /// # Panics
    /// Panics if the object is already live, or if `p` is not finite.
    /// The finiteness check is a **hard assert even in release builds**:
    /// it is the ingest boundary that lets `NaN` serve as the off-line
    /// sentinel in the coordinate columns and lets every distance key
    /// downstream satisfy [`cpm_geom::TotalF64`]'s no-NaN contract.
    #[inline]
    pub(crate) fn activate(&mut self, oid: ObjectId, p: Point) -> Point {
        assert!(p.is_finite(), "object position must be finite");
        let idx = oid.index();
        if idx >= self.xs.len() {
            self.xs.resize(idx + 1, f64::NAN);
            self.ys.resize(idx + 1, f64::NAN);
            self.backrefs.resize(idx + 1, BackRef::default());
        }
        assert!(self.xs[idx].is_nan(), "object {oid} is already indexed");
        let p = Point::new(clamp_coord(p.x), clamp_coord(p.y));
        self.xs[idx] = p.x;
        self.ys[idx] = p.y;
        self.live += 1;
        p
    }

    /// Mark `oid` off-line, returning its last position (`None` if it was
    /// not live). The caller is responsible for unbucketing the object
    /// first (its back-pointer is only meaningful while live).
    #[inline]
    pub(crate) fn deactivate(&mut self, oid: ObjectId) -> Option<Point> {
        let idx = oid.index();
        let x = *self.xs.get(idx)?;
        if x.is_nan() {
            return None;
        }
        let p = Point::new(x, self.ys[idx]);
        self.xs[idx] = f64::NAN;
        self.ys[idx] = f64::NAN;
        self.live -= 1;
        Some(p)
    }

    /// Verify the store's own invariants (test helper; the cross-checks
    /// against the cell index live in [`crate::Grid::check_integrity`]).
    #[doc(hidden)]
    pub fn check_integrity(&self) {
        let live_positions = self.xs.iter().filter(|x| !x.is_nan()).count();
        assert_eq!(live_positions, self.live, "position table != live count");
        assert_eq!(self.xs.len(), self.ys.len(), "coordinate columns diverge");
        for (i, (x, y)) in self.xs.iter().zip(&self.ys).enumerate() {
            assert_eq!(
                x.is_nan(),
                y.is_nan(),
                "slot {i}: x/y off-line sentinels out of sync"
            );
            if !x.is_nan() {
                assert!(x.is_finite() && y.is_finite(), "slot {i}: non-finite live");
            }
        }
        assert_eq!(
            self.xs.len(),
            self.backrefs.len(),
            "back-pointer table not parallel to positions"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_deactivate_roundtrip() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        let p = s.activate(ObjectId(3), Point::new(0.25, 0.75));
        assert_eq!(p, Point::new(0.25, 0.75));
        assert_eq!(s.len(), 1);
        assert_eq!(s.position(ObjectId(3)), Some(p));
        assert_eq!(s.position(ObjectId(2)), None);
        assert_eq!(s.space_units(), 3);
        assert_eq!(s.deactivate(ObjectId(3)), Some(p));
        assert_eq!(s.deactivate(ObjectId(3)), None);
        assert!(s.is_empty());
        s.check_integrity();
    }

    #[test]
    fn activate_clamps_into_workspace() {
        let mut s = ObjectStore::new();
        let p = s.activate(ObjectId(0), Point::new(2.0, -1.0));
        assert!(p.x < 1.0 && p.y == 0.0);
    }

    #[test]
    fn iter_is_ascending_by_id() {
        let mut s = ObjectStore::new();
        for id in [5u32, 1, 9, 3] {
            s.activate(ObjectId(id), Point::new(0.5, 0.5));
        }
        s.deactivate(ObjectId(9)).unwrap();
        let ids: Vec<u32> = s.iter().map(|(o, _)| o.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_activate_panics() {
        let mut s = ObjectStore::new();
        s.activate(ObjectId(0), Point::new(0.1, 0.1));
        s.activate(ObjectId(0), Point::new(0.2, 0.2));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_position_is_rejected_at_the_ingest_boundary() {
        let mut s = ObjectStore::new();
        s.activate(ObjectId(0), Point::new(f64::NAN, 0.5));
    }

    #[test]
    fn coords_expose_live_slots_and_nan_sentinels() {
        let mut s = ObjectStore::new();
        s.activate(ObjectId(2), Point::new(0.25, 0.75));
        let c = s.coords();
        assert_eq!(c.slots(), 3);
        assert_eq!(c.point(ObjectId(2)), Point::new(0.25, 0.75));
        s.deactivate(ObjectId(2)).unwrap();
        let c = s.coords();
        assert!(c.point(ObjectId(2)).x.is_nan());
    }
}
