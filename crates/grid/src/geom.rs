//! The conceptual cell geometry shared by every spatial-index backend.
//!
//! CPM's query side only ever talks about the **conceptual partitioning**:
//! a `dim × dim` grid of cells with side `δ = 1/dim` over the unit square
//! (Section 3.1). Which data structure stores the objects that fall into
//! those cells is an implementation detail of the
//! [`crate::SpatialIndex`] backend — the coordinate math is not. This
//! module extracts that math into [`GridGeom`], a tiny `Copy` value every
//! backend exposes via [`crate::SpatialIndex::geom`], so query specs and
//! search loops can be written once against the geometry and run
//! unchanged over any backend.

use cpm_geom::{clamp_coord, Point, Rect};

use crate::CellCoord;

/// The conceptual `dim × dim` cell space over the unit square: dimension,
/// cell side `δ = 1/dim`, and all coordinate math (point→cell mapping,
/// cell extents, `mindist`, allocation-free region covers).
///
/// `GridGeom` is deliberately `Copy` and self-contained: iterators
/// returned from it borrow nothing, so region covers can be computed
/// while the owning index is mutably borrowed elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeom {
    dim: u32,
    delta: f64,
}

impl GridGeom {
    /// Geometry of a `dim × dim` conceptual grid over the unit square.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > 4096` (the packed-coordinate and
    /// clamping assumptions hold for `δ ≥ 1/4096`; the paper uses at most
    /// 1024).
    pub fn new(dim: u32) -> Self {
        assert!(dim > 0 && dim <= 4096, "grid dimension out of range: {dim}");
        Self {
            dim,
            delta: 1.0 / dim as f64,
        }
    }

    /// Grid dimension (cells per axis).
    #[inline]
    pub fn dim(self) -> u32 {
        self.dim
    }

    /// Cell side length `δ`.
    #[inline]
    pub fn delta(self) -> f64 {
        self.delta
    }

    /// Total number of conceptual cells (`dim²`).
    #[inline]
    pub fn total_cells(self) -> usize {
        (self.dim as usize) * (self.dim as usize)
    }

    /// The cell containing point `p` (`i = ⌊x/δ⌋`, `j = ⌊y/δ⌋`), with
    /// coordinates clamped into the workspace first.
    #[inline]
    pub fn cell_of(self, p: Point) -> CellCoord {
        let col = (clamp_coord(p.x) / self.delta) as u32;
        let row = (clamp_coord(p.y) / self.delta) as u32;
        // Guard against floating rounding right at the upper edge.
        CellCoord::new(col.min(self.dim - 1), row.min(self.dim - 1))
    }

    /// Unpack a cell id produced by [`CellCoord::id`] at this dimension.
    #[inline]
    pub fn cell_from_id(self, id: u64) -> CellCoord {
        let dim = self.dim as u64;
        CellCoord::new((id % dim) as u32, (id / dim) as u32)
    }

    /// The spatial extent of cell `c`.
    #[inline]
    pub fn cell_rect(self, c: CellCoord) -> Rect {
        let lo = Point::new(c.col as f64 * self.delta, c.row as f64 * self.delta);
        let hi = Point::new(lo.x + self.delta, lo.y + self.delta);
        Rect::new(lo, hi)
    }

    /// `mindist(c, q)`: minimum distance between cell `c` and point `q`
    /// (Table 3.1).
    #[inline]
    pub fn mindist(self, c: CellCoord, q: Point) -> f64 {
        self.cell_rect(c).mindist(q)
    }

    /// Squared `mindist(c, q)`, for comparison-only call sites.
    #[inline]
    pub fn mindist_sq(self, c: CellCoord, q: Point) -> f64 {
        self.cell_rect(c).mindist_sq(q)
    }

    /// The inclusive `(lo_col, hi_col, lo_row, hi_row)` cell bounds of the
    /// cells intersecting `region` (clamped into the grid).
    #[inline]
    pub(crate) fn rect_cell_bounds(self, region: &Rect) -> (u32, u32, u32, u32) {
        let lo_col = (clamp_coord(region.lo.x) / self.delta) as u32;
        let lo_row = (clamp_coord(region.lo.y) / self.delta) as u32;
        let hi_col = ((clamp_coord(region.hi.x)) / self.delta) as u32;
        let hi_row = ((clamp_coord(region.hi.y)) / self.delta) as u32;
        (
            lo_col.min(self.dim - 1),
            hi_col.min(self.dim - 1),
            lo_row.min(self.dim - 1),
            hi_row.min(self.dim - 1),
        )
    }

    /// Iterate, in row-major order and without allocating, over all cells
    /// (occupied or not) whose extent intersects `region`. Used by the
    /// baselines' square scans (YPK-CNN's `SR` rectangle) and by the
    /// monitors' influence-region registration — which is why the cover
    /// must include **empty** cells on every backend.
    pub fn cells_in_rect(self, region: &Rect) -> impl Iterator<Item = CellCoord> {
        let (lo_col, hi_col, lo_row, hi_row) = self.rect_cell_bounds(region);
        (lo_row..=hi_row)
            .flat_map(move |row| (lo_col..=hi_col).map(move |col| CellCoord::new(col, row)))
    }

    /// Iterate, without allocating, over all cells whose extent intersects
    /// the closed disk `(center, radius)` — the circle-cover counterpart of
    /// [`GridGeom::cells_in_rect`]. Callers that store the cover extend a
    /// reused buffer from this iterator (SEA-CNN's answer-region marks).
    pub fn cells_in_circle(self, center: Point, radius: f64) -> impl Iterator<Item = CellCoord> {
        let bbox = Rect::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        );
        let r_sq = radius * radius;
        self.cells_in_rect(&bbox)
            .filter(move |&c| self.cell_rect(c).mindist_sq(center) <= r_sq)
    }

    /// Collecting wrapper around [`GridGeom::cells_in_rect`] for callers
    /// that need an owned list; the hot paths use the iterator directly.
    pub fn cells_intersecting_rect(self, region: &Rect) -> Vec<CellCoord> {
        let (lo_col, hi_col, lo_row, hi_row) = self.rect_cell_bounds(region);
        // Multiply in usize: on a 4096² grid the product overflows u32.
        let cap = (hi_col - lo_col + 1) as usize * (hi_row - lo_row + 1) as usize;
        let mut out = Vec::with_capacity(cap);
        out.extend(self.cells_in_rect(region));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_the_floor_formula() {
        let g = GridGeom::new(8);
        assert_eq!(g.dim(), 8);
        assert_eq!(g.delta(), 0.125);
        assert_eq!(g.total_cells(), 64);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), CellCoord::new(7, 7));
        let c = CellCoord::new(2, 5);
        assert_eq!(g.cell_from_id(c.id(8)), c);
        assert_eq!(g.mindist(c, Point::new(0.3, 0.7)), 0.0);
        assert!(g.mindist_sq(CellCoord::new(0, 0), Point::new(1.0, 1.0)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn zero_dim_is_rejected() {
        let _ = GridGeom::new(0);
    }

    #[test]
    fn covers_are_value_iterators() {
        let g = GridGeom::new(8);
        let r = Rect::new(Point::new(0.2, 0.2), Point::new(0.3, 0.3));
        // The iterator is `'static`: it can outlive any index borrow.
        let cover: Vec<CellCoord> = g.cells_in_rect(&r).collect();
        assert_eq!(cover, g.cells_intersecting_rect(&r));
        let disk: Vec<CellCoord> = g.cells_in_circle(Point::new(0.5, 0.5), 0.13).collect();
        for &c in &disk {
            assert!(g.cell_rect(c).intersects_circle(Point::new(0.5, 0.5), 0.13));
        }
    }
}
