//! Per-cell influence lists (query-side book-keeping).
//!
//! "Each cell `c` of the grid is associated with … (ii) the list of queries
//! whose influence region contains `c`" (Section 3.1, Figure 3.3b). When a
//! location update touches a cell, only the queries in that cell's influence
//! list can be affected — this is the mechanism that lets CPM (and SEA-CNN's
//! answer-region variant) ignore irrelevant updates entirely.
//!
//! Like the grid's cell buckets, the lists are dense `Vec<QueryId>`s with
//! dedup-on-insert rather than hash sets: the table is probed once per
//! object update per touched cell, and that probe's result is immediately
//! scanned in full — a contiguous slice is both smaller and faster to walk.
//! Per-cell lists are short (`n · C_inf / cells` queries on average, see
//! Section 4.1), so the linear dedup scan on registration is cheap, and
//! removal swap-removes by value.

use cpm_geom::{FastHashMap, QueryId};

use crate::CellCoord;

/// Spare-list pool cap (see `Grid`'s bucket pool for rationale).
const LIST_POOL_CAP: usize = 4096;

/// Largest per-list capacity worth pooling; oversized spares are dropped
/// so one pathological cell can't pin memory in the pool.
const POOLED_LIST_CAP: usize = 256;

/// A sparse table mapping grid cells to the list of queries whose
/// influence region covers them.
///
/// Kept outside [`crate::Grid`] so that independent monitors (k-NN,
/// aggregate-NN, constrained-NN, SEA-CNN) can each maintain their own lists
/// over one shared object index.
#[derive(Debug, Default, Clone)]
pub struct InfluenceTable {
    dim: u32,
    /// Invariant: every stored list is non-empty and duplicate-free.
    lists: FastHashMap<u64, Vec<QueryId>>,
    /// Recycled list allocations (all empty).
    pool: Vec<Vec<QueryId>>,
}

impl InfluenceTable {
    /// Create an empty table for a `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self {
            dim,
            lists: FastHashMap::default(),
            pool: Vec::new(),
        }
    }

    /// The grid dimension this table's packed cell ids are keyed by.
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Drop every registration and re-key the table for a `dim × dim`
    /// grid, keeping the map and pool allocations. Used when the engine
    /// re-grids: packed cell ids from the old resolution are meaningless
    /// at the new one, so the table starts empty and queries re-register.
    pub fn reset(&mut self, dim: u32) {
        self.dim = dim;
        for (_, mut list) in self.lists.drain() {
            list.clear();
            if self.pool.len() < LIST_POOL_CAP && list.capacity() <= POOLED_LIST_CAP {
                self.pool.push(list);
            }
        }
    }

    /// Register query `q` in the influence list of `cell`.
    /// Idempotent: re-registration is a no-op (the NN re-computation module
    /// re-scans visit-list cells that are already registered).
    #[inline]
    pub fn add(&mut self, cell: CellCoord, q: QueryId) {
        let list = self
            .lists
            .entry(cell.id(self.dim))
            .or_insert_with(|| self.pool.pop().unwrap_or_default());
        if !list.contains(&q) {
            list.push(q);
        }
    }

    /// Remove query `q` from the influence list of `cell` (no-op if absent).
    #[inline]
    pub fn remove(&mut self, cell: CellCoord, q: QueryId) {
        let id = cell.id(self.dim);
        if let Some(list) = self.lists.get_mut(&id) {
            if let Some(at) = list.iter().position(|&x| x == q) {
                list.swap_remove(at);
                if list.is_empty() {
                    let spare = self.lists.remove(&id).expect("list just accessed");
                    if self.pool.len() < LIST_POOL_CAP && spare.capacity() <= POOLED_LIST_CAP {
                        self.pool.push(spare);
                    }
                }
            }
        }
    }

    /// The queries influenced by `cell`, as a contiguous slice (empty if
    /// none are registered).
    #[inline]
    pub fn queries_at(&self, cell: CellCoord) -> &[QueryId] {
        self.lists
            .get(&cell.id(self.dim))
            .map_or(&[], |list| list.as_slice())
    }

    /// `true` if `q` is registered at `cell`.
    #[inline]
    pub fn contains(&self, cell: CellCoord, q: QueryId) -> bool {
        self.queries_at(cell).contains(&q)
    }

    /// Total number of `(cell, query)` registrations — `n · C_inf` in the
    /// space analysis of Section 4.1.
    pub fn total_entries(&self) -> usize {
        self.lists.values().map(|list| list.len()).sum()
    }

    /// Number of cells with a non-empty influence list.
    pub fn occupied_cells(&self) -> usize {
        self.lists.len()
    }

    /// Remove every registration of `q` (used when a query terminates and
    /// the caller does not track its influence region — O(cells); the
    /// monitors prefer targeted [`InfluenceTable::remove`] calls).
    pub fn purge_query(&mut self, q: QueryId) {
        self.lists.retain(|_, list| {
            if let Some(at) = list.iter().position(|&x| x == q) {
                list.swap_remove(at);
            }
            !list.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut t = InfluenceTable::new(16);
        let c = CellCoord::new(3, 4);
        t.add(c, QueryId(1));
        t.add(c, QueryId(2));
        t.add(c, QueryId(1)); // idempotent
        assert_eq!(t.queries_at(c).len(), 2);
        assert!(t.contains(c, QueryId(1)));
        t.remove(c, QueryId(1));
        assert!(!t.contains(c, QueryId(1)));
        t.remove(c, QueryId(2));
        assert!(t.queries_at(c).is_empty());
        assert_eq!(t.occupied_cells(), 0);
    }

    #[test]
    fn counts_entries_across_cells() {
        let mut t = InfluenceTable::new(16);
        t.add(CellCoord::new(0, 0), QueryId(1));
        t.add(CellCoord::new(0, 1), QueryId(1));
        t.add(CellCoord::new(0, 1), QueryId(2));
        assert_eq!(t.total_entries(), 3);
        assert_eq!(t.occupied_cells(), 2);
    }

    #[test]
    fn purge_removes_all_traces() {
        let mut t = InfluenceTable::new(16);
        for i in 0..8 {
            t.add(CellCoord::new(i, i), QueryId(7));
            t.add(CellCoord::new(i, i), QueryId(9));
        }
        t.purge_query(QueryId(7));
        assert_eq!(t.total_entries(), 8);
        for i in 0..8 {
            assert!(!t.contains(CellCoord::new(i, i), QueryId(7)));
            assert!(t.contains(CellCoord::new(i, i), QueryId(9)));
        }
    }

    #[test]
    fn distinct_cells_do_not_alias() {
        // Regression guard for the packed-id scheme: (col,row) vs (row,col).
        let mut t = InfluenceTable::new(64);
        t.add(CellCoord::new(2, 5), QueryId(1));
        assert!(!t.contains(CellCoord::new(5, 2), QueryId(1)));
    }

    #[test]
    fn recycled_lists_start_empty() {
        let mut t = InfluenceTable::new(16);
        let a = CellCoord::new(1, 1);
        let b = CellCoord::new(2, 2);
        t.add(a, QueryId(1));
        t.remove(a, QueryId(1)); // list returns to the pool
        t.add(b, QueryId(2)); // reuses the pooled allocation
        assert_eq!(t.queries_at(b), &[QueryId(2)]);
        assert!(t.queries_at(a).is_empty());
        assert_eq!(t.total_entries(), 1);
    }
}
