//! Update-stream event types shared by all monitoring algorithms.
//!
//! A processing cycle (one timestamp) delivers a batch `U_P` of object
//! events and a batch `U_q` of query events (Figure 3.9). The paper's object
//! update tuple is `<p.id, x_old, y_old, x_new, y_new>`; since the grid
//! already stores current positions, events carry only the new state and the
//! old position is read from the index. Appear/disappear events model the
//! Brinkhoff-style object life cycle (an object "appears on a network node
//! … and then disappears") and the off-line NNs of Section 4.2.

use cpm_geom::{ObjectId, Point, QueryId};

/// A single object update within a processing cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectEvent {
    /// A new (or returning) object enters the system at `pos`.
    Appear {
        /// Object identifier; must not be currently live.
        id: ObjectId,
        /// Initial position.
        pos: Point,
    },
    /// A live object reports a new location.
    Move {
        /// Object identifier; must be currently live.
        id: ObjectId,
        /// New position.
        to: Point,
    },
    /// A live object goes off-line (leaves the system).
    Disappear {
        /// Object identifier; must be currently live.
        id: ObjectId,
    },
}

impl ObjectEvent {
    /// The object this event concerns.
    #[inline]
    pub fn id(&self) -> ObjectId {
        match *self {
            ObjectEvent::Appear { id, .. }
            | ObjectEvent::Move { id, .. }
            | ObjectEvent::Disappear { id } => id,
        }
    }
}

/// A single k-NN query update within a processing cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryEvent {
    /// Register a new continuous k-NN query.
    Install {
        /// Query identifier; must not be currently installed.
        id: QueryId,
        /// Query point.
        pos: Point,
        /// Number of neighbors to monitor (`k ≥ 1`).
        k: usize,
    },
    /// An installed query changes location. Handled as terminate+reinstall
    /// (Section 3.3: "we treat the update as a termination of the old query,
    /// and an insertion of a new one").
    Move {
        /// Query identifier; must be currently installed.
        id: QueryId,
        /// New query point.
        to: Point,
    },
    /// An installed query is terminated.
    Terminate {
        /// Query identifier; must be currently installed.
        id: QueryId,
    },
}

impl QueryEvent {
    /// The query this event concerns.
    #[inline]
    pub fn id(&self) -> QueryId {
        match *self {
            QueryEvent::Install { id, .. }
            | QueryEvent::Move { id, .. }
            | QueryEvent::Terminate { id } => id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ids() {
        assert_eq!(
            ObjectEvent::Appear {
                id: ObjectId(3),
                pos: Point::ORIGIN
            }
            .id(),
            ObjectId(3)
        );
        assert_eq!(ObjectEvent::Disappear { id: ObjectId(9) }.id(), ObjectId(9));
        assert_eq!(
            QueryEvent::Move {
                id: QueryId(2),
                to: Point::ORIGIN
            }
            .id(),
            QueryId(2)
        );
    }
}
