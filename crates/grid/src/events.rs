//! Update-stream event types shared by all monitoring algorithms.
//!
//! A processing cycle (one timestamp) delivers a batch `U_P` of object
//! events and a batch `U_q` of query events (Figure 3.9). The paper's object
//! update tuple is `<p.id, x_old, y_old, x_new, y_new>`; since the grid
//! already stores current positions, events carry only the new state and the
//! old position is read from the index. Appear/disappear events model the
//! Brinkhoff-style object life cycle (an object "appears on a network node
//! … and then disappears") and the off-line NNs of Section 4.2.

use cpm_geom::{ObjectId, Point, QueryId};

use crate::{CellCoord, Grid, SpatialIndex};

/// A single object update within a processing cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectEvent {
    /// A new (or returning) object enters the system at `pos`.
    Appear {
        /// Object identifier; must not be currently live.
        id: ObjectId,
        /// Initial position.
        pos: Point,
    },
    /// A live object reports a new location.
    Move {
        /// Object identifier; must be currently live.
        id: ObjectId,
        /// New position.
        to: Point,
    },
    /// A live object goes off-line (leaves the system).
    Disappear {
        /// Object identifier; must be currently live.
        id: ObjectId,
    },
}

impl ObjectEvent {
    /// The object this event concerns.
    #[inline]
    pub fn id(&self) -> ObjectId {
        match *self {
            ObjectEvent::Appear { id, .. }
            | ObjectEvent::Move { id, .. }
            | ObjectEvent::Disappear { id } => id,
        }
    }

    /// The position the event carries: the appear/move target, `None` for
    /// a disappearance. Ingest validation reads coordinates through this
    /// without matching every variant.
    #[inline]
    #[must_use]
    pub fn position(&self) -> Option<Point> {
        match *self {
            ObjectEvent::Appear { pos, .. } => Some(pos),
            ObjectEvent::Move { to, .. } => Some(to),
            ObjectEvent::Disappear { .. } => None,
        }
    }
}

/// A single k-NN query update within a processing cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryEvent {
    /// Register a new continuous k-NN query.
    Install {
        /// Query identifier; must not be currently installed.
        id: QueryId,
        /// Query point.
        pos: Point,
        /// Number of neighbors to monitor (`k ≥ 1`).
        k: usize,
    },
    /// An installed query changes location. Handled as terminate+reinstall
    /// (Section 3.3: "we treat the update as a termination of the old query,
    /// and an insertion of a new one").
    Move {
        /// Query identifier; must be currently installed.
        id: QueryId,
        /// New query point.
        to: Point,
    },
    /// An installed query is terminated.
    Terminate {
        /// Query identifier; must be currently installed.
        id: QueryId,
    },
}

impl QueryEvent {
    /// The query this event concerns.
    #[inline]
    pub fn id(&self) -> QueryId {
        match *self {
            QueryEvent::Install { id, .. }
            | QueryEvent::Move { id, .. }
            | QueryEvent::Terminate { id } => id,
        }
    }
}

/// The grid-side effect of one applied [`ObjectEvent`]: which cells the
/// object left/entered and where it now is.
///
/// Records are produced by [`apply_events`] during the sequential ingest
/// phase of a processing cycle and then consumed read-only by the per-query
/// maintenance path — possibly from several worker threads at once. Each
/// consumer derives its own view of the batch by probing its
/// [`crate::InfluenceTable`] at [`UpdateRecord::old_cell`] /
/// [`UpdateRecord::new_cell`]; records that touch no influenced cell are
/// skipped for free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRecord {
    /// The updated object.
    pub id: ObjectId,
    /// Cell the object was removed from (`None` for an appearance).
    pub old_cell: Option<CellCoord>,
    /// Cell the object was inserted into (`None` for a disappearance).
    pub new_cell: Option<CellCoord>,
    /// Position after the event, as stored in the grid (i.e. clamped to
    /// the workspace); `None` for a disappearance.
    pub new_pos: Option<Point>,
}

/// Apply a batch of object events to the grid, appending one
/// [`UpdateRecord`] per event to `records`. Returns the number of
/// location updates applied (the `updates_applied` unit of
/// [`crate::Metrics`]).
///
/// This is phase 1 of the two-phase processing cycle: it is the *only*
/// step that mutates the grid, so everything after it may borrow the grid
/// immutably (and therefore run in parallel).
///
/// # Panics
/// Panics if a [`ObjectEvent::Disappear`] names an off-line object
/// (mirroring the monitors' sequential update handling).
pub fn apply_events<I: SpatialIndex>(
    grid: &mut Grid<I>,
    events: &[ObjectEvent],
    records: &mut Vec<UpdateRecord>,
) -> u64 {
    for ev in events {
        let rec = match *ev {
            ObjectEvent::Move { id, to } => {
                let (_, old_cell, new_cell) = grid.update_position(id, to);
                UpdateRecord {
                    id,
                    old_cell: Some(old_cell),
                    new_cell: Some(new_cell),
                    new_pos: Some(grid.position(id).expect("just updated")),
                }
            }
            ObjectEvent::Appear { id, pos } => {
                let cell = grid.insert(id, pos);
                UpdateRecord {
                    id,
                    old_cell: None,
                    new_cell: Some(cell),
                    new_pos: Some(grid.position(id).expect("just inserted")),
                }
            }
            ObjectEvent::Disappear { id } => {
                let (_, cell) = grid
                    .remove(id)
                    .unwrap_or_else(|| panic!("disappear of off-line object {id}"));
                UpdateRecord {
                    id,
                    old_cell: Some(cell),
                    new_cell: None,
                    new_pos: None,
                }
            }
        };
        records.push(rec);
    }
    events.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ids() {
        assert_eq!(
            ObjectEvent::Appear {
                id: ObjectId(3),
                pos: Point::ORIGIN
            }
            .id(),
            ObjectId(3)
        );
        assert_eq!(ObjectEvent::Disappear { id: ObjectId(9) }.id(), ObjectId(9));
        assert_eq!(
            QueryEvent::Move {
                id: QueryId(2),
                to: Point::ORIGIN
            }
            .id(),
            QueryId(2)
        );
    }

    #[test]
    fn apply_events_records_cells_and_clamped_positions() {
        let mut g = crate::GridBuilder::new(8).build_uniform();
        let mut records = Vec::new();
        let applied = apply_events(
            &mut g,
            &[
                ObjectEvent::Appear {
                    id: ObjectId(1),
                    pos: Point::new(0.1, 0.1),
                },
                ObjectEvent::Move {
                    id: ObjectId(1),
                    to: Point::new(2.0, 0.9), // clamped to the workspace
                },
                ObjectEvent::Disappear { id: ObjectId(1) },
            ],
            &mut records,
        );
        assert_eq!(applied, 3);
        assert_eq!(records.len(), 3);

        assert_eq!(records[0].old_cell, None);
        assert_eq!(records[0].new_cell, Some(CellCoord::new(0, 0)));
        assert_eq!(records[0].new_pos, Some(Point::new(0.1, 0.1)));

        assert_eq!(records[1].old_cell, Some(CellCoord::new(0, 0)));
        assert_eq!(records[1].new_cell, Some(CellCoord::new(7, 7)));
        let clamped = records[1].new_pos.unwrap();
        assert!(clamped.x < 1.0, "position not clamped: {clamped:?}");

        assert_eq!(records[2].old_cell, Some(CellCoord::new(7, 7)));
        assert_eq!(records[2].new_cell, None);
        assert_eq!(records[2].new_pos, None);
        assert!(g.is_empty());
    }
}
