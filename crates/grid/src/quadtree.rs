//! Adaptive region quadtree backend for the [`SpatialIndex`] layer.
//!
//! The tree recursively quarters the unit square. A node either holds its
//! objects directly (a **leaf**) or has split into four children. Leaves
//! split when their population exceeds a configurable threshold, until
//! they cover a single conceptual cell — so sparse regions collapse into
//! a handful of shallow leaves while hotspots refine locally, bounding
//! storage by *occupancy* instead of resolution. This is the classic
//! point-region quadtree (Samet), restricted so that every node boundary
//! is also a conceptual-cell boundary: the tree depth is `log2(dim)`,
//! which is why [`IndexKind::Quadtree`] requires a power-of-two
//! dimension.
//!
//! # Exact per-cell reads on coarse leaves
//!
//! The maintenance algorithms ask for the objects of one **conceptual
//! cell** at a time, and the answer must be exact — returning a coarse
//! leaf's whole population would hand the same object to a query once per
//! covered cell, breaking the paper's visit accounting. Each leaf
//! therefore keeps its entries **grouped contiguously by conceptual cell
//! id, groups in ascending id order** (two parallel arrays: object ids
//! and their packed cell ids). [`SpatialIndex::objects_in`] descends to
//! the leaf and returns the exact group as a dense `&[ObjectId]`
//! subslice — the same contiguous-scan surface as a [`crate::CellIndex`]
//! bucket. Max-depth leaves cover exactly one cell, so the hot cells of a
//! skewed population degrade gracefully to plain append/swap-remove
//! buckets; multi-cell leaves are bounded by the split threshold, so the
//! shift-based grouped insert/remove stays O(threshold).
//!
//! [`SpatialIndex`]: crate::SpatialIndex
//! [`IndexKind::Quadtree`]: crate::IndexKind::Quadtree

use cpm_geom::{ObjectId, Point};

use crate::index::OccupancyHistogram;
use crate::store::BackRef;
use crate::{CellCoord, GridGeom, IndexKind, ObjectStore, SpatialIndex};

/// One node of the region quadtree. Children are arena indices into
/// [`QuadtreeIndex::nodes`]; quadrant `q = (row_bit << 1) | col_bit` at
/// the node's depth (0 = SW, 1 = SE, 2 = NW, 3 = NE).
#[derive(Debug, Clone)]
enum Node {
    /// An internal node: four children, no objects of its own.
    Internal([u32; 4]),
    /// A leaf holding its region's objects grouped by conceptual cell.
    Leaf(LeafData),
}

/// Storage of one leaf: parallel arrays of object ids and their packed
/// conceptual cell ids, grouped contiguously by cell id in ascending
/// order.
#[derive(Debug, Clone, Default)]
struct LeafData {
    /// Depth of the leaf in the tree (root = 0; `depth_max` = one cell).
    depth: u32,
    /// Object ids, cell-grouped (parallel to `cells`).
    ids: Vec<ObjectId>,
    /// Packed conceptual cell id of each entry, ascending.
    cells: Vec<u64>,
}

impl LeafData {
    /// `true` if this leaf covers exactly one conceptual cell (its groups
    /// are trivial and it never splits).
    #[inline]
    fn is_single_cell(&self, depth_max: u32) -> bool {
        self.depth == depth_max
    }

    /// The half-open entry range of conceptual cell `cell_id` (binary
    /// search over the ascending `cells` array).
    #[inline]
    fn group_range(&self, cell_id: u64) -> (usize, usize) {
        let start = self.cells.partition_point(|&c| c < cell_id);
        let end = start + self.cells[start..].partition_point(|&c| c == cell_id);
        (start, end)
    }
}

/// Adaptive region quadtree over the conceptual cell space; see the
/// module-level docs at the top of `quadtree.rs`.
#[derive(Debug, Clone)]
pub struct QuadtreeIndex {
    geom: GridGeom,
    /// Tree depth at which a leaf covers one conceptual cell
    /// (`dim = 2^depth_max`).
    depth_max: u32,
    /// Leaves holding more than this many objects split (multi-cell
    /// leaves only).
    split_threshold: usize,
    /// Node arena; `nodes[0]` is the root.
    nodes: Vec<Node>,
    /// Incremental per-conceptual-cell occupancy statistics.
    hist: OccupancyHistogram,
}

impl QuadtreeIndex {
    /// An empty quadtree over a `dim × dim` conceptual grid.
    ///
    /// # Panics
    /// Panics unless `dim` is a power of two in `1..=4096` and
    /// `split_threshold ≥ 1` (see [`IndexKind::check_dim`]).
    pub fn new(dim: u32, split_threshold: u32) -> Self {
        (IndexKind::Quadtree { split_threshold })
            .check_dim(dim)
            .unwrap_or_else(|e| panic!("{e}"));
        Self {
            geom: GridGeom::new(dim),
            depth_max: dim.trailing_zeros(),
            split_threshold: split_threshold as usize,
            nodes: vec![Node::Leaf(LeafData::default())],
            hist: OccupancyHistogram::default(),
        }
    }

    /// The configured leaf split threshold.
    #[inline]
    pub fn split_threshold(&self) -> u32 {
        self.split_threshold as u32
    }

    /// Number of arena nodes (internal + leaves) — a storage diagnostic:
    /// it grows with occupied regions, not with `dim²`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The quadrant (0..4) of `cell` under a node at `depth`.
    #[inline]
    fn quadrant_at(&self, depth: u32, cell_id: u64) -> usize {
        let dim = self.geom.dim() as u64;
        let (col, row) = ((cell_id % dim) as u32, (cell_id / dim) as u32);
        let bit = self.depth_max - 1 - depth;
        (((row >> bit) & 1) << 1 | ((col >> bit) & 1)) as usize
    }

    /// Descend from the root to the leaf whose region contains `cell_id`.
    #[inline]
    fn leaf_of(&self, cell_id: u64) -> usize {
        let mut node = 0usize;
        let mut depth = 0u32;
        loop {
            match &self.nodes[node] {
                Node::Leaf(_) => return node,
                Node::Internal(children) => {
                    node = children[self.quadrant_at(depth, cell_id)] as usize;
                    depth += 1;
                }
            }
        }
    }

    /// Split the leaf at `node` into four children, redistributing its
    /// entries (order-preserving, so each child keeps the ascending
    /// cell-grouped layout) and repointing their back-references. Cascades
    /// while a child still exceeds the threshold.
    fn split(&mut self, node: usize, backrefs: &mut [BackRef]) {
        let Node::Leaf(leaf) = std::mem::replace(&mut self.nodes[node], Node::Internal([0; 4]))
        else {
            unreachable!("split of an internal node");
        };
        debug_assert!(leaf.depth < self.depth_max);
        let child_depth = leaf.depth + 1;
        let base = self.nodes.len() as u32;
        let children = [base, base + 1, base + 2, base + 3];
        let mut parts: [LeafData; 4] = Default::default();
        for part in &mut parts {
            part.depth = child_depth;
        }
        for (&oid, &cell_id) in leaf.ids.iter().zip(&leaf.cells) {
            let q = self.quadrant_at(leaf.depth, cell_id);
            let part = &mut parts[q];
            part.ids.push(oid);
            part.cells.push(cell_id);
            backrefs[oid.index()] = BackRef {
                cell_id: u64::from(children[q]),
                slot: (part.ids.len() - 1) as u32,
            };
        }
        self.nodes.extend(parts.into_iter().map(Node::Leaf));
        self.nodes[node] = Node::Internal(children);
        for child in children {
            let overfull = match &self.nodes[child as usize] {
                Node::Leaf(l) => l.ids.len() > self.split_threshold && l.depth < self.depth_max,
                Node::Internal(_) => false,
            };
            if overfull {
                self.split(child as usize, backrefs);
            }
        }
    }

    /// Shared attach body: back-references are written through the raw
    /// slice so the regrid rebuild can drive it while iterating the
    /// store's positions.
    fn attach_inner(&mut self, backrefs: &mut [BackRef], oid: ObjectId, p: Point) -> CellCoord {
        let cell = self.geom.cell_of(p);
        let cell_id = cell.id(self.geom.dim());
        let node = self.leaf_of(cell_id);
        let depth_max = self.depth_max;
        let Node::Leaf(leaf) = &mut self.nodes[node] else {
            unreachable!("leaf_of returned an internal node");
        };
        if leaf.is_single_cell(depth_max) {
            // One cell per leaf: plain O(1) bucket append.
            leaf.ids.push(oid);
            leaf.cells.push(cell_id);
            backrefs[oid.index()] = BackRef {
                cell_id: node as u64,
                slot: (leaf.ids.len() - 1) as u32,
            };
            self.hist.on_attach(leaf.ids.len());
        } else {
            // Grouped insert at the end of the cell's run; entries after
            // the insertion point shift right, so their slots move by one.
            let (start, end) = leaf.group_range(cell_id);
            leaf.ids.insert(end, oid);
            leaf.cells.insert(end, cell_id);
            backrefs[oid.index()] = BackRef {
                cell_id: node as u64,
                slot: end as u32,
            };
            for &shifted in &leaf.ids[end + 1..] {
                backrefs[shifted.index()].slot += 1;
            }
            self.hist.on_attach(end - start + 1);
            if leaf.ids.len() > self.split_threshold {
                self.split(node, backrefs);
            }
        }
        cell
    }
}

impl SpatialIndex for QuadtreeIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Quadtree {
            split_threshold: self.split_threshold as u32,
        }
    }

    #[inline]
    fn geom(&self) -> GridGeom {
        self.geom
    }

    #[inline]
    fn occupied_count(&self) -> usize {
        self.hist.occupied()
    }

    #[inline]
    fn hot_cell_max(&self) -> usize {
        self.hist.max()
    }

    #[inline]
    fn objects_in(&self, c: CellCoord) -> &[ObjectId] {
        let cell_id = c.id(self.geom.dim());
        let Node::Leaf(leaf) = &self.nodes[self.leaf_of(cell_id)] else {
            unreachable!("leaf_of returned an internal node");
        };
        if leaf.is_single_cell(self.depth_max) {
            &leaf.ids
        } else {
            let (start, end) = leaf.group_range(cell_id);
            &leaf.ids[start..end]
        }
    }

    fn occupied_cells(&self) -> Vec<CellCoord> {
        let mut out = Vec::with_capacity(self.hist.occupied());
        for node in &self.nodes {
            let Node::Leaf(leaf) = node else { continue };
            let mut prev = None;
            for &cell_id in &leaf.cells {
                if prev != Some(cell_id) {
                    out.push(self.geom.cell_from_id(cell_id));
                    prev = Some(cell_id);
                }
            }
        }
        out
    }

    fn attach(&mut self, store: &mut ObjectStore, oid: ObjectId, p: Point) -> CellCoord {
        self.attach_inner(&mut store.backrefs, oid, p)
    }

    fn detach(&mut self, store: &mut ObjectStore, oid: ObjectId) -> CellCoord {
        let BackRef {
            cell_id: node,
            slot,
        } = store.backrefs[oid.index()];
        let slot = slot as usize;
        let depth_max = self.depth_max;
        let Node::Leaf(leaf) = &mut self.nodes[node as usize] else {
            panic!("back-pointer of {oid} does not address a leaf");
        };
        debug_assert_eq!(leaf.ids.get(slot), Some(&oid), "back-pointer desync");
        let cell_id = leaf.cells[slot];
        if leaf.is_single_cell(depth_max) {
            self.hist.on_detach(leaf.ids.len());
            leaf.ids.swap_remove(slot);
            leaf.cells.swap_remove(slot);
            if let Some(&moved) = leaf.ids.get(slot) {
                store.backrefs[moved.index()].slot = slot as u32;
            }
        } else {
            let (start, end) = leaf.group_range(cell_id);
            self.hist.on_detach(end - start);
            leaf.ids.remove(slot);
            leaf.cells.remove(slot);
            for &shifted in &leaf.ids[slot..] {
                store.backrefs[shifted.index()].slot -= 1;
            }
        }
        self.geom.cell_from_id(cell_id)
    }

    fn rebuild(&mut self, store: &mut ObjectStore, new_dim: u32) {
        let mut fresh = QuadtreeIndex::new(new_dim, self.split_threshold as u32);
        for i in 0..store.backrefs.len() {
            let oid = ObjectId(i as u32);
            let Some(p) = store.position(oid) else {
                continue;
            };
            fresh.attach_inner(&mut store.backrefs, oid, p);
        }
        *self = fresh;
    }

    fn check_integrity(&self, store: &ObjectStore) {
        let mut total = 0usize;
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![(0usize, 0u32, 0u32, 0u32)]; // (node, depth, col0, row0)
        let dim = self.geom.dim();
        while let Some((node, depth, col0, row0)) = stack.pop() {
            assert!(!reachable[node], "node {node} reached twice");
            reachable[node] = true;
            let side = dim >> depth;
            match &self.nodes[node] {
                Node::Internal(children) => {
                    assert!(depth < self.depth_max, "internal node below max depth");
                    for (q, &child) in children.iter().enumerate() {
                        let (cb, rb) = ((q as u32) & 1, (q as u32) >> 1);
                        stack.push((
                            child as usize,
                            depth + 1,
                            col0 + cb * (side / 2),
                            row0 + rb * (side / 2),
                        ));
                    }
                }
                Node::Leaf(leaf) => {
                    assert_eq!(leaf.depth, depth, "leaf depth desync at node {node}");
                    assert_eq!(leaf.ids.len(), leaf.cells.len(), "parallel arrays desync");
                    assert!(
                        leaf.is_single_cell(self.depth_max)
                            || leaf.ids.len() <= self.split_threshold,
                        "multi-cell leaf over the split threshold"
                    );
                    if !leaf.is_single_cell(self.depth_max) {
                        assert!(leaf.cells.is_sorted(), "leaf groups out of order");
                    }
                    total += leaf.ids.len();
                    for (slot, (&o, &cid)) in leaf.ids.iter().zip(&leaf.cells).enumerate() {
                        let p = store
                            .position(o)
                            .unwrap_or_else(|| panic!("leaf holds off-line object {o}"));
                        let c = self.geom.cell_of(p);
                        assert_eq!(c.id(dim), cid, "object {o} grouped under the wrong cell");
                        assert!(
                            c.col >= col0
                                && c.col < col0 + side
                                && c.row >= row0
                                && c.row < row0 + side,
                            "object {o} outside its leaf region"
                        );
                        let br = store.backrefs[o.index()];
                        assert_eq!(br.cell_id, node as u64, "back-pointer node desync for {o}");
                        assert_eq!(br.slot as usize, slot, "back-pointer slot desync for {o}");
                    }
                }
            }
        }
        assert!(reachable.iter().all(|&r| r), "orphaned arena nodes");
        assert_eq!(total, store.len(), "leaf population != live count");
        // The incremental histogram must match a brute-force group recount.
        let mut sizes = Vec::new();
        for node in &self.nodes {
            let Node::Leaf(leaf) = node else { continue };
            let mut run = 0usize;
            for (i, &cid) in leaf.cells.iter().enumerate() {
                run += 1;
                if leaf.cells.get(i + 1) != Some(&cid) {
                    sizes.push(run);
                    run = 0;
                }
            }
        }
        self.hist.check_against(sizes.into_iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(dim: u32, threshold: u32) -> (QuadtreeIndex, ObjectStore) {
        (QuadtreeIndex::new(dim, threshold), ObjectStore::new())
    }

    fn insert(qt: &mut QuadtreeIndex, store: &mut ObjectStore, oid: u32, x: f64, y: f64) {
        let p = store.activate(ObjectId(oid), Point::new(x, y));
        qt.attach(store, ObjectId(oid), p);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_dim_is_rejected() {
        let _ = QuadtreeIndex::new(100, 8);
    }

    #[test]
    fn starts_as_a_single_root_leaf() {
        let (qt, store) = tree(64, 8);
        assert_eq!(qt.node_count(), 1);
        assert_eq!(qt.occupied_count(), 0);
        assert_eq!(qt.hot_cell_max(), 0);
        assert!(qt.objects_in(CellCoord::new(3, 7)).is_empty());
        qt.check_integrity(&store);
    }

    #[test]
    fn coarse_leaf_answers_exact_per_cell_slices() {
        let (mut qt, mut store) = tree(64, 8);
        // Three objects in one cell, one in a neighboring cell — all in
        // the root leaf (threshold not reached).
        insert(&mut qt, &mut store, 0, 0.101, 0.101);
        insert(&mut qt, &mut store, 1, 0.503, 0.503);
        insert(&mut qt, &mut store, 2, 0.102, 0.102);
        insert(&mut qt, &mut store, 3, 0.103, 0.103);
        assert_eq!(qt.node_count(), 1, "under threshold: no split");
        let g = qt.geom();
        let hot = g.cell_of(Point::new(0.1, 0.1));
        let other = g.cell_of(Point::new(0.5, 0.5));
        // Exact groups, not the whole leaf.
        assert_eq!(qt.objects_in(hot), &[ObjectId(0), ObjectId(2), ObjectId(3)]);
        assert_eq!(qt.objects_in(other), &[ObjectId(1)]);
        assert!(qt.objects_in(CellCoord::new(63, 63)).is_empty());
        assert_eq!(qt.occupied_count(), 2);
        assert_eq!(qt.hot_cell_max(), 3);
        qt.check_integrity(&store);
    }

    #[test]
    fn splits_cascade_and_preserve_membership() {
        let (mut qt, mut store) = tree(64, 4);
        // 40 objects clustered in the SW corner + a few spread out.
        for i in 0..40u32 {
            let t = f64::from(i) * 0.003;
            insert(&mut qt, &mut store, i, 0.01 + t, 0.02 + (t * 1.7) % 0.1);
        }
        for (j, &(x, y)) in [(0.9, 0.9), (0.1, 0.9), (0.9, 0.1)].iter().enumerate() {
            insert(&mut qt, &mut store, 100 + j as u32, x, y);
        }
        assert!(qt.node_count() > 5, "cluster must force splits");
        qt.check_integrity(&store);
        // Every object is findable in its exact cell.
        for (oid, p) in store.iter() {
            assert!(qt.objects_in(qt.geom().cell_of(p)).contains(&oid));
        }
        // Remove the cluster; the far-corner objects survive untouched.
        for i in 0..40u32 {
            store.deactivate(ObjectId(i)).unwrap();
            qt.detach(&mut store, ObjectId(i));
            qt.check_integrity(&store);
        }
        assert_eq!(store.len(), 3);
        assert_eq!(qt.occupied_count(), 3);
        assert_eq!(qt.hot_cell_max(), 1);
    }

    #[test]
    fn hot_cell_degrades_to_a_max_depth_bucket() {
        let (mut qt, mut store) = tree(16, 4);
        // 50 objects in the same conceptual cell: the leaf chain must
        // bottom out at depth_max and then grow as a plain bucket.
        for i in 0..50u32 {
            insert(&mut qt, &mut store, i, 0.51, 0.51);
        }
        let cell = qt.geom().cell_of(Point::new(0.51, 0.51));
        assert_eq!(qt.objects_in(cell).len(), 50);
        assert_eq!(qt.hot_cell_max(), 50);
        assert_eq!(qt.occupied_count(), 1);
        qt.check_integrity(&store);
        // Swap-remove path: detach from the middle of the bucket.
        store.deactivate(ObjectId(7)).unwrap();
        qt.detach(&mut store, ObjectId(7));
        assert_eq!(qt.objects_in(cell).len(), 49);
        qt.check_integrity(&store);
    }

    #[test]
    fn rebuild_re_grids_to_pow2_resolutions() {
        let (mut qt, mut store) = tree(64, 8);
        for i in 0..30u32 {
            let t = f64::from(i) * 0.031;
            insert(&mut qt, &mut store, i, t % 1.0, (t * 2.3) % 1.0);
        }
        qt.rebuild(&mut store, 256);
        assert_eq!(qt.geom().dim(), 256);
        assert_eq!(qt.kind(), IndexKind::Quadtree { split_threshold: 8 });
        qt.check_integrity(&store);
        for (oid, p) in store.iter() {
            assert!(qt.objects_in(qt.geom().cell_of(p)).contains(&oid));
        }
    }

    #[test]
    fn dim_one_tree_is_a_single_bucket() {
        let (mut qt, mut store) = tree(1, 2);
        for i in 0..10u32 {
            insert(&mut qt, &mut store, i, f64::from(i) * 0.09, 0.5);
        }
        // depth_max = 0: the root is already a single-cell leaf and never
        // splits regardless of the threshold.
        assert_eq!(qt.node_count(), 1);
        assert_eq!(qt.objects_in(CellCoord::new(0, 0)).len(), 10);
        qt.check_integrity(&store);
    }
}
