//! Main-memory conceptual-grid index over moving objects, with pluggable
//! storage backends.
//!
//! This is the object index `G` of Section 3: a regular grid of `dim × dim`
//! cells with side `δ = 1/dim` over the unit-square workspace. Cell `c_{i,j}`
//! (column `i`, row `j`, counted from the lower-left corner) contains every
//! object with `x ∈ [i·δ, (i+1)·δ)` and `y ∈ [j·δ, (j+1)·δ)`; conversely an
//! object at `(x, y)` belongs to cell `(⌊x/δ⌋, ⌊y/δ⌋)`.
//!
//! The same grid instance is shared by CPM and by the YPK-CNN / SEA-CNN
//! baselines — all three assume exactly this index (the paper compares the
//! algorithms, not the indexes).
//!
//! # Three-layer storage: [`ObjectStore`] + [`SpatialIndex`] + [`GridGeom`]
//!
//! [`Grid`] is a thin facade composing layers with disjoint concerns:
//!
//! * [`ObjectStore`] — the **δ-independent** object tables: the central
//!   position table (`s_obj = 3·N` memory units of the space analysis) and
//!   the parallel back-pointer table that makes bucket removal O(1).
//! * [`SpatialIndex`] — the pluggable **cell→objects** backend. The
//!   conceptual cell space is fixed by the geometry; the backend only
//!   decides how the buckets are stored:
//!   - [`CellIndex`] (default, [`IndexKind::Uniform`]) — the paper-exact
//!     sparse hash map of dense `Vec<ObjectId>` buckets with O(1)
//!     swap-remove deletion through the store's back-pointers, keeping the
//!     `Time_ind = 2` update cost of the Section 4.1 model;
//!   - [`QuadtreeIndex`] ([`IndexKind::Quadtree`]) — an adaptive region
//!     quadtree over the same conceptual cells: sparse regions collapse
//!     into coarse leaves, hotspots split down to per-cell buckets, so
//!     skewed populations pay for the resolution only where they need it.
//!   - [`DynIndex`] — the runtime-selected sum of the above, used by the
//!     server layer so one binary serves either kind.
//! * [`GridGeom`] — the `Copy` conceptual cell geometry (point→cell
//!   mapping, cell extents, `mindist`, allocation-free region covers),
//!   shared verbatim by every backend via [`SpatialIndex::geom`]. This is
//!   what makes query results **backend-independent by construction**: the
//!   search algorithms only consume geometry plus per-cell object sets.
//!
//! The store/index split is what makes **online re-gridding** cheap and
//! safe: [`Grid::regrid`] rebuilds only the index at the new resolution in
//! one deterministic pass (ascending object id, so the resulting layout is
//! identical to a fresh populate), while the object tables — and every
//! `oid → position` answer read through them — are untouched.
//!
//! Grids are constructed through [`GridBuilder`], which validates the
//! dimension/backend combination ([`IndexKind::check_dim`]) at build time.
//!
//! Query-side book-keeping (the per-cell *influence lists*) lives in
//! [`InfluenceTable`], kept separate from the grid so that several monitors
//! (k-NN, aggregate-NN, constrained) can share one object index while each
//! maintains its own influence information.

#![warn(missing_docs)]
// The crate is `unsafe`-free except for one `#[target_feature]` call
// boundary inside the opt-in explicit-SIMD kernel lane; see
// `kernels::simd` for the SAFETY argument. Without the `simd` feature
// the historical `forbid` is kept verbatim.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]

mod coord;
pub mod events;
mod geom;
mod grid;
mod index;
mod influence;
pub mod kernels;
mod metrics;
mod quadtree;
mod store;

pub use coord::CellCoord;
pub use events::{apply_events, ObjectEvent, QueryEvent, UpdateRecord};
pub use geom::GridGeom;
pub use grid::{CellIndex, Grid, GridBuilder, GridStats};
pub use index::{DynIndex, GridConfigError, IndexKind, SpatialIndex, DEFAULT_SPLIT_THRESHOLD};
pub use influence::InfluenceTable;
pub use kernels::Coords;
pub use metrics::{KindMetrics, Metrics, QueryKind};
pub use quadtree::QuadtreeIndex;
pub use store::ObjectStore;
