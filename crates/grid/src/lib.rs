//! Uniform main-memory grid index over moving objects.
//!
//! This is the object index `G` of Section 3: a regular grid of `dim × dim`
//! cells with side `δ = 1/dim` over the unit-square workspace. Cell `c_{i,j}`
//! (column `i`, row `j`, counted from the lower-left corner) contains every
//! object with `x ∈ [i·δ, (i+1)·δ)` and `y ∈ [j·δ, (j+1)·δ)`; conversely an
//! object at `(x, y)` belongs to cell `(⌊x/δ⌋, ⌊y/δ⌋)`.
//!
//! The same grid instance is shared by CPM and by the YPK-CNN / SEA-CNN
//! baselines — all three assume exactly this index (the paper compares the
//! algorithms, not the indexes). Cell object lists are **dense buckets**
//! (contiguous `Vec<ObjectId>`s with O(1) swap-remove deletion through a
//! per-object back-pointer table — see [`Grid`] for the layout), which
//! keeps the `Time_ind = 2` update cost of the Section 4.1 model while
//! making every cell scan a linear sweep over contiguous memory; object
//! positions are stored once in a central slot table so an object costs
//! the `s_obj = 3` memory units of the space analysis.
//!
//! Query-side book-keeping (the per-cell *influence lists*) lives in
//! [`InfluenceTable`], kept separate from the grid so that several monitors
//! (k-NN, aggregate-NN, constrained) can share one object index while each
//! maintains its own influence information.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coord;
pub mod events;
mod grid;
mod influence;
mod metrics;

pub use coord::CellCoord;
pub use events::{apply_events, ObjectEvent, QueryEvent, UpdateRecord};
pub use grid::{Grid, GridStats};
pub use influence::InfluenceTable;
pub use metrics::{KindMetrics, Metrics, QueryKind};
