//! Uniform main-memory grid index over moving objects.
//!
//! This is the object index `G` of Section 3: a regular grid of `dim × dim`
//! cells with side `δ = 1/dim` over the unit-square workspace. Cell `c_{i,j}`
//! (column `i`, row `j`, counted from the lower-left corner) contains every
//! object with `x ∈ [i·δ, (i+1)·δ)` and `y ∈ [j·δ, (j+1)·δ)`; conversely an
//! object at `(x, y)` belongs to cell `(⌊x/δ⌋, ⌊y/δ⌋)`.
//!
//! The same grid instance is shared by CPM and by the YPK-CNN / SEA-CNN
//! baselines — all three assume exactly this index (the paper compares the
//! algorithms, not the indexes).
//!
//! # Two-layer storage: [`ObjectStore`] + [`CellIndex`]
//!
//! [`Grid`] is a thin facade over two layers with disjoint concerns:
//!
//! * [`ObjectStore`] — the **δ-independent** object tables: the central
//!   position table (`s_obj = 3·N` memory units of the space analysis) and
//!   the parallel back-pointer table that makes bucket removal O(1).
//! * [`CellIndex`] — everything **keyed by δ**: the dense cell buckets
//!   (contiguous `Vec<ObjectId>`s with O(1) swap-remove deletion through
//!   the store's back-pointers — see [`CellIndex`] for the layout, which
//!   keeps the `Time_ind = 2` update cost of the Section 4.1 model while
//!   making every cell scan a linear sweep over contiguous memory), the
//!   packed cell-id scheme, and all coordinate math.
//!
//! The split is what makes **online re-gridding** cheap and safe:
//! [`Grid::regrid`] rebuilds only the index at the new resolution in one
//! deterministic pass (ascending object id, so the resulting layout is
//! identical to a fresh populate), while the object tables — and every
//! `oid → position` answer read through them — are untouched.
//!
//! Query-side book-keeping (the per-cell *influence lists*) lives in
//! [`InfluenceTable`], kept separate from the grid so that several monitors
//! (k-NN, aggregate-NN, constrained) can share one object index while each
//! maintains its own influence information.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coord;
pub mod events;
mod grid;
mod influence;
mod metrics;
mod store;

pub use coord::CellCoord;
pub use events::{apply_events, ObjectEvent, QueryEvent, UpdateRecord};
pub use grid::{CellIndex, Grid, GridStats};
pub use influence::InfluenceTable;
pub use metrics::{KindMetrics, Metrics, QueryKind};
pub use store::ObjectStore;
