//! Hardware-independent work counters shared by all monitoring algorithms.
//!
//! The paper evaluates algorithms by CPU time and by *cell accesses* ("a
//! cell visit corresponds to a complete scan over the object list in the
//! cell", Section 6 / Figure 6.3b). Counters here are incremented by the
//! algorithms themselves; the simulation driver snapshots them per cycle.
//!
//! # Ownership under sharing
//!
//! Each counter must have exactly one owner. Per-query work (cell
//! accesses, heap operations, (re)computations, merges) is counted by the
//! monitor — or, in the sharded engine, by the *shard* — that did it;
//! index work (`updates_applied`) is counted by whoever mutates the grid,
//! exactly once per event, no matter how many monitors or shards consume
//! the batch. Aggregated views are built with [`Metrics::merge`] (plain
//! u64 addition — associative and commutative, so merged totals are
//! deterministic regardless of thread scheduling), and resets must reach
//! every owner: a `take_metrics` that drains only an aggregator while the
//! per-shard owners keep counting would silently double-report on the next
//! snapshot.

/// Work counters for one monitoring algorithm instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Complete scans of a cell's object list (a cell may be counted many
    /// times per cycle if several queries process it).
    pub cell_accesses: u64,
    /// Objects whose distance to some query was evaluated.
    pub objects_processed: u64,
    /// Search-heap insertions.
    pub heap_pushes: u64,
    /// Search-heap removals.
    pub heap_pops: u64,
    /// NN computations from scratch (new or moving queries).
    pub computations: u64,
    /// NN re-computations (affected queries resuming book-kept state).
    pub recomputations: u64,
    /// Results maintained purely from the update batch (no grid search).
    pub merge_resolutions: u64,
    /// Object location updates applied to the index.
    pub updates_applied: u64,
}

impl Metrics {
    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Take the current values, leaving zeros behind.
    pub fn take(&mut self) -> Metrics {
        std::mem::take(self)
    }

    /// Accumulate another snapshot into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.cell_accesses += other.cell_accesses;
        self.objects_processed += other.objects_processed;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.computations += other.computations;
        self.recomputations += other.recomputations;
        self.merge_resolutions += other.merge_resolutions;
        self.updates_applied += other.updates_applied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        let mut m = Metrics {
            cell_accesses: 5,
            ..Default::default()
        };
        let snap = m.take();
        assert_eq!(snap.cell_accesses, 5);
        assert_eq!(m.cell_accesses, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            cell_accesses: 1,
            heap_pushes: 2,
            ..Default::default()
        };
        let b = Metrics {
            cell_accesses: 3,
            merge_resolutions: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cell_accesses, 4);
        assert_eq!(a.heap_pushes, 2);
        assert_eq!(a.merge_resolutions, 4);
    }
}
