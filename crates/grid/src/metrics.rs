//! Hardware-independent work counters shared by all monitoring algorithms.
//!
//! The paper evaluates algorithms by CPU time and by *cell accesses* ("a
//! cell visit corresponds to a complete scan over the object list in the
//! cell", Section 6 / Figure 6.3b). Counters here are incremented by the
//! algorithms themselves; the simulation driver snapshots them per cycle.
//!
//! # Ownership under sharing
//!
//! Each counter must have exactly one owner. Per-query work (cell
//! accesses, heap operations, (re)computations, merges) is counted by the
//! monitor — or, in the sharded engine, by the *shard* — that did it;
//! index work (`updates_applied`) is counted by whoever mutates the grid,
//! exactly once per event, no matter how many monitors or shards consume
//! the batch. Aggregated views are built with [`Metrics::merge`] (plain
//! u64 addition — associative and commutative, so merged totals are
//! deterministic regardless of thread scheduling), and resets must reach
//! every owner: a `take_metrics` that drains only an aggregator while the
//! per-shard owners keep counting would silently double-report on the next
//! snapshot.

/// The continuous-query classes the suite monitors, used to attribute
/// work counters per class in mixed workloads ([`Metrics::by_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum QueryKind {
    /// Plain point k-NN (Section 3).
    Knn = 0,
    /// Range membership (rectangle/circle).
    Range = 1,
    /// Aggregate NN over a point set (Section 5).
    Ann = 2,
    /// Constrained NN inside a region (Section 5).
    Constrained = 3,
    /// Reverse NN (six-region candidates + verification).
    Rnn = 4,
}

impl QueryKind {
    /// Number of query kinds (the length of [`Metrics::by_kind`]).
    pub const COUNT: usize = 5;

    /// All kinds, in `by_kind` index order.
    pub const ALL: [QueryKind; QueryKind::COUNT] = [
        QueryKind::Knn,
        QueryKind::Range,
        QueryKind::Ann,
        QueryKind::Constrained,
        QueryKind::Rnn,
    ];

    /// Short lowercase label (table headers, error messages).
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Knn => "knn",
            QueryKind::Range => "range",
            QueryKind::Ann => "ann",
            QueryKind::Constrained => "constrained",
            QueryKind::Rnn => "rnn",
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so width/alignment flags work in
        // table-formatting call sites.
        f.pad(self.label())
    }
}

/// The query-side work counters attributable to a single query class
/// (everything in [`Metrics`] except the index-owned `updates_applied`,
/// which is paid once per event regardless of who consumes the batch).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KindMetrics {
    /// Complete scans of a cell's object list.
    pub cell_accesses: u64,
    /// Objects whose distance to some query was evaluated.
    pub objects_processed: u64,
    /// Search-heap insertions.
    pub heap_pushes: u64,
    /// Search-heap removals.
    pub heap_pops: u64,
    /// NN computations from scratch.
    pub computations: u64,
    /// NN re-computations.
    pub recomputations: u64,
    /// Results maintained purely from the update batch.
    pub merge_resolutions: u64,
}

impl KindMetrics {
    fn merge(&mut self, other: &KindMetrics) {
        self.cell_accesses += other.cell_accesses;
        self.objects_processed += other.objects_processed;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.computations += other.computations;
        self.recomputations += other.recomputations;
        self.merge_resolutions += other.merge_resolutions;
    }
}

/// Work counters for one monitoring algorithm instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Complete scans of a cell's object list (a cell may be counted many
    /// times per cycle if several queries process it).
    pub cell_accesses: u64,
    /// Objects whose distance to some query was evaluated.
    pub objects_processed: u64,
    /// Search-heap insertions.
    pub heap_pushes: u64,
    /// Search-heap removals.
    pub heap_pops: u64,
    /// NN computations from scratch (new or moving queries).
    pub computations: u64,
    /// NN re-computations (affected queries resuming book-kept state).
    pub recomputations: u64,
    /// Results maintained purely from the update batch (no grid search).
    pub merge_resolutions: u64,
    /// Object location updates applied to the index.
    pub updates_applied: u64,
    /// Online re-grids applied (cell-index rebuilds at a new δ). Owned by
    /// whoever owns the grid, like `updates_applied`: counted once per
    /// re-grid no matter how many shards re-register their queries.
    pub regrids: u64,
    /// Objects re-bucketed across all re-grids (the migration volume a
    /// re-grid pays on the index side).
    pub regrid_objects_migrated: u64,
    /// Queries recomputed from scratch because of a re-grid (each also
    /// counts in `computations`; this counter isolates the re-grid share).
    pub regrid_queries_recomputed: u64,
    /// Query-side counters broken down by query class, indexed by
    /// `QueryKind as usize`. Filled by engines serving [`QueryKind`]-aware
    /// query specs; each `by_kind` counter is a partition of the flat
    /// counter of the same name (never double-counted on merge).
    pub by_kind: [KindMetrics; QueryKind::COUNT],
}

impl Metrics {
    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Take the current values, leaving zeros behind.
    pub fn take(&mut self) -> Metrics {
        std::mem::take(self)
    }

    /// Accumulate another snapshot into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.cell_accesses += other.cell_accesses;
        self.objects_processed += other.objects_processed;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.computations += other.computations;
        self.recomputations += other.recomputations;
        self.merge_resolutions += other.merge_resolutions;
        self.updates_applied += other.updates_applied;
        self.regrids += other.regrids;
        self.regrid_objects_migrated += other.regrid_objects_migrated;
        self.regrid_queries_recomputed += other.regrid_queries_recomputed;
        for (mine, theirs) in self.by_kind.iter_mut().zip(&other.by_kind) {
            mine.merge(theirs);
        }
    }

    /// The per-class breakdown for one query kind.
    pub fn for_kind(&self, kind: QueryKind) -> &KindMetrics {
        &self.by_kind[kind as usize]
    }

    /// Snapshot of the query-side counters (the [`KindMetrics`] subset),
    /// used with [`Metrics::attribute_since`] to attribute a span of work
    /// to one query class.
    pub fn query_counters(&self) -> KindMetrics {
        KindMetrics {
            cell_accesses: self.cell_accesses,
            objects_processed: self.objects_processed,
            heap_pushes: self.heap_pushes,
            heap_pops: self.heap_pops,
            computations: self.computations,
            recomputations: self.recomputations,
            merge_resolutions: self.merge_resolutions,
        }
    }

    /// Attribute everything the query-side counters grew since `before`
    /// (a [`Metrics::query_counters`] snapshot) to `kind`.
    pub fn attribute_since(&mut self, kind: QueryKind, before: KindMetrics) {
        let now = self.query_counters();
        let slot = &mut self.by_kind[kind as usize];
        slot.cell_accesses += now.cell_accesses - before.cell_accesses;
        slot.objects_processed += now.objects_processed - before.objects_processed;
        slot.heap_pushes += now.heap_pushes - before.heap_pushes;
        slot.heap_pops += now.heap_pops - before.heap_pops;
        slot.computations += now.computations - before.computations;
        slot.recomputations += now.recomputations - before.recomputations;
        slot.merge_resolutions += now.merge_resolutions - before.merge_resolutions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        let mut m = Metrics {
            cell_accesses: 5,
            ..Default::default()
        };
        let snap = m.take();
        assert_eq!(snap.cell_accesses, 5);
        assert_eq!(m.cell_accesses, 0);
    }

    #[test]
    fn attribution_partitions_the_flat_counters() {
        let mut m = Metrics::default();
        let before = m.query_counters();
        m.cell_accesses += 3;
        m.computations += 1;
        m.attribute_since(QueryKind::Range, before);
        let before = m.query_counters();
        m.cell_accesses += 2;
        m.attribute_since(QueryKind::Ann, before);
        assert_eq!(m.for_kind(QueryKind::Range).cell_accesses, 3);
        assert_eq!(m.for_kind(QueryKind::Range).computations, 1);
        assert_eq!(m.for_kind(QueryKind::Ann).cell_accesses, 2);
        // The breakdown partitions the flat counter.
        let total: u64 = QueryKind::ALL
            .iter()
            .map(|&k| m.for_kind(k).cell_accesses)
            .sum();
        assert_eq!(total, m.cell_accesses);
        // And merging merges the breakdown too.
        let mut other = Metrics::default();
        other.merge(&m);
        assert_eq!(other.for_kind(QueryKind::Range).cell_accesses, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            cell_accesses: 1,
            heap_pushes: 2,
            ..Default::default()
        };
        let b = Metrics {
            cell_accesses: 3,
            merge_resolutions: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cell_accesses, 4);
        assert_eq!(a.heap_pushes, 2);
        assert_eq!(a.merge_resolutions, 4);
    }
}
