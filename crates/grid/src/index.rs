//! The pluggable spatial-index layer behind the [`crate::Grid`] facade.
//!
//! CPM's maintenance algorithms are deliberately index-agnostic: they only
//! ever ask *"which objects fall in this conceptual cell / region?"*.
//! [`SpatialIndex`] captures exactly that contract. Every backend answers
//! over the **same conceptual cell space** ([`GridGeom`]: `dim × dim`
//! cells of side `δ = 1/dim`), so query results are a function of the
//! object population and the geometry alone — switching backends can
//! change *how fast* a cell scan is, never *what it returns*. The
//! index-matrix conformance harness (`cpm_sim::verify_index`) asserts
//! precisely this: bit-identical results, changed-lists and delta streams
//! across backends.
//!
//! Backends:
//!
//! * [`crate::CellIndex`] — the paper-exact uniform grid (default): one
//!   dense bucket per occupied cell in a sparse hash map.
//! * [`crate::QuadtreeIndex`] — an adaptive region quadtree for skewed
//!   populations: sparse regions collapse into shallow leaves while
//!   hotspots split down to single-cell leaves, bounding storage by
//!   occupancy instead of resolution.
//! * [`DynIndex`] — a runtime-selected enum over the above, used by
//!   `CpmServerBuilder::index` so one server type serves every backend.
//!
//! Selection is by [`IndexKind`], a small plain-data description that
//! snapshots record so recovery rebuilds the same structure.

use std::fmt;

use cpm_geom::{ObjectId, Point, Rect};

use crate::{CellCoord, CellIndex, GridGeom, ObjectStore, QuadtreeIndex};

/// A pluggable object index over the conceptual `dim × dim` cell space.
///
/// The trait is the concrete [`CellIndex`] surface abstracted: per-cell
/// dense-bucket reads, allocation-free region covers, the insert/remove
/// mutators (which keep the [`ObjectStore`] back-pointers in lock step),
/// occupancy statistics, and whole-index rebuild at a new resolution.
///
/// # Contract
///
/// * [`SpatialIndex::objects_in`] returns **exactly** the live objects in
///   the queried conceptual cell — never a superset (a coarser node's
///   population), never a subset.
/// * The region covers ([`SpatialIndex::cells_in_rect`] /
///   [`SpatialIndex::cells_in_circle`]) enumerate every intersecting
///   conceptual cell, **occupied or not**: the monitors register empty
///   cells in their influence regions so objects moving *into* them are
///   noticed.
/// * Mutators maintain the store's back-pointers so that
///   `detach(attach(x)) = x` is O(occupancy-bounded) and never searches.
///
/// Implementing this trait outside `cpm-grid` is not currently supported:
/// the back-pointer channel through [`ObjectStore`] is crate-internal.
pub trait SpatialIndex: fmt::Debug + Send + Sync {
    /// The backend's kind + parameters (what snapshots record so recovery
    /// rebuilds the same structure).
    fn kind(&self) -> IndexKind;

    /// The conceptual cell geometry (dimension, `δ`) this index answers
    /// at.
    fn geom(&self) -> GridGeom;

    /// Number of non-empty conceptual cells.
    fn occupied_count(&self) -> usize;

    /// Population of the fullest conceptual cell (0 when empty) —
    /// maintained incrementally (O(1) per update), so per-cycle occupancy
    /// polling by the re-grid controller is free.
    fn hot_cell_max(&self) -> usize;

    /// The objects currently inside conceptual cell `c`, as a contiguous
    /// slice (empty if the cell is unoccupied).
    ///
    /// A full scan of the returned slice is what the experiments count as
    /// one *cell access* (Section 6, Figure 6.3b).
    fn objects_in(&self, c: CellCoord) -> &[ObjectId];

    /// The coordinates of all non-empty conceptual cells, in unspecified
    /// order.
    fn occupied_cells(&self) -> Vec<CellCoord>;

    /// Bucket a live object at `p` (already clamped by the store) and
    /// write its back-pointer. Returns the conceptual cell it was placed
    /// in. Called by [`crate::Grid::insert`] only.
    fn attach(&mut self, store: &mut ObjectStore, oid: ObjectId, p: Point) -> CellCoord;

    /// Unbucket a live object through its back-pointer (no search, no
    /// object-id hashing). Returns the conceptual cell it left. Called by
    /// [`crate::Grid::remove`] only.
    fn detach(&mut self, store: &mut ObjectStore, oid: ObjectId) -> CellCoord;

    /// Rebuild this index at a new resolution from the store's positions,
    /// re-attaching objects in ascending id order (so the resulting layout
    /// is identical to a fresh populate — the property that makes
    /// engine-level re-grids bit-reproducible against a from-scratch
    /// build).
    ///
    /// # Panics
    /// Panics if [`IndexKind::check_dim`] rejects `new_dim` for this
    /// backend's kind; engine-level `regrid_to` validates first and
    /// returns a typed error instead.
    fn rebuild(&mut self, store: &mut ObjectStore, new_dim: u32);

    /// Verify the backend's internal invariants against the store
    /// (test helper; O(total state)).
    #[doc(hidden)]
    fn check_integrity(&self, store: &ObjectStore);

    /// Iterate, in row-major order and without allocating, over all cells
    /// (occupied or not) whose extent intersects `region`. See
    /// [`GridGeom::cells_in_rect`].
    fn cells_in_rect(&self, region: &Rect) -> impl Iterator<Item = CellCoord>
    where
        Self: Sized,
    {
        self.geom().cells_in_rect(region)
    }

    /// Iterate, without allocating, over all cells whose extent intersects
    /// the closed disk `(center, radius)`. See
    /// [`GridGeom::cells_in_circle`].
    fn cells_in_circle(&self, center: Point, radius: f64) -> impl Iterator<Item = CellCoord>
    where
        Self: Sized,
    {
        self.geom().cells_in_circle(center, radius)
    }
}

/// Default per-leaf occupancy threshold above which a quadtree leaf
/// splits.
pub const DEFAULT_SPLIT_THRESHOLD: u32 = 32;

/// Which [`SpatialIndex`] backend a grid (or server) uses, plus its
/// parameters. Plain data: snapshots record it so recovery rebuilds the
/// same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// The paper-exact uniform grid ([`CellIndex`]): one dense bucket per
    /// occupied cell in a sparse hash map. The default.
    #[default]
    Uniform,
    /// An adaptive region quadtree ([`QuadtreeIndex`]) over the same
    /// conceptual cells. Requires a power-of-two dimension (tree levels
    /// must align with the conceptual cell boundaries).
    Quadtree {
        /// Leaves holding more than this many objects split (until they
        /// cover a single conceptual cell). Must be ≥ 1.
        split_threshold: u32,
    },
}

impl IndexKind {
    /// The quadtree kind with the default split threshold
    /// ([`DEFAULT_SPLIT_THRESHOLD`]).
    pub const fn quadtree() -> Self {
        IndexKind::Quadtree {
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
        }
    }

    /// Short stable name for display and recorded artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Uniform => "uniform",
            IndexKind::Quadtree { .. } => "quadtree",
        }
    }

    /// Validate this kind's own parameters and its compatibility with a
    /// `dim × dim` conceptual grid. This is the single source of truth
    /// behind both the panicking constructors and the `Result`-returning
    /// builder/engine surfaces.
    pub fn check_dim(&self, dim: u32) -> Result<(), GridConfigError> {
        let fail = |reason| {
            Err(GridConfigError {
                kind: *self,
                dim,
                reason,
            })
        };
        if dim == 0 || dim > 4096 {
            return fail("grid dimension must lie in 1..=4096");
        }
        match *self {
            IndexKind::Uniform => Ok(()),
            IndexKind::Quadtree { split_threshold } => {
                if split_threshold == 0 {
                    return fail("quadtree split threshold must be at least 1");
                }
                if !dim.is_power_of_two() {
                    return fail("quadtree dimension must be a power of two");
                }
                Ok(())
            }
        }
    }

    /// Build an empty [`DynIndex`] of this kind at `dim`.
    ///
    /// # Errors
    /// Returns the [`IndexKind::check_dim`] error on an invalid
    /// kind/dimension combination.
    pub fn build_index(&self, dim: u32) -> Result<DynIndex, GridConfigError> {
        self.check_dim(dim)?;
        Ok(match *self {
            IndexKind::Uniform => DynIndex::Uniform(CellIndex::new(dim)),
            IndexKind::Quadtree { split_threshold } => {
                DynIndex::Quadtree(QuadtreeIndex::new(dim, split_threshold))
            }
        })
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IndexKind::Uniform => f.write_str("uniform"),
            IndexKind::Quadtree { split_threshold } => {
                write!(f, "quadtree(split_threshold={split_threshold})")
            }
        }
    }
}

/// An invalid index-kind / grid-dimension configuration, reported at
/// build time by [`crate::GridBuilder::try_build`] and
/// [`IndexKind::build_index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfigError {
    /// The requested backend kind.
    pub kind: IndexKind,
    /// The requested grid dimension.
    pub dim: u32,
    /// Why the combination was rejected.
    pub reason: &'static str,
}

impl fmt::Display for GridConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid grid config (kind {}, dim {}): {}",
            self.kind, self.dim, self.reason
        )
    }
}

impl std::error::Error for GridConfigError {}

/// Exact count-of-counts histogram over bucket (conceptual-cell)
/// populations: `counts[l]` = number of cells currently holding `l`
/// objects (`l ≥ 1`). Both backends drive it from their mutators, making
/// [`SpatialIndex::hot_cell_max`] and
/// [`SpatialIndex::occupied_count`] O(1) reads with O(1) update cost —
/// every event changes exactly one cell's population by one.
#[derive(Debug, Clone, Default)]
pub(crate) struct OccupancyHistogram {
    /// `counts[l]` = number of cells with population `l`; index 0 unused.
    counts: Vec<usize>,
    /// Largest `l` with `counts[l] > 0` (0 when nothing is occupied).
    max: usize,
    /// Number of cells with population ≥ 1.
    occupied: usize,
}

impl OccupancyHistogram {
    /// A cell's population grew from `new_len - 1` to `new_len`.
    #[inline]
    pub(crate) fn on_attach(&mut self, new_len: usize) {
        debug_assert!(new_len >= 1);
        if new_len == 1 {
            self.occupied += 1;
        } else {
            self.counts[new_len - 1] -= 1;
        }
        if self.counts.len() <= new_len {
            self.counts.resize(new_len + 1, 0);
        }
        self.counts[new_len] += 1;
        if new_len > self.max {
            self.max = new_len;
        }
    }

    /// A cell's population shrank from `old_len` to `old_len - 1`.
    #[inline]
    pub(crate) fn on_detach(&mut self, old_len: usize) {
        debug_assert!(old_len >= 1);
        self.counts[old_len] -= 1;
        let new_len = old_len - 1;
        if new_len == 0 {
            self.occupied -= 1;
        } else {
            self.counts[new_len] += 1;
        }
        // Only one cell changed size, and it shrank by exactly one — so
        // if the old maximum emptied out, the shrunken cell itself (at
        // `old_len - 1`) is the new maximum (or nothing is occupied).
        if old_len == self.max && self.counts[old_len] == 0 {
            self.max = new_len;
        }
    }

    /// Population of the fullest cell (0 when empty).
    #[inline]
    pub(crate) fn max(&self) -> usize {
        self.max
    }

    /// Number of occupied cells.
    #[inline]
    pub(crate) fn occupied(&self) -> usize {
        self.occupied
    }

    /// Assert the histogram matches a brute-force recount of `sizes` (the
    /// non-empty bucket populations, in any order).
    #[doc(hidden)]
    pub(crate) fn check_against(&self, sizes: impl Iterator<Item = usize>) {
        let mut counts: Vec<usize> = Vec::new();
        let mut occupied = 0usize;
        let mut max = 0usize;
        for len in sizes {
            assert!(len >= 1, "empty bucket reported to histogram check");
            if counts.len() <= len {
                counts.resize(len + 1, 0);
            }
            counts[len] += 1;
            occupied += 1;
            max = max.max(len);
        }
        assert_eq!(self.occupied, occupied, "histogram occupied-cell drift");
        assert_eq!(self.max, max, "histogram hot-cell max drift");
        for (len, &n) in counts.iter().enumerate() {
            assert_eq!(
                self.counts.get(len).copied().unwrap_or(0),
                n,
                "histogram count drift at population {len}"
            );
        }
        for (len, &n) in self.counts.iter().enumerate() {
            assert_eq!(
                counts.get(len).copied().unwrap_or(0),
                n,
                "histogram phantom count at population {len}"
            );
        }
    }
}

/// The runtime-selected [`SpatialIndex`]: a closed enum over the built-in
/// backends, dispatching every call with an inlined `match`. This is what
/// `CpmServerBuilder::index` threads through the unified server so one
/// server type serves every backend without boxing.
#[derive(Debug, Clone)]
pub enum DynIndex {
    /// The paper-exact uniform grid.
    Uniform(CellIndex),
    /// The adaptive region quadtree.
    Quadtree(QuadtreeIndex),
}

impl DynIndex {
    /// An empty backend of `kind` at `dim` (panicking counterpart of
    /// [`IndexKind::build_index`], for contexts that validated already).
    ///
    /// # Panics
    /// Panics if [`IndexKind::check_dim`] rejects the combination.
    pub fn new(kind: IndexKind, dim: u32) -> Self {
        kind.build_index(dim).unwrap_or_else(|e| panic!("{e}"))
    }
}

macro_rules! dyn_dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            DynIndex::Uniform($inner) => $body,
            DynIndex::Quadtree($inner) => $body,
        }
    };
}

impl SpatialIndex for DynIndex {
    #[inline]
    fn kind(&self) -> IndexKind {
        dyn_dispatch!(self, i => i.kind())
    }

    #[inline]
    fn geom(&self) -> GridGeom {
        dyn_dispatch!(self, i => i.geom())
    }

    #[inline]
    fn occupied_count(&self) -> usize {
        dyn_dispatch!(self, i => i.occupied_count())
    }

    #[inline]
    fn hot_cell_max(&self) -> usize {
        dyn_dispatch!(self, i => i.hot_cell_max())
    }

    #[inline]
    fn objects_in(&self, c: CellCoord) -> &[ObjectId] {
        dyn_dispatch!(self, i => i.objects_in(c))
    }

    fn occupied_cells(&self) -> Vec<CellCoord> {
        dyn_dispatch!(self, i => SpatialIndex::occupied_cells(i))
    }

    #[inline]
    fn attach(&mut self, store: &mut ObjectStore, oid: ObjectId, p: Point) -> CellCoord {
        dyn_dispatch!(self, i => i.attach(store, oid, p))
    }

    #[inline]
    fn detach(&mut self, store: &mut ObjectStore, oid: ObjectId) -> CellCoord {
        dyn_dispatch!(self, i => i.detach(store, oid))
    }

    fn rebuild(&mut self, store: &mut ObjectStore, new_dim: u32) {
        dyn_dispatch!(self, i => i.rebuild(store, new_dim))
    }

    fn check_integrity(&self, store: &ObjectStore) {
        dyn_dispatch!(self, i => i.check_integrity(store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_validation_names_the_reason() {
        assert!(IndexKind::Uniform.check_dim(100).is_ok());
        assert!(IndexKind::quadtree().check_dim(64).is_ok());
        let e = IndexKind::quadtree().check_dim(100).unwrap_err();
        assert!(e.to_string().contains("power of two"), "{e}");
        let e = IndexKind::Quadtree { split_threshold: 0 }
            .check_dim(64)
            .unwrap_err();
        assert!(e.to_string().contains("split threshold"), "{e}");
        let e = IndexKind::Uniform.check_dim(0).unwrap_err();
        assert!(e.to_string().contains("1..=4096"), "{e}");
        assert!(IndexKind::Uniform.check_dim(5000).is_err());
    }

    #[test]
    fn kind_display_and_names_are_stable() {
        assert_eq!(IndexKind::Uniform.to_string(), "uniform");
        assert_eq!(IndexKind::Uniform.name(), "uniform");
        assert_eq!(IndexKind::quadtree().name(), "quadtree");
        assert_eq!(
            IndexKind::Quadtree { split_threshold: 8 }.to_string(),
            "quadtree(split_threshold=8)"
        );
        assert_eq!(IndexKind::default(), IndexKind::Uniform);
    }

    #[test]
    fn histogram_tracks_exact_max_under_churn() {
        let mut h = OccupancyHistogram::default();
        // Two cells: a grows to 3, b grows to 2.
        h.on_attach(1); // a: 1
        h.on_attach(2); // a: 2
        h.on_attach(3); // a: 3
        h.on_attach(1); // b: 1
        h.on_attach(2); // b: 2
        assert_eq!(h.max(), 3);
        assert_eq!(h.occupied(), 2);
        // a shrinks 3 → 2: the max must fall to 2 (b also sits at 2).
        h.on_detach(3);
        assert_eq!(h.max(), 2);
        // a 2 → 1, b 2 → 1 → max 1; then drain both.
        h.on_detach(2);
        h.on_detach(2);
        assert_eq!(h.max(), 1);
        h.on_detach(1);
        h.on_detach(1);
        assert_eq!(h.max(), 0);
        assert_eq!(h.occupied(), 0);
        h.check_against(std::iter::empty());
    }
}
