//! Grid cell coordinates.

use std::fmt;

/// Column/row address of a grid cell (`c_{i,j}` in the paper; `col` = `i`,
/// `row` = `j`, counted from the lower-left corner of the workspace).
///
/// Stored as `u32` pairs; a packed [`CellCoord::id`] form is available for
/// hash keys. Grids are at most 4096×4096 in this suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellCoord {
    /// Column index `i` (x direction).
    pub col: u32,
    /// Row index `j` (y direction).
    pub row: u32,
}

impl CellCoord {
    /// Create a coordinate.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        Self { col, row }
    }

    /// Pack into a single `u64` key (row-major).
    #[inline]
    pub fn id(self, dim: u32) -> u64 {
        debug_assert!(self.col < dim && self.row < dim);
        self.row as u64 * dim as u64 + self.col as u64
    }

    /// Offset by a signed delta, returning `None` if the result falls
    /// outside a `dim × dim` grid. Used by the pinwheel partitioning and by
    /// the square-region scans of the baselines.
    #[inline]
    pub fn offset(self, dc: i64, dr: i64, dim: u32) -> Option<CellCoord> {
        let col = self.col as i64 + dc;
        let row = self.row as i64 + dr;
        if col < 0 || row < 0 || col >= dim as i64 || row >= dim as i64 {
            None
        } else {
            Some(CellCoord::new(col as u32, row as u32))
        }
    }

    /// Chebyshev (ring) distance between two cells: the ring index at which
    /// `other` appears when expanding square rings around `self`.
    #[inline]
    pub fn chebyshev(self, other: CellCoord) -> u32 {
        let dc = self.col.abs_diff(other.col);
        let dr = self.row.abs_diff(other.row);
        dc.max(dr)
    }
}

impl fmt::Display for CellCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{},{}", self.col, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_is_row_major_and_unique() {
        let dim = 128;
        let a = CellCoord::new(3, 5).id(dim);
        let b = CellCoord::new(5, 3).id(dim);
        assert_ne!(a, b);
        assert_eq!(a, 5 * 128 + 3);
    }

    #[test]
    fn offset_respects_bounds() {
        let c = CellCoord::new(0, 127);
        assert_eq!(c.offset(1, 0, 128), Some(CellCoord::new(1, 127)));
        assert_eq!(c.offset(-1, 0, 128), None);
        assert_eq!(c.offset(0, 1, 128), None);
        assert_eq!(c.offset(0, -127, 128), Some(CellCoord::new(0, 0)));
    }

    #[test]
    fn chebyshev_distance() {
        let a = CellCoord::new(4, 4);
        assert_eq!(a.chebyshev(CellCoord::new(4, 4)), 0);
        assert_eq!(a.chebyshev(CellCoord::new(5, 4)), 1);
        assert_eq!(a.chebyshev(CellCoord::new(1, 6)), 3);
    }
}
