//! The grid index proper: cell object lists plus the central position table.

use cpm_geom::{clamp_coord, FastHashMap, FastHashSet, ObjectId, Point, Rect};

use crate::CellCoord;

/// The main-memory grid index `G` over the set `P` of moving objects.
///
/// Non-empty cells are stored sparsely (hash map keyed by packed cell id):
/// at the paper's largest granularity (1024², one million cells) only ~10%
/// of cells are occupied by the default 100K objects, and a dense `Vec` of
/// hash sets would waste ~100 MB on empty table headers.
///
/// All mutation goes through [`Grid::insert`], [`Grid::remove`] and
/// [`Grid::update_position`]; each is O(1) expected (`Time_ind = 2` in the
/// Section 4.1 cost model: one deletion plus one insertion).
#[derive(Debug, Clone)]
pub struct Grid {
    dim: u32,
    delta: f64,
    /// Sparse map: packed cell id → objects currently inside the cell.
    cells: FastHashMap<u64, FastHashSet<ObjectId>>,
    /// Central position table, one slot per object id. `None` = off-line.
    positions: Vec<Option<Point>>,
    /// Number of live (indexed) objects.
    live: usize,
}

/// Occupancy statistics, used by the space-accounting experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridStats {
    /// Total number of cells (`dim²`).
    pub total_cells: usize,
    /// Number of non-empty cells.
    pub occupied_cells: usize,
    /// Number of live objects.
    pub live_objects: usize,
}

impl Grid {
    /// Create an empty grid with `dim × dim` cells over the unit square.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > 4096` (the packed-coordinate and
    /// clamping assumptions hold for `δ ≥ 1/4096`; the paper uses at most
    /// 1024).
    pub fn new(dim: u32) -> Self {
        assert!(dim > 0 && dim <= 4096, "grid dimension out of range: {dim}");
        Self {
            dim,
            delta: 1.0 / dim as f64,
            cells: FastHashMap::default(),
            positions: Vec::new(),
            live: 0,
        }
    }

    /// Grid dimension (cells per axis).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Cell side length `δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of live objects in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no objects are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The cell containing point `p` (`i = ⌊x/δ⌋`, `j = ⌊y/δ⌋`), with
    /// coordinates clamped into the workspace first.
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellCoord {
        let col = (clamp_coord(p.x) / self.delta) as u32;
        let row = (clamp_coord(p.y) / self.delta) as u32;
        // Guard against floating rounding right at the upper edge.
        CellCoord::new(col.min(self.dim - 1), row.min(self.dim - 1))
    }

    /// The spatial extent of cell `c`.
    #[inline]
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        let lo = Point::new(c.col as f64 * self.delta, c.row as f64 * self.delta);
        let hi = Point::new(lo.x + self.delta, lo.y + self.delta);
        Rect::new(lo, hi)
    }

    /// `mindist(c, q)`: minimum distance between cell `c` and point `q`
    /// (Table 3.1).
    #[inline]
    pub fn mindist(&self, c: CellCoord, q: Point) -> f64 {
        self.cell_rect(c).mindist(q)
    }

    /// Squared `mindist(c, q)`, for comparison-only call sites.
    #[inline]
    pub fn mindist_sq(&self, c: CellCoord, q: Point) -> f64 {
        self.cell_rect(c).mindist_sq(q)
    }

    /// Current position of object `oid`, or `None` if it is off-line.
    #[inline]
    pub fn position(&self, oid: ObjectId) -> Option<Point> {
        self.positions.get(oid.index()).copied().flatten()
    }

    /// Insert a (new or re-appearing) object at `p`.
    ///
    /// Returns the cell it was placed in.
    ///
    /// # Panics
    /// Panics if the object is already indexed — callers must route moves
    /// through [`Grid::update_position`] so old-cell bookkeeping stays
    /// consistent.
    pub fn insert(&mut self, oid: ObjectId, p: Point) -> CellCoord {
        debug_assert!(p.is_finite(), "object position must be finite");
        let idx = oid.index();
        if idx >= self.positions.len() {
            self.positions.resize(idx + 1, None);
        }
        assert!(
            self.positions[idx].is_none(),
            "object {oid} is already indexed"
        );
        let p = Point::new(clamp_coord(p.x), clamp_coord(p.y));
        self.positions[idx] = Some(p);
        let cell = self.cell_of(p);
        self.cells.entry(cell.id(self.dim)).or_default().insert(oid);
        self.live += 1;
        cell
    }

    /// Remove object `oid` from the index (it goes off-line).
    ///
    /// Returns its last position and cell, or `None` if it was not indexed.
    pub fn remove(&mut self, oid: ObjectId) -> Option<(Point, CellCoord)> {
        let slot = self.positions.get_mut(oid.index())?;
        let p = slot.take()?;
        let cell = self.cell_of(p);
        let id = cell.id(self.dim);
        let occupants = self
            .cells
            .get_mut(&id)
            .expect("indexed object must have a cell entry");
        let removed = occupants.remove(&oid);
        debug_assert!(removed, "cell entry missing object {oid}");
        if occupants.is_empty() {
            self.cells.remove(&id);
        }
        self.live -= 1;
        Some((p, cell))
    }

    /// Apply a location update `<oid, old, new>`: delete from the old cell,
    /// insert into the new one (Section 3.2, first step).
    ///
    /// Returns `(old_position, old_cell, new_cell)`.
    ///
    /// # Panics
    /// Panics if the object is not currently indexed; the monitoring
    /// algorithms treat moves of off-line objects as appearances and must
    /// not reach this call.
    pub fn update_position(&mut self, oid: ObjectId, new: Point) -> (Point, CellCoord, CellCoord) {
        let (old, old_cell) = self
            .remove(oid)
            .unwrap_or_else(|| panic!("update for off-line object {oid}"));
        let new_cell = self.insert(oid, new);
        (old, old_cell, new_cell)
    }

    /// The objects currently inside cell `c`, if any.
    ///
    /// A full scan of the returned set is what the experiments count as one
    /// *cell access* (Section 6, Figure 6.3b).
    #[inline]
    pub fn objects_in(&self, c: CellCoord) -> Option<&FastHashSet<ObjectId>> {
        self.cells.get(&c.id(self.dim))
    }

    /// Number of objects in cell `c`.
    #[inline]
    pub fn cell_len(&self, c: CellCoord) -> usize {
        self.objects_in(c).map_or(0, |s| s.len())
    }

    /// Iterate over `(oid, position)` for every live object.
    pub fn iter_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (ObjectId(i as u32), p)))
    }

    /// Iterate over the coordinates of all non-empty cells.
    pub fn occupied_cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let dim = self.dim as u64;
        self.cells
            .keys()
            .map(move |&id| CellCoord::new((id % dim) as u32, (id / dim) as u32))
    }

    /// All cells (occupied or not) whose extent intersects `region`,
    /// in row-major order. Used by the baselines' square/circle scans and by
    /// the ANN search to seed the heap with the cells covering the MBR `M`.
    pub fn cells_intersecting_rect(&self, region: &Rect) -> Vec<CellCoord> {
        let lo_col = (clamp_coord(region.lo.x) / self.delta) as u32;
        let lo_row = (clamp_coord(region.lo.y) / self.delta) as u32;
        let hi_col = ((clamp_coord(region.hi.x)) / self.delta) as u32;
        let hi_row = ((clamp_coord(region.hi.y)) / self.delta) as u32;
        let hi_col = hi_col.min(self.dim - 1);
        let hi_row = hi_row.min(self.dim - 1);
        let mut out =
            Vec::with_capacity(((hi_col - lo_col + 1) * (hi_row - lo_row + 1)) as usize);
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                out.push(CellCoord::new(col, row));
            }
        }
        out
    }

    /// All cells whose extent intersects the closed disk `(center, radius)`.
    pub fn cells_intersecting_circle(&self, center: Point, radius: f64) -> Vec<CellCoord> {
        let bbox = Rect::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        );
        let mut cells = self.cells_intersecting_rect(&bbox);
        let r_sq = radius * radius;
        cells.retain(|&c| self.cell_rect(c).mindist_sq(center) <= r_sq);
        cells
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> GridStats {
        GridStats {
            total_cells: (self.dim as usize) * (self.dim as usize),
            occupied_cells: self.cells.len(),
            live_objects: self.live,
        }
    }

    /// Memory footprint estimate in the paper's "memory units" (one unit =
    /// one number; Section 4.1 charges `s_obj = 3·N` for the object data).
    pub fn space_units(&self) -> usize {
        3 * self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid8() -> Grid {
        Grid::new(8)
    }

    #[test]
    fn cell_of_matches_floor_formula() {
        let g = grid8();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(0.124, 0.126)), CellCoord::new(0, 1));
        // Lower-inclusive, upper-exclusive cell boundaries.
        assert_eq!(g.cell_of(Point::new(0.125, 0.5)), CellCoord::new(1, 4));
        // Workspace edge clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), CellCoord::new(7, 7));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = grid8();
        let p = Point::new(0.3, 0.7);
        let cell = g.insert(ObjectId(4), p);
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(4)), Some(p));
        assert_eq!(g.cell_len(cell), 1);
        let (old, old_cell) = g.remove(ObjectId(4)).unwrap();
        assert_eq!(old, p);
        assert_eq!(old_cell, cell);
        assert!(g.is_empty());
        assert!(g.remove(ObjectId(4)).is_none());
        assert_eq!(g.stats().occupied_cells, 0);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_panics() {
        let mut g = grid8();
        g.insert(ObjectId(0), Point::new(0.1, 0.1));
        g.insert(ObjectId(0), Point::new(0.2, 0.2));
    }

    #[test]
    fn update_position_moves_between_cells() {
        let mut g = grid8();
        g.insert(ObjectId(1), Point::new(0.05, 0.05));
        let (old, from, to) = g.update_position(ObjectId(1), Point::new(0.95, 0.95));
        assert_eq!(old, Point::new(0.05, 0.05));
        assert_eq!(from, CellCoord::new(0, 0));
        assert_eq!(to, CellCoord::new(7, 7));
        assert_eq!(g.cell_len(from), 0);
        assert_eq!(g.cell_len(to), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn mindist_zero_for_own_cell() {
        let g = grid8();
        let p = Point::new(0.4, 0.4);
        assert_eq!(g.mindist(g.cell_of(p), p), 0.0);
    }

    #[test]
    fn rect_cover_includes_boundary_cells() {
        let g = grid8();
        let r = Rect::new(Point::new(0.20, 0.20), Point::new(0.30, 0.30));
        let cells = g.cells_intersecting_rect(&r);
        // 0.20 is inside cell 1 ([0.125,0.25)), 0.30 inside cell 2.
        assert!(cells.contains(&CellCoord::new(1, 1)));
        assert!(cells.contains(&CellCoord::new(2, 2)));
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn circle_cover_is_exactly_intersecting_cells() {
        let g = grid8();
        let q = Point::new(0.5, 0.5);
        let cells = g.cells_intersecting_circle(q, 0.13);
        for &c in &cells {
            assert!(g.cell_rect(c).intersects_circle(q, 0.13));
        }
        // A radius slightly over one cell reaches the 4-neighborhood.
        assert!(cells.len() >= 5);
        // And no intersecting cell is missed.
        for row in 0..8 {
            for col in 0..8 {
                let c = CellCoord::new(col, row);
                if g.cell_rect(c).intersects_circle(q, 0.13) {
                    assert!(cells.contains(&c), "missing {c}");
                }
            }
        }
    }

    #[test]
    fn iter_objects_sees_everything() {
        let mut g = grid8();
        for i in 0..10u32 {
            g.insert(ObjectId(i), Point::new(i as f64 / 10.0, 0.5));
        }
        g.remove(ObjectId(3)).unwrap();
        let ids: Vec<u32> = g.iter_objects().map(|(o, _)| o.0).collect();
        assert_eq!(ids.len(), 9);
        assert!(!ids.contains(&3));
    }

    proptest! {
        #[test]
        fn every_point_maps_to_cell_containing_it(
            x in 0.0..1.0f64, y in 0.0..1.0f64, dim in 1u32..256,
        ) {
            let g = Grid::new(dim);
            let p = Point::new(x, y);
            let c = g.cell_of(p);
            prop_assert!(g.cell_rect(c).contains(p));
            prop_assert_eq!(g.mindist(c, p), 0.0);
        }

        #[test]
        fn moves_preserve_population(
            moves in proptest::collection::vec(
                (0u32..20, 0.0..1.0f64, 0.0..1.0f64), 1..200),
        ) {
            let mut g = Grid::new(16);
            let mut live = std::collections::HashSet::new();
            for (id, x, y) in moves {
                let oid = ObjectId(id);
                let p = Point::new(x, y);
                if live.contains(&id) {
                    g.update_position(oid, p);
                } else {
                    g.insert(oid, p);
                    live.insert(id);
                }
                prop_assert_eq!(g.position(oid), Some(p));
            }
            prop_assert_eq!(g.len(), live.len());
            // Sum of cell populations equals the live count.
            let total: usize = g.occupied_cells().map(|c| g.cell_len(c)).sum();
            prop_assert_eq!(total, live.len());
        }
    }
}
