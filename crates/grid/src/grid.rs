//! The uniform cell-index backend and the composed grid facade.
//!
//! [`CellIndex`] is the paper-exact backend of the [`SpatialIndex`]
//! layer: dense per-cell buckets in a sparse hash map, keyed by the
//! conceptual cell geometry ([`GridGeom`]). [`Grid`] composes **any**
//! backend with the δ-independent [`ObjectStore`] (positions +
//! back-pointers) and presents the classic single-type index surface the
//! monitors were written against — plus [`Grid::regrid`], which rebuilds
//! the index at a different resolution **without ever touching the
//! object tables**. New code constructs grids through [`GridBuilder`],
//! which validates the dimension / [`IndexKind`] combination at build
//! time.

use cpm_geom::{FastHashMap, ObjectId, Point, Rect};

use crate::index::OccupancyHistogram;
use crate::store::BackRef;
use crate::{CellCoord, DynIndex, GridConfigError, GridGeom, IndexKind, ObjectStore, SpatialIndex};

/// Spare-bucket pool cap: empty cells hand their allocation back for reuse
/// so steady-state update churn allocates nothing, but the pool never
/// hoards more than this many vectors.
const BUCKET_POOL_CAP: usize = 4096;

/// Largest per-vector capacity worth pooling. A hot cell under skewed data
/// can grow a huge bucket; once it empties, recycling that allocation into
/// ordinary few-object cells would pin the memory forever, so oversized
/// spares are dropped instead.
const POOLED_VEC_CAP: usize = 256;

/// The uniform-grid [`SpatialIndex`] backend: cell buckets plus the
/// conceptual cell geometry. The paper-exact default.
///
/// # Storage layout (dense slot-based buckets)
///
/// Occupied cells are stored sparsely (hash map keyed by packed cell id —
/// at the paper's largest granularity of 1024², one million cells, only
/// ~10% are occupied by the default 100K objects), but each occupied cell
/// owns a **contiguous `Vec<ObjectId>` bucket** rather than a hash set:
///
/// * a cell scan — the unit the experiments count as one *cell access*
///   (Section 6, Figure 6.3b) — is a linear sweep over contiguous memory,
///   with none of the control-byte hopping of a hash set;
/// * the per-object back-pointer table (`oid → (cell_id, slot)`, stored in
///   [`ObjectStore`] because its shape is δ-independent) makes removal
///   O(1) via *swap-remove*: the last bucket element is moved into the
///   vacated slot and its back-pointer is patched. No object id is ever
///   hashed on the update path (the only hash per step is the cell id),
///   and `Time_ind = 2` of the Section 4.1 cost model — one deletion plus
///   one insertion per location update — is preserved exactly;
/// * buckets that empty return their allocation to a small pool, so
///   steady-state update churn is allocation-free.
///
/// Swap-remove reorders bucket contents, which is invisible to the
/// monitoring algorithms: the paper treats cell object lists as unordered
/// sets, and every consumer scans whole buckets.
///
/// All mutation goes through the composed [`Grid`]; the
/// [`SpatialIndex`] mutators keep bucket membership, the store's
/// back-pointers, and the occupancy histogram in lock step.
#[derive(Debug, Clone)]
pub struct CellIndex {
    geom: GridGeom,
    /// Sparse map: packed cell id → dense bucket of objects in the cell.
    /// Invariant: every stored bucket is non-empty.
    cells: FastHashMap<u64, Vec<ObjectId>>,
    /// Recycled bucket allocations (all empty), capped at
    /// [`BUCKET_POOL_CAP`].
    bucket_pool: Vec<Vec<ObjectId>>,
    /// Incremental occupancy statistics (occupied cells, hot-cell max).
    hist: OccupancyHistogram,
}

impl CellIndex {
    /// An empty index with `dim × dim` cells over the unit square.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > 4096` (the packed-coordinate and
    /// clamping assumptions hold for `δ ≥ 1/4096`; the paper uses at most
    /// 1024).
    pub fn new(dim: u32) -> Self {
        Self {
            geom: GridGeom::new(dim),
            cells: FastHashMap::default(),
            bucket_pool: Vec::new(),
            hist: OccupancyHistogram::default(),
        }
    }

    /// Grid dimension (cells per axis).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.geom.dim()
    }

    /// Cell side length `δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.geom.delta()
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell containing point `p` (see [`GridGeom::cell_of`]).
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellCoord {
        self.geom.cell_of(p)
    }

    /// The spatial extent of cell `c`.
    #[inline]
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        self.geom.cell_rect(c)
    }

    /// `mindist(c, q)`: minimum distance between cell `c` and point `q`
    /// (Table 3.1).
    #[inline]
    pub fn mindist(&self, c: CellCoord, q: Point) -> f64 {
        self.geom.mindist(c, q)
    }

    /// Squared `mindist(c, q)`, for comparison-only call sites.
    #[inline]
    pub fn mindist_sq(&self, c: CellCoord, q: Point) -> f64 {
        self.geom.mindist_sq(c, q)
    }

    /// The objects currently inside cell `c`, as a contiguous slice (empty
    /// if the cell is unoccupied).
    #[inline]
    pub fn objects_in(&self, c: CellCoord) -> &[ObjectId] {
        self.cells
            .get(&c.id(self.geom.dim()))
            .map_or(&[], |bucket| bucket.as_slice())
    }

    /// Iterate over the coordinates of all non-empty cells, in
    /// unspecified order.
    pub fn occupied_cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let geom = self.geom;
        self.cells.keys().map(move |&id| geom.cell_from_id(id))
    }

    /// Iterate, in row-major order and without allocating, over all cells
    /// (occupied or not) whose extent intersects `region`. See
    /// [`GridGeom::cells_in_rect`].
    pub fn cells_in_rect(&self, region: &Rect) -> impl Iterator<Item = CellCoord> {
        self.geom.cells_in_rect(region)
    }

    /// Iterate, without allocating, over all cells whose extent intersects
    /// the closed disk `(center, radius)`. See
    /// [`GridGeom::cells_in_circle`].
    pub fn cells_in_circle(&self, center: Point, radius: f64) -> impl Iterator<Item = CellCoord> {
        self.geom.cells_in_circle(center, radius)
    }

    /// Collecting wrapper around [`CellIndex::cells_in_rect`] for callers
    /// that need an owned list; the hot paths use the iterator directly.
    pub fn cells_intersecting_rect(&self, region: &Rect) -> Vec<CellCoord> {
        self.geom.cells_intersecting_rect(region)
    }

    /// Shared attach body: back-references are written through the raw
    /// slice so the regrid rebuild can drive it while iterating the
    /// store's positions.
    fn attach_inner(&mut self, backrefs: &mut [BackRef], oid: ObjectId, p: Point) -> CellCoord {
        let cell = self.geom.cell_of(p);
        let cell_id = cell.id(self.geom.dim());
        let bucket = self
            .cells
            .entry(cell_id)
            .or_insert_with(|| self.bucket_pool.pop().unwrap_or_default());
        bucket.push(oid);
        let len = bucket.len();
        backrefs[oid.index()] = BackRef {
            cell_id,
            slot: (len - 1) as u32,
        };
        self.hist.on_attach(len);
        cell
    }
}

impl SpatialIndex for CellIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Uniform
    }

    #[inline]
    fn geom(&self) -> GridGeom {
        self.geom
    }

    #[inline]
    fn occupied_count(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn hot_cell_max(&self) -> usize {
        self.hist.max()
    }

    #[inline]
    fn objects_in(&self, c: CellCoord) -> &[ObjectId] {
        CellIndex::objects_in(self, c)
    }

    fn occupied_cells(&self) -> Vec<CellCoord> {
        CellIndex::occupied_cells(self).collect()
    }

    #[inline]
    fn attach(&mut self, store: &mut ObjectStore, oid: ObjectId, p: Point) -> CellCoord {
        self.attach_inner(&mut store.backrefs, oid, p)
    }

    #[inline]
    fn detach(&mut self, store: &mut ObjectStore, oid: ObjectId) -> CellCoord {
        let BackRef { cell_id, slot } = store.backrefs[oid.index()];
        let bucket = self
            .cells
            .get_mut(&cell_id)
            .expect("indexed object must have a cell entry");
        debug_assert_eq!(bucket.get(slot as usize), Some(&oid), "back-pointer desync");
        let old_len = bucket.len();
        bucket.swap_remove(slot as usize);
        // The previous last element (if any) now sits at `slot`: repoint it.
        if let Some(&moved) = bucket.get(slot as usize) {
            store.backrefs[moved.index()].slot = slot;
        }
        let emptied = bucket.is_empty();
        self.hist.on_detach(old_len);
        if emptied {
            let spare = self.cells.remove(&cell_id).expect("bucket just accessed");
            if self.bucket_pool.len() < BUCKET_POOL_CAP && spare.capacity() <= POOLED_VEC_CAP {
                self.bucket_pool.push(spare);
            }
        }
        self.geom.cell_from_id(cell_id)
    }

    fn rebuild(&mut self, store: &mut ObjectStore, new_dim: u32) {
        let mut fresh = CellIndex::new(new_dim);
        // Pre-size the bucket map to the old occupied-cell count: the same
        // population lands in a comparable number of buckets.
        fresh.cells.reserve(self.cells.len());
        for i in 0..store.backrefs.len() {
            let oid = ObjectId(i as u32);
            let Some(p) = store.position(oid) else {
                continue;
            };
            fresh.attach_inner(&mut store.backrefs, oid, p);
        }
        *self = fresh;
    }

    fn check_integrity(&self, store: &ObjectStore) {
        let mut bucket_total = 0usize;
        for (&cell_id, bucket) in &self.cells {
            assert!(!bucket.is_empty(), "empty bucket left in map");
            bucket_total += bucket.len();
            for (slot, &oid) in bucket.iter().enumerate() {
                let p = store
                    .position(oid)
                    .unwrap_or_else(|| panic!("bucket holds off-line object {oid}"));
                let br = store.backrefs[oid.index()];
                assert_eq!(br.cell_id, cell_id, "back-pointer cell desync for {oid}");
                assert_eq!(br.slot as usize, slot, "back-pointer slot desync for {oid}");
                assert_eq!(
                    self.geom.cell_of(p).id(self.geom.dim()),
                    cell_id,
                    "object {oid} bucketed in the wrong cell"
                );
            }
        }
        assert_eq!(bucket_total, store.len(), "bucket population != live count");
        assert!(self.bucket_pool.iter().all(|b| b.is_empty()));
        assert_eq!(self.hist.occupied(), self.cells.len(), "occupied drift");
        self.hist.check_against(self.cells.values().map(Vec::len));
    }
}

/// The main-memory index `G` over the set `P` of moving objects: a
/// δ-independent [`ObjectStore`] composed with a pluggable
/// [`SpatialIndex`] backend (default: the paper-exact [`CellIndex`]).
///
/// All mutation goes through [`Grid::insert`], [`Grid::remove`] and
/// [`Grid::update_position`]; each is O(1) expected on the default
/// backend. [`Grid::regrid`] rebuilds the index at a different resolution
/// in a single deterministic pass over the store.
///
/// Construct through [`GridBuilder`]:
///
/// ```
/// use cpm_grid::{GridBuilder, IndexKind};
///
/// // The paper-exact uniform grid (monomorphic, the default backend).
/// let uniform = GridBuilder::new(64).build_uniform();
/// assert_eq!(uniform.dim(), 64);
///
/// // A runtime-selected backend behind the same facade.
/// let quad = GridBuilder::new(64).index(IndexKind::quadtree()).build();
/// assert_eq!(quad.delta(), 1.0 / 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct Grid<I: SpatialIndex = CellIndex> {
    store: ObjectStore,
    index: I,
}

/// Occupancy statistics, used by the space-accounting experiment and the
/// skew-aware re-grid controller. Every counter is maintained
/// incrementally by the index backends, so reading them each cycle is
/// O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridStats {
    /// Total number of conceptual cells (`dim²`).
    pub total_cells: usize,
    /// Number of non-empty cells.
    pub occupied_cells: usize,
    /// Number of live objects.
    pub live_objects: usize,
    /// Population of the fullest cell (0 when empty) — the concentration
    /// signal the re-grid controller feeds into the cost model.
    pub hot_cell_max: usize,
}

/// Builder for [`Grid`]s, mirroring `CpmServerBuilder`: dimension and
/// [`IndexKind`] are validated together at build time, so an invalid
/// combination (dim out of `1..=4096`, a non-power-of-two quadtree
/// dimension, a zero split threshold) fails where it is written rather
/// than inside a later update.
#[derive(Debug, Clone, Copy)]
pub struct GridBuilder {
    dim: u32,
    kind: IndexKind,
}

impl GridBuilder {
    /// Start a builder for a `dim × dim` conceptual grid with the default
    /// [`IndexKind::Uniform`] backend.
    pub fn new(dim: u32) -> Self {
        Self {
            dim,
            kind: IndexKind::Uniform,
        }
    }

    /// Select the index backend.
    #[must_use]
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.kind = kind;
        self
    }

    /// The configured dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The configured backend kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Build an empty grid over the runtime-selected [`DynIndex`]
    /// backend.
    ///
    /// # Errors
    /// Returns a [`GridConfigError`] describing the invalid
    /// dimension/kind combination.
    pub fn try_build(self) -> Result<Grid<DynIndex>, GridConfigError> {
        Ok(Grid::with_index(self.kind.build_index(self.dim)?))
    }

    /// Build an empty grid over the runtime-selected [`DynIndex`]
    /// backend, panicking on an invalid configuration.
    ///
    /// # Panics
    /// Panics if [`IndexKind::check_dim`] rejects the combination.
    pub fn build(self) -> Grid<DynIndex> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build an empty grid over the monomorphic [`CellIndex`] backend —
    /// the zero-overhead path for embeddings that never switch backends.
    ///
    /// # Panics
    /// Panics if the configured kind is not [`IndexKind::Uniform`], or if
    /// the dimension is out of range.
    pub fn build_uniform(self) -> Grid<CellIndex> {
        assert_eq!(
            self.kind,
            IndexKind::Uniform,
            "build_uniform on a builder configured for {}",
            self.kind
        );
        self.kind
            .check_dim(self.dim)
            .unwrap_or_else(|e| panic!("{e}"));
        Grid::with_index(CellIndex::new(self.dim))
    }
}

impl Grid {
    /// Create an empty grid with `dim × dim` cells over the unit square
    /// and the default [`CellIndex`] backend.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > 4096` (see [`CellIndex::new`]).
    #[deprecated(note = "construct through `GridBuilder` (validated, index-kind aware) instead")]
    pub fn new(dim: u32) -> Self {
        GridBuilder::new(dim).build_uniform()
    }
}

impl<I: SpatialIndex> Grid<I> {
    /// Compose an (empty or pre-built) index backend with a fresh object
    /// store. Most callers go through [`GridBuilder`].
    pub fn with_index(index: I) -> Self {
        Self {
            store: ObjectStore::new(),
            index,
        }
    }

    /// The δ-independent object tables.
    #[inline]
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The index backend.
    #[inline]
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The conceptual cell geometry (dimension, `δ`).
    #[inline]
    pub fn geom(&self) -> GridGeom {
        self.index.geom()
    }

    /// Grid dimension (cells per axis).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.index.geom().dim()
    }

    /// Cell side length `δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.index.geom().delta()
    }

    /// Number of live objects in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if no objects are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The cell containing point `p` (see [`GridGeom::cell_of`]).
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellCoord {
        self.index.geom().cell_of(p)
    }

    /// The spatial extent of cell `c`.
    #[inline]
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        self.index.geom().cell_rect(c)
    }

    /// `mindist(c, q)`: minimum distance between cell `c` and point `q`
    /// (Table 3.1).
    #[inline]
    pub fn mindist(&self, c: CellCoord, q: Point) -> f64 {
        self.index.geom().mindist(c, q)
    }

    /// Squared `mindist(c, q)`, for comparison-only call sites.
    #[inline]
    pub fn mindist_sq(&self, c: CellCoord, q: Point) -> f64 {
        self.index.geom().mindist_sq(c, q)
    }

    /// Current position of object `oid`, or `None` if it is off-line.
    #[inline]
    pub fn position(&self, oid: ObjectId) -> Option<Point> {
        self.store.position(oid)
    }

    /// The store's raw coordinate columns, for the batched distance
    /// kernels in [`crate::kernels`]. Pair with [`Grid::objects_in`]:
    /// buckets reference only live objects, whose column slots are
    /// guaranteed finite.
    #[inline]
    pub fn coords(&self) -> crate::kernels::Coords<'_> {
        self.store.coords()
    }

    /// Insert a (new or re-appearing) object at `p`.
    ///
    /// Returns the cell it was placed in.
    ///
    /// # Panics
    /// Panics if the object is already indexed — callers must route moves
    /// through [`Grid::update_position`] so old-cell bookkeeping stays
    /// consistent.
    #[inline]
    pub fn insert(&mut self, oid: ObjectId, p: Point) -> CellCoord {
        let p = self.store.activate(oid, p);
        self.index.attach(&mut self.store, oid, p)
    }

    /// Remove object `oid` from the index (it goes off-line).
    ///
    /// O(1) (occupancy-bounded on tree backends) via the back-pointer
    /// table. Returns its last position and cell, or `None` if it was not
    /// indexed.
    #[inline]
    pub fn remove(&mut self, oid: ObjectId) -> Option<(Point, CellCoord)> {
        let p = self.store.deactivate(oid)?;
        let cell = self.index.detach(&mut self.store, oid);
        Some((p, cell))
    }

    /// Apply a location update `<oid, old, new>`: delete from the old cell,
    /// insert into the new one (Section 3.2, first step; `Time_ind = 2`).
    ///
    /// Returns `(old_position, old_cell, new_cell)`.
    ///
    /// # Panics
    /// Panics if the object is not currently indexed; the monitoring
    /// algorithms treat moves of off-line objects as appearances and must
    /// not reach this call.
    pub fn update_position(&mut self, oid: ObjectId, new: Point) -> (Point, CellCoord, CellCoord) {
        let (old, old_cell) = self
            .remove(oid)
            .unwrap_or_else(|| panic!("update for off-line object {oid}"));
        let new_cell = self.insert(oid, new);
        (old, old_cell, new_cell)
    }

    /// Rebuild the index at a new resolution, leaving the object tables
    /// untouched.
    ///
    /// The migration is one deterministic pass: objects are re-bucketed in
    /// ascending id order, so the resulting layout is **identical** to a
    /// fresh grid at `new_dim` populated from [`ObjectStore::iter`] — the
    /// property that makes engine-level re-grids bit-reproducible against
    /// a from-scratch build. Returns the number of objects migrated (0
    /// when `new_dim` equals the current dimension; the call is then a
    /// no-op).
    ///
    /// # Panics
    /// Panics if the backend rejects `new_dim` (out of `1..=4096`, or not
    /// a power of two for [`IndexKind::Quadtree`]); the engines validate
    /// through [`IndexKind::check_dim`] first and return a typed error.
    pub fn regrid(&mut self, new_dim: u32) -> usize {
        if new_dim == self.index.geom().dim() {
            return 0;
        }
        self.index.rebuild(&mut self.store, new_dim);
        self.store.len()
    }

    /// The objects currently inside cell `c`, as a contiguous slice (empty
    /// if the cell is unoccupied). See [`SpatialIndex::objects_in`].
    #[inline]
    pub fn objects_in(&self, c: CellCoord) -> &[ObjectId] {
        self.index.objects_in(c)
    }

    /// Number of objects in cell `c`.
    #[inline]
    pub fn cell_len(&self, c: CellCoord) -> usize {
        self.objects_in(c).len()
    }

    /// Iterate over `(oid, position)` for every live object.
    pub fn iter_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.store.iter()
    }

    /// Iterate over the coordinates of all non-empty cells, in
    /// unspecified order.
    pub fn occupied_cells(&self) -> impl Iterator<Item = CellCoord> {
        self.index.occupied_cells().into_iter()
    }

    /// Iterate, in row-major order and without allocating, over all cells
    /// whose extent intersects `region` (see [`GridGeom::cells_in_rect`]).
    pub fn cells_in_rect(&self, region: &Rect) -> impl Iterator<Item = CellCoord> {
        self.index.geom().cells_in_rect(region)
    }

    /// Iterate, without allocating, over all cells whose extent intersects
    /// the closed disk `(center, radius)` (see
    /// [`GridGeom::cells_in_circle`]).
    pub fn cells_in_circle(&self, center: Point, radius: f64) -> impl Iterator<Item = CellCoord> {
        self.index.geom().cells_in_circle(center, radius)
    }

    /// Collecting wrapper around [`Grid::cells_in_rect`] for callers that
    /// need an owned list; the hot paths use the iterator directly.
    pub fn cells_intersecting_rect(&self, region: &Rect) -> Vec<CellCoord> {
        self.index.geom().cells_intersecting_rect(region)
    }

    /// Occupancy statistics — O(1): every counter is maintained
    /// incrementally by the backend.
    pub fn stats(&self) -> GridStats {
        GridStats {
            total_cells: self.index.geom().total_cells(),
            occupied_cells: self.index.occupied_count(),
            live_objects: self.store.len(),
            hot_cell_max: self.index.hot_cell_max(),
        }
    }

    /// Memory footprint estimate in the paper's "memory units"
    /// (see [`ObjectStore::space_units`]).
    pub fn space_units(&self) -> usize {
        self.store.space_units()
    }

    /// Verify the bucket / back-pointer / position cross-invariants of the
    /// store/index split (test helper; O(total state)).
    #[doc(hidden)]
    pub fn check_integrity(&self) {
        self.store.check_integrity();
        self.index.check_integrity(&self.store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid8() -> Grid {
        GridBuilder::new(8).build_uniform()
    }

    fn uniform(dim: u32) -> Grid {
        GridBuilder::new(dim).build_uniform()
    }

    #[test]
    fn builder_validates_at_build_time() {
        assert!(GridBuilder::new(0).try_build().is_err());
        assert!(GridBuilder::new(8192).try_build().is_err());
        assert!(GridBuilder::new(100)
            .index(IndexKind::quadtree())
            .try_build()
            .is_err());
        let g = GridBuilder::new(128)
            .index(IndexKind::quadtree())
            .try_build()
            .unwrap();
        assert_eq!(g.dim(), 128);
        assert_eq!(g.index().kind(), IndexKind::quadtree());
        assert_eq!(GridBuilder::new(16).kind(), IndexKind::Uniform);
        assert_eq!(GridBuilder::new(16).dim(), 16);
    }

    #[test]
    #[should_panic(expected = "build_uniform on a builder configured for")]
    fn build_uniform_rejects_other_kinds() {
        let _ = GridBuilder::new(64)
            .index(IndexKind::quadtree())
            .build_uniform();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_works() {
        let g = Grid::new(8);
        assert_eq!(g.dim(), 8);
    }

    #[test]
    fn cell_of_matches_floor_formula() {
        let g = grid8();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(0.124, 0.126)), CellCoord::new(0, 1));
        // Lower-inclusive, upper-exclusive cell boundaries.
        assert_eq!(g.cell_of(Point::new(0.125, 0.5)), CellCoord::new(1, 4));
        // Workspace edge clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), CellCoord::new(7, 7));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = grid8();
        let p = Point::new(0.3, 0.7);
        let cell = g.insert(ObjectId(4), p);
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(4)), Some(p));
        assert_eq!(g.cell_len(cell), 1);
        assert_eq!(g.stats().hot_cell_max, 1);
        let (old, old_cell) = g.remove(ObjectId(4)).unwrap();
        assert_eq!(old, p);
        assert_eq!(old_cell, cell);
        assert!(g.is_empty());
        assert!(g.remove(ObjectId(4)).is_none());
        assert_eq!(g.stats().occupied_cells, 0);
        assert_eq!(g.stats().hot_cell_max, 0);
        g.check_integrity();
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_panics() {
        let mut g = grid8();
        g.insert(ObjectId(0), Point::new(0.1, 0.1));
        g.insert(ObjectId(0), Point::new(0.2, 0.2));
    }

    #[test]
    fn update_position_moves_between_cells() {
        let mut g = grid8();
        g.insert(ObjectId(1), Point::new(0.05, 0.05));
        let (old, from, to) = g.update_position(ObjectId(1), Point::new(0.95, 0.95));
        assert_eq!(old, Point::new(0.05, 0.05));
        assert_eq!(from, CellCoord::new(0, 0));
        assert_eq!(to, CellCoord::new(7, 7));
        assert_eq!(g.cell_len(from), 0);
        assert_eq!(g.cell_len(to), 1);
        assert_eq!(g.len(), 1);
        g.check_integrity();
    }

    #[test]
    fn swap_remove_repoints_the_moved_object() {
        // Three objects in one cell; removing the first forces the last to
        // take its slot, which must keep the mover's back-pointer valid.
        let mut g = grid8();
        let p = Point::new(0.3, 0.3);
        let cell = g.insert(ObjectId(0), p);
        g.insert(ObjectId(1), Point::new(0.31, 0.31));
        g.insert(ObjectId(2), Point::new(0.32, 0.32));
        assert_eq!(g.cell_len(cell), 3);
        assert_eq!(g.stats().hot_cell_max, 3);
        g.remove(ObjectId(0)).unwrap();
        g.check_integrity();
        // The repointed object must still be removable in O(1).
        g.remove(ObjectId(2)).unwrap();
        g.check_integrity();
        assert_eq!(g.objects_in(cell), &[ObjectId(1)]);
        assert_eq!(g.stats().hot_cell_max, 1);
    }

    #[test]
    fn objects_in_returns_empty_slice_for_empty_cells() {
        let g = grid8();
        assert!(g.objects_in(CellCoord::new(3, 3)).is_empty());
        assert_eq!(g.cell_len(CellCoord::new(3, 3)), 0);
    }

    #[test]
    fn mindist_zero_for_own_cell() {
        let g = grid8();
        let p = Point::new(0.4, 0.4);
        assert_eq!(g.mindist(g.cell_of(p), p), 0.0);
    }

    #[test]
    fn rect_cover_includes_boundary_cells() {
        let g = grid8();
        let r = Rect::new(Point::new(0.20, 0.20), Point::new(0.30, 0.30));
        let cells = g.cells_intersecting_rect(&r);
        // 0.20 is inside cell 1 ([0.125,0.25)), 0.30 inside cell 2.
        assert!(cells.contains(&CellCoord::new(1, 1)));
        assert!(cells.contains(&CellCoord::new(2, 2)));
        assert_eq!(cells.len(), 4);
        // The iterator sees the identical cells without collecting.
        let streamed: Vec<CellCoord> = g.cells_in_rect(&r).collect();
        assert_eq!(streamed, cells);
    }

    #[test]
    fn full_workspace_rect_cover_does_not_overflow() {
        // Regression: the capacity product overflowed u32 on a 4096² grid.
        let g = uniform(4096);
        let all = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(g.cells_in_rect(&all).count(), 4096 * 4096);
    }

    #[test]
    fn circle_cover_is_exactly_intersecting_cells() {
        let g = grid8();
        let q = Point::new(0.5, 0.5);
        let cells: Vec<CellCoord> = g.cells_in_circle(q, 0.13).collect();
        for &c in &cells {
            assert!(g.cell_rect(c).intersects_circle(q, 0.13));
        }
        // A radius slightly over one cell reaches the 4-neighborhood.
        assert!(cells.len() >= 5);
        // And no intersecting cell is missed.
        for row in 0..8 {
            for col in 0..8 {
                let c = CellCoord::new(col, row);
                if g.cell_rect(c).intersects_circle(q, 0.13) {
                    assert!(cells.contains(&c), "missing {c}");
                }
            }
        }
    }

    #[test]
    fn iter_objects_sees_everything() {
        let mut g = grid8();
        for i in 0..10u32 {
            g.insert(ObjectId(i), Point::new(i as f64 / 10.0, 0.5));
        }
        g.remove(ObjectId(3)).unwrap();
        let ids: Vec<u32> = g.iter_objects().map(|(o, _)| o.0).collect();
        assert_eq!(ids.len(), 9);
        assert!(!ids.contains(&3));
    }

    #[test]
    fn regrid_rebuilds_only_the_index() {
        let mut g = uniform(8);
        for i in 0..50u32 {
            g.insert(
                ObjectId(i),
                Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0),
            );
        }
        g.remove(ObjectId(7)).unwrap();
        let before: Vec<(ObjectId, Point)> = g.iter_objects().collect();

        let migrated = g.regrid(64);
        assert_eq!(migrated, 49);
        assert_eq!(g.dim(), 64);
        assert_eq!(g.delta(), 1.0 / 64.0);
        g.check_integrity();
        // Store contents are invariant under the re-grid.
        let after: Vec<(ObjectId, Point)> = g.iter_objects().collect();
        assert_eq!(before, after);
        assert_eq!(g.position(ObjectId(7)), None);

        // The migrated layout is identical to a fresh populate in id order.
        let mut fresh = uniform(64);
        for &(oid, p) in &before {
            fresh.insert(oid, p);
        }
        for cell in fresh.occupied_cells() {
            assert_eq!(g.objects_in(cell), fresh.objects_in(cell), "bucket {cell}");
        }
        assert_eq!(g.stats(), fresh.stats());

        // Same-dim regrid is a no-op.
        assert_eq!(g.regrid(64), 0);
        // Updates keep working against the new index.
        g.update_position(ObjectId(0), Point::new(0.99, 0.01));
        g.insert(ObjectId(7), Point::new(0.5, 0.5));
        g.check_integrity();
    }

    #[test]
    fn regrid_coarsens_too() {
        let mut g = uniform(256);
        for i in 0..30u32 {
            g.insert(ObjectId(i), Point::new((i as f64 * 0.13) % 1.0, 0.4));
        }
        g.regrid(4);
        assert_eq!(g.dim(), 4);
        g.check_integrity();
        let total: usize = g.occupied_cells().map(|c| g.cell_len(c)).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn backends_agree_on_membership_and_stats() {
        // The same update stream through both backends: every per-cell
        // read and every stats counter must coincide.
        let mut lanes: Vec<Grid<DynIndex>> = vec![
            GridBuilder::new(32).build(),
            GridBuilder::new(32)
                .index(IndexKind::Quadtree { split_threshold: 4 })
                .build(),
        ];
        for step in 0..200u32 {
            let id = step % 23;
            let t = f64::from(step) * 0.017;
            for g in &mut lanes {
                if step % 11 == 5 && g.position(ObjectId(id)).is_some() {
                    g.remove(ObjectId(id)).unwrap();
                } else if g.position(ObjectId(id)).is_some() {
                    g.update_position(ObjectId(id), Point::new(t % 1.0, (t * 3.1) % 1.0));
                } else {
                    g.insert(ObjectId(id), Point::new(t % 1.0, (t * 3.1) % 1.0));
                }
            }
            let (a, b) = (&lanes[0], &lanes[1]);
            assert_eq!(a.stats(), b.stats());
            for row in 0..32 {
                for col in 0..32 {
                    let c = CellCoord::new(col, row);
                    let mut ua: Vec<ObjectId> = a.objects_in(c).to_vec();
                    let mut ub: Vec<ObjectId> = b.objects_in(c).to_vec();
                    ua.sort_unstable();
                    ub.sort_unstable();
                    assert_eq!(ua, ub, "cell {c} diverged at step {step}");
                }
            }
        }
        for g in &lanes {
            g.check_integrity();
        }
    }

    proptest! {
        #[test]
        fn every_point_maps_to_cell_containing_it(
            x in 0.0..1.0f64, y in 0.0..1.0f64, dim in 1u32..256,
        ) {
            let g = uniform(dim);
            let p = Point::new(x, y);
            let c = g.cell_of(p);
            prop_assert!(g.cell_rect(c).contains(p));
            prop_assert_eq!(g.mindist(c, p), 0.0);
        }

        /// Random insert/move/remove streams against a naive
        /// `HashMap<id, Point>` model: membership, back-pointers, and
        /// counts must agree after every step.
        #[test]
        fn moves_preserve_population(
            steps in proptest::collection::vec(
                (0u32..20, 0.0..1.0f64, 0.0..1.0f64, 0u32..8), 1..200),
        ) {
            let mut g = uniform(16);
            let mut model = std::collections::HashMap::new();
            for (id, x, y, op) in steps {
                let oid = ObjectId(id);
                let p = Point::new(x, y);
                if op == 0 && model.contains_key(&id) {
                    // Remove (object goes off-line).
                    let (old, old_cell) = g.remove(oid).unwrap();
                    prop_assert_eq!(old, model.remove(&id).unwrap());
                    prop_assert_eq!(old_cell, g.cell_of(old));
                    prop_assert_eq!(g.position(oid), None);
                } else if model.insert(id, p).is_some() {
                    g.update_position(oid, p);
                } else {
                    g.insert(oid, p);
                }
                // The grid agrees with the model after every step.
                prop_assert_eq!(g.len(), model.len());
                g.check_integrity();
                for (&mid, &mp) in &model {
                    let moid = ObjectId(mid);
                    prop_assert_eq!(g.position(moid), Some(mp));
                    prop_assert!(
                        g.objects_in(g.cell_of(mp)).contains(&moid),
                        "object {} missing from its cell bucket", mid
                    );
                }
            }
            // Sum of cell populations equals the live count.
            let total: usize = g.occupied_cells().map(|c| g.cell_len(c)).sum();
            prop_assert_eq!(total, model.len());
        }

        /// Random update streams with re-grids interleaved: the object
        /// store must be invariant under every re-grid (same positions,
        /// same membership), and the index must stay consistent at every
        /// resolution.
        #[test]
        fn regrids_preserve_the_store(
            steps in proptest::collection::vec(
                (0u32..24, 0.0..1.0f64, 0.0..1.0f64, 0u32..10), 1..120),
        ) {
            let dims = [4u32, 8, 16, 64, 256];
            let mut g = uniform(16);
            let mut model = std::collections::HashMap::new();
            for (id, x, y, op) in steps {
                let oid = ObjectId(id);
                let p = Point::new(x, y);
                if op == 0 {
                    // Re-grid to a pseudo-random resolution.
                    let before: Vec<(ObjectId, Point)> = g.iter_objects().collect();
                    let migrated = g.regrid(dims[(id as usize + model.len()) % dims.len()]);
                    prop_assert!(migrated == 0 || migrated == model.len());
                    let after: Vec<(ObjectId, Point)> = g.iter_objects().collect();
                    prop_assert_eq!(before, after, "store changed across regrid");
                } else if op == 1 && model.contains_key(&id) {
                    g.remove(oid).unwrap();
                    model.remove(&id);
                } else if model.insert(id, p).is_some() {
                    g.update_position(oid, p);
                } else {
                    g.insert(oid, p);
                }
                g.check_integrity();
                prop_assert_eq!(g.len(), model.len());
                for (&mid, &mp) in &model {
                    let moid = ObjectId(mid);
                    prop_assert_eq!(g.position(moid), Some(mp));
                    prop_assert!(g.objects_in(g.cell_of(mp)).contains(&moid));
                }
            }
        }

        /// Satellite: `GridStats` occupancy counters (occupied cells,
        /// hot-cell max, per-cell sums) must exactly match a brute-force
        /// recount under random event interleavings — on **both** index
        /// backends, including across re-grids.
        #[test]
        fn stats_match_brute_force_recount_on_both_backends(
            steps in proptest::collection::vec(
                (0u32..24, 0.0..1.0f64, 0.0..1.0f64, 0u32..10), 1..120),
        ) {
            let mut lanes: Vec<Grid<DynIndex>> = vec![
                GridBuilder::new(16).build(),
                GridBuilder::new(16)
                    .index(IndexKind::Quadtree { split_threshold: 3 })
                    .build(),
            ];
            let dims = [4u32, 8, 16, 64];
            let mut model: std::collections::HashMap<u32, Point> =
                std::collections::HashMap::new();
            for (id, x, y, op) in steps {
                let oid = ObjectId(id);
                let p = Point::new(x, y);
                let live = model.contains_key(&id);
                for g in &mut lanes {
                    if op == 0 {
                        g.regrid(dims[(id as usize + model.len()) % dims.len()]);
                    } else if op == 1 && live {
                        g.remove(oid).unwrap();
                    } else if live {
                        g.update_position(oid, p);
                    } else {
                        g.insert(oid, p);
                    }
                }
                if op == 1 && live {
                    model.remove(&id);
                } else if op != 0 {
                    model.insert(id, p);
                }
                for g in &lanes {
                    // Brute-force recount from the model.
                    let geom = g.geom();
                    let mut per_cell: std::collections::HashMap<u64, usize> =
                        std::collections::HashMap::new();
                    for (&_, &mp) in &model {
                        *per_cell.entry(geom.cell_of(mp).id(geom.dim())).or_insert(0) += 1;
                    }
                    let expect = GridStats {
                        total_cells: geom.total_cells(),
                        occupied_cells: per_cell.len(),
                        live_objects: model.len(),
                        hot_cell_max: per_cell.values().copied().max().unwrap_or(0),
                    };
                    prop_assert_eq!(g.stats(), expect, "stats drift on {}", g.index().kind());
                    // Per-cell sums: every occupied cell reports exactly
                    // its brute-force population.
                    let mut seen = 0usize;
                    for c in g.occupied_cells() {
                        let n = g.cell_len(c);
                        prop_assert_eq!(
                            per_cell.get(&c.id(geom.dim())).copied().unwrap_or(0), n,
                            "per-cell sum drift at {} on {}", c, g.index().kind()
                        );
                        seen += n;
                    }
                    prop_assert_eq!(seen, model.len());
                    g.check_integrity();
                }
            }
        }

        /// Concurrent read-only scans see exactly what a sequential scan
        /// sees: after a random build, worker threads scanning disjoint row
        /// bands through `&Grid` must reproduce the sequential population
        /// count and id/position checksum. (This is the access pattern of
        /// the sharded engine's parallel maintenance phase.)
        #[test]
        fn concurrent_scans_match_sequential(
            inserts in proptest::collection::vec(
                (0.0..1.0f64, 0.0..1.0f64), 1..150),
        ) {
            let dim = 16u32;
            let mut g = uniform(dim);
            for (i, &(x, y)) in inserts.iter().enumerate() {
                g.insert(ObjectId(i as u32), Point::new(x, y));
            }

            let scan_rows = |g: &Grid, rows: std::ops::Range<u32>| {
                let mut count = 0usize;
                let mut checksum = 0u64;
                for row in rows {
                    for col in 0..dim {
                        for &oid in g.objects_in(CellCoord::new(col, row)) {
                            let p = g.position(oid).expect("live object");
                            count += 1;
                            checksum ^= ((oid.0 as u64) << 32) | (p.x.to_bits() ^ p.y.to_bits());
                        }
                    }
                }
                (count, checksum)
            };

            let (seq_count, seq_checksum) = scan_rows(&g, 0..dim);
            prop_assert_eq!(seq_count, inserts.len());

            let workers = 4u32;
            let band = dim / workers;
            let shared = &g;
            let (par_count, par_checksum) = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let rows = (w * band)..if w + 1 == workers { dim } else { (w + 1) * band };
                        scope.spawn(move || scan_rows(shared, rows))
                    })
                    .collect();
                handles.into_iter().fold((0usize, 0u64), |(c, x), h| {
                    let (hc, hx) = h.join().expect("scan worker panicked");
                    (c + hc, x ^ hx)
                })
            });
            prop_assert_eq!(par_count, seq_count);
            prop_assert_eq!(par_checksum, seq_checksum);
        }
    }
}
