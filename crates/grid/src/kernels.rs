//! Batched distance kernels over the store's struct-of-arrays columns.
//!
//! The maintenance inner loop of every monitor — CPM recompute/visit,
//! the unified server's candidate scans, the SEA/YPK baselines — is
//! "given a query point and one cell bucket, compute the distance to
//! every object in the bucket". This module is that loop, written once:
//! gather the bucket's coordinates from the [`Coords`] columns and fill
//! a caller-reused output buffer in a single pass.
//!
//! Two lanes share the entry points:
//!
//! - the **default lane**: plain indexed loops shaped for
//!   auto-vectorization (no `Option` decode per object, bulk `sqrt`
//!   over a contiguous slice);
//! - an **explicit-SIMD lane** behind the `simd` cargo feature
//!   (x86-64 SSE2, two doubles per vector). It validates the bucket's
//!   ids against the columns **once**, then runs an unchecked gather
//!   fused with packed arithmetic and packed `sqrt` in a single pass —
//!   the shape the auto-vectorizer cannot reach from safe indexed loops
//!   (data-dependent gather indices defeat it, and the checked fallback
//!   pays two bounds tests per element plus an extra output pass).
//!
//! Both lanes are **bit-identical** to the scalar reference
//! (`Point::dist_sq` / `Point::dist` per object): every lane performs
//! the same `sub → mul → add → sqrt` sequence per element, rustc emits
//! no fast-math reassociation or FMA contraction, and the SSE2 packed
//! ops round exactly like their scalar counterparts. The
//! `kernel_conformance` suite asserts equality down to the bit pattern
//! for every table/bucket size, including the odd-length tail lane.

use cpm_geom::{ObjectId, Point};

/// A borrowed view of the struct-of-arrays coordinate columns: `xs[i]` /
/// `ys[i]` are the position of `ObjectId(i)`, `NaN` in both columns
/// means the slot is off-line. Obtain one from
/// [`crate::Grid::coords`] / [`crate::ObjectStore::coords`] (or from raw
/// columns via [`Coords::from_columns`] in tests and benches).
#[derive(Debug, Clone, Copy)]
pub struct Coords<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
}

impl<'a> Coords<'a> {
    /// View two parallel coordinate columns as a [`Coords`].
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    #[inline]
    pub fn from_columns(xs: &'a [f64], ys: &'a [f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate columns must be parallel");
        Self { xs, ys }
    }

    /// Number of slots in the columns (allocated ids, not live objects).
    #[inline]
    pub fn slots(&self) -> usize {
        self.xs.len()
    }

    /// Position stored in `oid`'s slot. For a live object this is its
    /// finite position; for an off-line slot both coordinates are `NaN`.
    ///
    /// # Panics
    /// Panics if `oid` is outside the allocated slot range.
    #[inline]
    pub fn point(&self, oid: ObjectId) -> Point {
        let idx = oid.index();
        Point::new(self.xs[idx], self.ys[idx])
    }
}

/// Fill `out` with the **squared** distance from `q` to every object of
/// `oids`, in order: `out[i] = q.dist_sq(position(oids[i]))`, bit-exact.
/// `out` is cleared and resized; keep one buffer per query state and
/// reuse it so the hot path never allocates.
///
/// # Panics
/// Panics if any id in `oids` is outside the coordinate columns.
#[inline]
pub fn dist_sq_into(coords: Coords<'_>, q: Point, oids: &[ObjectId], out: &mut Vec<f64>) {
    out.clear();
    out.resize(oids.len(), 0.0);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    simd::dist_sq(coords.xs, coords.ys, q, oids, out);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    dist_sq_gather(coords.xs, coords.ys, q, oids, out);
}

/// Fill `out` with the **Euclidean** distance from `q` to every object
/// of `oids`: `out[i] = q.dist(position(oids[i]))`, bit-exact. Same
/// buffer contract as [`dist_sq_into`].
///
/// # Panics
/// Panics if any id in `oids` is outside the coordinate columns.
#[inline]
pub fn dist_into(coords: Coords<'_>, q: Point, oids: &[ObjectId], out: &mut Vec<f64>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // Fused single pass: gather, packed arithmetic and packed sqrt
        // per vector, no intermediate traversal of `out`.
        out.clear();
        out.resize(oids.len(), 0.0);
        simd::dist(coords.xs, coords.ys, q, oids, out);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        dist_sq_into(coords, q, oids, out);
        // Second vertical pass: a pure slice traversal the compiler
        // turns into packed sqrt, instead of a serial sqrt per gathered
        // element.
        for d in out.iter_mut() {
            *d = d.sqrt();
        }
    }
}

/// Default lane: gather + arithmetic in one plain indexed loop. Writing
/// through `out.iter_mut().zip(oids)` keeps the loop free of bounds
/// checks on the output side; the column reads stay checked (ids are
/// caller-supplied) which LLVM hoists per iteration.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn dist_sq_gather(xs: &[f64], ys: &[f64], q: Point, oids: &[ObjectId], out: &mut [f64]) {
    for (d, &oid) in out.iter_mut().zip(oids) {
        let idx = oid.index();
        let dx = xs[idx] - q.x;
        let dy = ys[idx] - q.y;
        *d = dx * dx + dy * dy;
    }
}

/// Explicit-SIMD lane: SSE2 packed doubles, two elements per step.
/// SSE2 is part of the x86-64 baseline, so the `#[target_feature]`
/// functions are callable on every x86-64 CPU. All unsafe code in the
/// crate lives in this module, with two invariants: the
/// `#[target_feature]` call boundary (trivially sound — SSE2 is the
/// baseline), and the unchecked column gathers, which [`validate`]
/// makes sound by range-checking every bucket id against the columns
/// once before a kernel runs (replacing two bounds tests per element —
/// the dominant non-sqrt cost of the checked loop).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use cpm_geom::{ObjectId, Point};
    use std::arch::x86_64::{
        __m128d, _mm_add_pd, _mm_cvtsd_f64, _mm_mul_pd, _mm_set1_pd, _mm_set_pd, _mm_sqrt_pd,
        _mm_sub_pd, _mm_unpackhi_pd,
    };

    /// Range-check every bucket id against the column length, once.
    ///
    /// # Panics
    /// Panics if any id lies outside the columns — the same condition
    /// (not bitwise the same message) as the default lane's per-element
    /// indexing, surfaced before the kernel writes anything.
    fn validate(oids: &[ObjectId], slots: usize) {
        if let Some(max) = oids.iter().map(|oid| oid.index()).max() {
            assert!(
                max < slots,
                "object id {max} outside the coordinate columns ({slots} slots)"
            );
        }
    }

    /// Gather the coordinate pair at (validated) indices `a`, `b`.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn gather_pair(col: &[f64], a: usize, b: usize) -> __m128d {
        debug_assert!(a < col.len() && b < col.len());
        // SAFETY: every bucket id was range-checked against the column
        // length by `validate` before the kernel was entered.
        unsafe { _mm_set_pd(*col.get_unchecked(b), *col.get_unchecked(a)) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn store_pair(out: &mut [f64], i: usize, v: __m128d) {
        out[i] = _mm_cvtsd_f64(v);
        out[i + 1] = _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    }

    #[target_feature(enable = "sse2")]
    fn dist_sq_lanes(xs: &[f64], ys: &[f64], q: Point, oids: &[ObjectId], out: &mut [f64]) {
        let qx = _mm_set1_pd(q.x);
        let qy = _mm_set1_pd(q.y);
        let mut i = 0;
        while i + 2 <= oids.len() {
            let (a, b) = (oids[i].index(), oids[i + 1].index());
            let dx = _mm_sub_pd(gather_pair(xs, a, b), qx);
            let dy = _mm_sub_pd(gather_pair(ys, a, b), qy);
            let d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
            store_pair(out, i, d);
            i += 2;
        }
        if i < oids.len() {
            // Tail lane: one leftover element; identical op sequence,
            // hence identical bits.
            let idx = oids[i].index();
            let dx = xs[idx] - q.x;
            let dy = ys[idx] - q.y;
            out[i] = dx * dx + dy * dy;
        }
    }

    /// Fused distance kernel: gather, packed `sub/mul/add` and packed
    /// `sqrt` per vector in one pass. Packed SSE2 sqrt is correctly
    /// rounded exactly like scalar `f64::sqrt`, so fusing changes no
    /// bits — only the number of passes over `out`.
    #[target_feature(enable = "sse2")]
    fn dist_lanes(xs: &[f64], ys: &[f64], q: Point, oids: &[ObjectId], out: &mut [f64]) {
        let qx = _mm_set1_pd(q.x);
        let qy = _mm_set1_pd(q.y);
        let mut i = 0;
        while i + 2 <= oids.len() {
            let (a, b) = (oids[i].index(), oids[i + 1].index());
            let dx = _mm_sub_pd(gather_pair(xs, a, b), qx);
            let dy = _mm_sub_pd(gather_pair(ys, a, b), qy);
            let d = _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
            store_pair(out, i, d);
            i += 2;
        }
        if i < oids.len() {
            let idx = oids[i].index();
            let dx = xs[idx] - q.x;
            let dy = ys[idx] - q.y;
            out[i] = (dx * dx + dy * dy).sqrt();
        }
    }

    pub(super) fn dist_sq(xs: &[f64], ys: &[f64], q: Point, oids: &[ObjectId], out: &mut [f64]) {
        validate(oids, xs.len());
        // SAFETY: SSE2 is unconditionally available on x86_64 (baseline
        // target feature), so calling the `#[target_feature(enable =
        // "sse2")]` kernel is sound on every CPU this cfg selects; the
        // ids its gathers rely on were validated just above.
        unsafe { dist_sq_lanes(xs, ys, q, oids, out) }
    }

    pub(super) fn dist(xs: &[f64], ys: &[f64], q: Point, oids: &[ObjectId], out: &mut [f64]) {
        validate(oids, xs.len());
        // SAFETY: as above — SSE2 is the x86_64 baseline, ids validated.
        unsafe { dist_lanes(xs, ys, q, oids, out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns(n: usize) -> (Vec<f64>, Vec<f64>) {
        (0..n)
            .map(|i| {
                let t = i as f64 / n.max(1) as f64;
                (t, (1.0 - t) * 0.7)
            })
            .unzip()
    }

    #[test]
    fn batched_dist_sq_matches_scalar_bitwise() {
        let (xs, ys) = columns(64);
        let coords = Coords::from_columns(&xs, &ys);
        let q = Point::new(0.3, 0.6);
        // 33 exercises the odd-length tail lane.
        let oids: Vec<ObjectId> = (0..33).map(|i| ObjectId((i * 7 % 64) as u32)).collect();
        let mut out = Vec::new();
        dist_sq_into(coords, q, &oids, &mut out);
        for (&oid, &d) in oids.iter().zip(&out) {
            assert_eq!(d.to_bits(), q.dist_sq(coords.point(oid)).to_bits());
        }
        dist_into(coords, q, &oids, &mut out);
        for (&oid, &d) in oids.iter().zip(&out) {
            assert_eq!(d.to_bits(), q.dist(coords.point(oid)).to_bits());
        }
    }

    #[test]
    fn buffer_is_reused_and_resized() {
        let (xs, ys) = columns(8);
        let coords = Coords::from_columns(&xs, &ys);
        let mut out = vec![999.0; 100];
        dist_sq_into(coords, Point::new(0.5, 0.5), &[ObjectId(1)], &mut out);
        assert_eq!(out.len(), 1);
        dist_sq_into(coords, Point::new(0.5, 0.5), &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn unequal_columns_are_rejected() {
        let _ = Coords::from_columns(&[0.0], &[]);
    }
}
