//! Release-mode regression for the non-NaN ingest guarantee.
//!
//! `TotalF64::new` rejects NaN distance keys only via `debug_assert!`
//! (it sits on the hot path), and the struct-of-arrays position table
//! uses NaN as its off-line sentinel. Both are sound **only because**
//! `ObjectStore::activate` rejects non-finite coordinates with a hard
//! `assert!` that survives `--release`. This suite pins that boundary:
//! CI runs it in release mode explicitly, where a `debug_assert!`-only
//! check would silently admit the NaN.

use cpm_geom::{ObjectId, Point};
use cpm_grid::GridBuilder;

#[test]
#[should_panic(expected = "must be finite")]
fn nan_insert_panics_even_in_release() {
    let mut g = GridBuilder::new(16).build_uniform();
    g.insert(ObjectId(0), Point::new(f64::NAN, 0.5));
}

#[test]
#[should_panic(expected = "must be finite")]
fn infinite_insert_panics_even_in_release() {
    let mut g = GridBuilder::new(16).build_uniform();
    g.insert(ObjectId(0), Point::new(0.5, f64::INFINITY));
}

#[test]
#[should_panic(expected = "must be finite")]
fn nan_move_panics_even_in_release() {
    let mut g = GridBuilder::new(16).build_uniform();
    g.insert(ObjectId(0), Point::new(0.5, 0.5));
    g.update_position(ObjectId(0), Point::new(f64::NAN, 0.5));
}

/// The flip side of the boundary: every *finite* position is accepted,
/// stored clamped, and read back without tripping the sentinel logic.
#[test]
fn finite_extremes_are_accepted_and_live() {
    let mut g = GridBuilder::new(16).build_uniform();
    for (i, p) in [
        Point::new(0.0, 0.0),
        Point::new(-0.0, 1.0 - 1e-12),
        Point::new(f64::MIN_POSITIVE, 5e-324),
        Point::new(1e300, -1e300), // clamped into the workspace
    ]
    .into_iter()
    .enumerate()
    {
        let id = ObjectId(i as u32);
        g.insert(id, p);
        let stored = g.position(id).expect("finite insert is live");
        assert!(stored.is_finite());
    }
    g.check_integrity();
}
