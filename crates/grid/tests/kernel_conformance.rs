//! Kernel conformance: the batched distance kernels must be
//! **bit-identical** — not ε-close — to the scalar reference
//! (`Point::dist_sq` / `Point::dist` per object) for every table size and
//! bucket size, including the odd-length tail-lane remainder of the SIMD
//! path. Bit-identicality is what lets every engine share the kernel
//! without perturbing `total_cmp` orderings, results, changed lists or
//! delta streams.
//!
//! CI runs this suite under both kernel configurations (default
//! auto-vectorized lane and `--features simd`).

use cpm_geom::{ObjectId, Point};
use cpm_grid::kernels::{self, Coords};
use proptest::prelude::*;

/// Deterministic coordinates in `[0, 1)` (no external RNG needed).
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

fn columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut s = seed;
    (0..n).map(|_| (lcg(&mut s), lcg(&mut s))).unzip()
}

fn assert_bucket_bit_identical(coords: Coords<'_>, q: Point, oids: &[ObjectId], ctx: &str) {
    let mut out = Vec::new();
    kernels::dist_sq_into(coords, q, oids, &mut out);
    assert_eq!(out.len(), oids.len(), "{ctx}: dist_sq output length");
    for (i, (&oid, &d)) in oids.iter().zip(&out).enumerate() {
        let want = q.dist_sq(coords.point(oid));
        assert_eq!(
            d.to_bits(),
            want.to_bits(),
            "{ctx}: dist_sq[{i}] {d} != scalar {want}"
        );
    }
    kernels::dist_into(coords, q, oids, &mut out);
    assert_eq!(out.len(), oids.len(), "{ctx}: dist output length");
    for (i, (&oid, &d)) in oids.iter().zip(&out).enumerate() {
        let want = q.dist(coords.point(oid));
        assert_eq!(
            d.to_bits(),
            want.to_bits(),
            "{ctx}: dist[{i}] {d} != scalar {want}"
        );
    }
}

/// Exhaustive sweep over the benchmarked position-table sizes and *every*
/// bucket size 0..=256: each odd size exercises the SIMD tail lane, each
/// even size the full-vector path, and 0/1 the degenerate edges.
#[test]
fn batched_kernels_bit_identical_for_every_dim_and_bucket_size() {
    for &dim in &[64usize, 256, 1024] {
        let (xs, ys) = columns(dim, 0x5EED ^ dim as u64);
        let coords = Coords::from_columns(&xs, &ys);
        let mut s = 0xABCDEF ^ dim as u64;
        let q = Point::new(lcg(&mut s), lcg(&mut s));
        for bucket in 0..=256usize {
            // Pseudo-random gather pattern, duplicates allowed.
            let oids: Vec<ObjectId> = (0..bucket)
                .map(|_| ObjectId((lcg(&mut s) * dim as f64) as u32))
                .collect();
            assert_bucket_bit_identical(coords, q, &oids, &format!("dim {dim}, bucket {bucket}"));
        }
    }
}

/// Extreme-but-legal coordinates must round-trip bit-exactly too: the
/// kernel may not assume unit-square inputs (benches and tests feed raw
/// columns).
#[test]
fn batched_kernels_bit_identical_on_extreme_values() {
    let xs = [0.0, -0.0, 1e-300, 1e300, f64::MIN_POSITIVE, 5e-324, -3.5];
    let ys = [1.0, -1.0, -1e300, 1e-300, 0.25, -5e-324, 7.75];
    let coords = Coords::from_columns(&xs, &ys);
    let oids: Vec<ObjectId> = (0..xs.len() as u32).map(ObjectId).collect();
    for q in [
        Point::new(0.0, 0.0),
        Point::new(-1e300, 1e300),
        Point::new(1e-308, -1e-308),
    ] {
        assert_bucket_bit_identical(coords, q, &oids, "extreme values");
    }
}

proptest! {
    /// Random table sizes, random gather patterns (duplicates and
    /// out-of-order ids included), random query points: batched output is
    /// always bit-identical to the scalar reference.
    #[test]
    fn batched_matches_scalar_bitwise(
        dim in 1usize..300,
        seed in any::<u64>(),
        bucket in 0usize..300,
        qx in -2.0..2.0f64,
        qy in -2.0..2.0f64,
    ) {
        let (xs, ys) = columns(dim, seed);
        let coords = Coords::from_columns(&xs, &ys);
        let mut s = seed ^ 0x9E3779B97F4A7C15;
        let oids: Vec<ObjectId> = (0..bucket)
            .map(|_| ObjectId((lcg(&mut s) * dim as f64) as u32))
            .collect();
        let q = Point::new(qx, qy);
        let mut out = Vec::new();
        kernels::dist_sq_into(coords, q, &oids, &mut out);
        for (&oid, &d) in oids.iter().zip(&out) {
            prop_assert_eq!(d.to_bits(), q.dist_sq(coords.point(oid)).to_bits());
        }
        kernels::dist_into(coords, q, &oids, &mut out);
        for (&oid, &d) in oids.iter().zip(&out) {
            prop_assert_eq!(d.to_bits(), q.dist(coords.point(oid)).to_bits());
        }
    }
}
