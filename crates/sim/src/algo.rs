//! The common monitor interface the harness drives.
//!
//! CPM, YPK-CNN, SEA-CNN and the brute-force oracle all consume identical
//! update streams; [`KnnMonitorAlgo`] is the uniform surface the runner and
//! the tests use to compare them cycle by cycle.

use cpm_geom::{ObjectId, Point, QueryId};
use cpm_grid::{Metrics, ObjectEvent, QueryEvent};

use cpm_baselines::{SeaCnnMonitor, YpkCnnMonitor};
use cpm_core::{CpmKnnMonitor, Neighbor, ShardedKnnMonitor};

use crate::oracle::OracleMonitor;

/// Which monitoring algorithm to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Conceptual Partitioning Monitoring (the paper's contribution).
    Cpm,
    /// The YPK-CNN baseline \[YPK05\].
    Ypk,
    /// The SEA-CNN baseline \[XMA05\].
    Sea,
    /// Brute-force per-cycle re-evaluation (ground truth; not a contender).
    Oracle,
}

impl AlgoKind {
    /// The three contenders of the paper's evaluation (no oracle).
    pub const CONTENDERS: [AlgoKind; 3] = [AlgoKind::Cpm, AlgoKind::Ypk, AlgoKind::Sea];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::Cpm => "CPM",
            AlgoKind::Ypk => "YPK-CNN",
            AlgoKind::Sea => "SEA-CNN",
            AlgoKind::Oracle => "oracle",
        }
    }

    /// Instantiate a monitor over an empty `dim × dim` grid.
    pub fn build(self, dim: u32) -> Box<dyn KnnMonitorAlgo> {
        match self {
            AlgoKind::Cpm => Box::new(CpmKnnMonitor::new(dim)),
            AlgoKind::Ypk => Box::new(YpkCnnMonitor::new(dim)),
            AlgoKind::Sea => Box::new(SeaCnnMonitor::new(dim)),
            AlgoKind::Oracle => Box::new(OracleMonitor::new()),
        }
    }
}

/// A continuous k-NN monitoring algorithm, as driven by the harness.
pub trait KnnMonitorAlgo {
    /// Algorithm label.
    fn name(&self) -> &'static str;

    /// Bulk-load the initial object population (before any query).
    fn populate(&mut self, objects: &[(ObjectId, Point)]);

    /// Install a query and compute its initial result.
    fn install_query(&mut self, id: QueryId, pos: Point, k: usize);

    /// Process one timestamp worth of updates. Returns queries whose
    /// result changed.
    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId>;

    /// Current result of a query, ascending by distance.
    fn result(&self, id: QueryId) -> Option<&[Neighbor]>;

    /// Take and reset the work counters.
    fn take_metrics(&mut self) -> Metrics;

    /// Memory footprint in the paper's memory units (Section 4.1).
    fn space_units(&self) -> usize;
}

impl KnnMonitorAlgo for CpmKnnMonitor {
    fn name(&self) -> &'static str {
        AlgoKind::Cpm.label()
    }

    fn populate(&mut self, objects: &[(ObjectId, Point)]) {
        CpmKnnMonitor::populate(self, objects.iter().copied());
    }

    fn install_query(&mut self, id: QueryId, pos: Point, k: usize) {
        CpmKnnMonitor::install_query(self, id, pos, k);
    }

    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        CpmKnnMonitor::process_cycle(self, object_events, query_events)
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        CpmKnnMonitor::result(self, id)
    }

    fn take_metrics(&mut self) -> Metrics {
        CpmKnnMonitor::take_metrics(self)
    }

    fn space_units(&self) -> usize {
        CpmKnnMonitor::space_units(self)
    }
}

impl KnnMonitorAlgo for ShardedKnnMonitor {
    fn name(&self) -> &'static str {
        "CPM-sharded"
    }

    fn populate(&mut self, objects: &[(ObjectId, Point)]) {
        ShardedKnnMonitor::populate(self, objects.iter().copied());
    }

    fn install_query(&mut self, id: QueryId, pos: Point, k: usize) {
        ShardedKnnMonitor::install_query(self, id, pos, k);
    }

    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        ShardedKnnMonitor::process_cycle(self, object_events, query_events)
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        ShardedKnnMonitor::result(self, id)
    }

    fn take_metrics(&mut self) -> Metrics {
        ShardedKnnMonitor::take_metrics(self)
    }

    fn space_units(&self) -> usize {
        ShardedKnnMonitor::space_units(self)
    }
}

impl KnnMonitorAlgo for YpkCnnMonitor {
    fn name(&self) -> &'static str {
        AlgoKind::Ypk.label()
    }

    fn populate(&mut self, objects: &[(ObjectId, Point)]) {
        YpkCnnMonitor::populate(self, objects.iter().copied());
    }

    fn install_query(&mut self, id: QueryId, pos: Point, k: usize) {
        YpkCnnMonitor::install_query(self, id, pos, k);
    }

    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        YpkCnnMonitor::process_cycle(self, object_events, query_events)
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        YpkCnnMonitor::result(self, id)
    }

    fn take_metrics(&mut self) -> Metrics {
        YpkCnnMonitor::take_metrics(self)
    }

    fn space_units(&self) -> usize {
        YpkCnnMonitor::space_units(self)
    }
}

impl KnnMonitorAlgo for SeaCnnMonitor {
    fn name(&self) -> &'static str {
        AlgoKind::Sea.label()
    }

    fn populate(&mut self, objects: &[(ObjectId, Point)]) {
        SeaCnnMonitor::populate(self, objects.iter().copied());
    }

    fn install_query(&mut self, id: QueryId, pos: Point, k: usize) {
        SeaCnnMonitor::install_query(self, id, pos, k);
    }

    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        SeaCnnMonitor::process_cycle(self, object_events, query_events)
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        SeaCnnMonitor::result(self, id)
    }

    fn take_metrics(&mut self) -> Metrics {
        SeaCnnMonitor::take_metrics(self)
    }

    fn space_units(&self) -> usize {
        SeaCnnMonitor::space_units(self)
    }
}
