//! Brute-force ground-truth monitor.
//!
//! Re-evaluates every query by a full scan over all objects at every
//! cycle. Obviously not a contender — it exists so that integration tests
//! can assert that CPM, YPK-CNN and SEA-CNN all report exact results on
//! identical update streams.

use cpm_geom::{FastHashMap, ObjectId, Point, QueryId};
use cpm_grid::{Metrics, ObjectEvent, QueryEvent};

use cpm_core::neighbors::{Neighbor, NeighborList};
use cpm_core::RangeQuery;

use crate::algo::{AlgoKind, KnnMonitorAlgo};

/// Ground truth for a continuous range query over an explicit object
/// population: every object inside the region, ascending by `(distance to
/// the region anchor, id)` — the exact order
/// [`cpm_core::CpmRangeMonitor`] and range subscriptions report.
pub fn brute_force_range<I: IntoIterator<Item = (ObjectId, Point)>>(
    objects: I,
    query: &RangeQuery,
) -> Vec<Neighbor> {
    let anchor = query.region.anchor();
    let mut out: Vec<Neighbor> = objects
        .into_iter()
        .filter(|&(_, p)| query.region.contains(p))
        .map(|(id, p)| Neighbor {
            id,
            dist: anchor.dist(p),
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        (a.dist, a.id)
            .partial_cmp(&(b.dist, b.id))
            .expect("finite distances")
    });
    out
}

#[derive(Debug)]
struct OracleQuery {
    q: Point,
    best: NeighborList,
}

/// The brute-force monitor.
#[derive(Debug, Default)]
pub struct OracleMonitor {
    positions: Vec<Option<Point>>,
    queries: FastHashMap<QueryId, OracleQuery>,
    metrics: Metrics,
}

impl OracleMonitor {
    /// Create an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    fn set_position(&mut self, id: ObjectId, p: Option<Point>) {
        let idx = id.index();
        if idx >= self.positions.len() {
            self.positions.resize(idx + 1, None);
        }
        self.positions[idx] = p;
    }

    fn evaluate(positions: &[Option<Point>], st: &mut OracleQuery) {
        let k = st.best.k();
        let mut best = NeighborList::new(k);
        for (i, p) in positions.iter().enumerate() {
            if let Some(p) = p {
                best.offer(ObjectId(i as u32), st.q.dist(*p));
            }
        }
        st.best = best;
    }
}

impl KnnMonitorAlgo for OracleMonitor {
    fn name(&self) -> &'static str {
        AlgoKind::Oracle.label()
    }

    fn populate(&mut self, objects: &[(ObjectId, Point)]) {
        for &(id, p) in objects {
            self.set_position(id, Some(p));
        }
    }

    fn install_query(&mut self, id: QueryId, pos: Point, k: usize) {
        let mut st = OracleQuery {
            q: pos,
            best: NeighborList::new(k),
        };
        Self::evaluate(&self.positions, &mut st);
        self.queries.insert(id, st);
    }

    fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        for ev in object_events {
            match *ev {
                ObjectEvent::Move { id, to } => self.set_position(id, Some(to)),
                ObjectEvent::Appear { id, pos } => self.set_position(id, Some(pos)),
                ObjectEvent::Disappear { id } => self.set_position(id, None),
            }
            self.metrics.updates_applied += 1;
        }
        for ev in query_events {
            match *ev {
                QueryEvent::Terminate { id } => {
                    self.queries.remove(&id);
                }
                QueryEvent::Move { id, to } => {
                    if let Some(st) = self.queries.get_mut(&id) {
                        st.q = to;
                    }
                }
                QueryEvent::Install { id, pos, k } => {
                    self.queries.insert(
                        id,
                        OracleQuery {
                            q: pos,
                            best: NeighborList::new(k),
                        },
                    );
                }
            }
        }
        let mut changed = Vec::new();
        for (&qid, st) in self.queries.iter_mut() {
            let old: Vec<Neighbor> = st.best.neighbors().to_vec();
            Self::evaluate(&self.positions, st);
            if old != st.best.neighbors() {
                changed.push(qid);
            }
        }
        changed.sort_unstable();
        changed
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|st| st.best.neighbors())
    }

    fn take_metrics(&mut self) -> Metrics {
        self.metrics.take()
    }

    fn space_units(&self) -> usize {
        3 * self.positions.iter().flatten().count()
            + self
                .queries
                .values()
                .map(|st| 3 + 2 * st.best.k())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_tracks_exact_results() {
        let mut o = OracleMonitor::new();
        o.populate(&[
            (ObjectId(0), Point::new(0.1, 0.1)),
            (ObjectId(1), Point::new(0.9, 0.9)),
        ]);
        o.install_query(QueryId(0), Point::new(0.2, 0.2), 1);
        assert_eq!(o.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
        let changed = o.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(1),
                to: Point::new(0.21, 0.21),
            }],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(o.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        o.process_cycle(&[ObjectEvent::Disappear { id: ObjectId(1) }], &[]);
        assert_eq!(o.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
    }
}
