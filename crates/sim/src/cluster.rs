//! Cluster conformance harness: the single-node-equivalence guarantee,
//! asserted bit-for-bit.
//!
//! [`verify_cluster`] replays one seeded mixed-kind workload into two
//! lanes per worker count × index backend:
//!
//! * **lane A** is a single [`cpm_core::CpmServer`] processing every
//!   cycle, recording the per-cycle [`CycleDeltas`] (changed lists plus
//!   delta streams);
//! * **lane B** is a [`ClusterCoordinator`] over in-process workers: the
//!   same global batches are routed through the partition, each worker
//!   runs its own server over its coverage, and the coordinator commits
//!   the epoch-aligned merge. Halfway through, one worker is restarted
//!   via snapshot transfer ([`ClusterCoordinator::restart_worker`]).
//!
//! Every merged batch must equal lane A's **bit-identically** — same
//! changed lists, same deltas, same `f64` distance bits — and the final
//! per-query results must agree after folding lane B's stream through a
//! [`DeltaFanout`], proving the hub handoff preserves the guarantee end
//! to end. [`verify_cluster_tcp`] runs the same protocol over TCP
//! loopback transports.
//!
//! Query anchors are pinned inside per-strip jitter boxes so ownership
//! is well-defined for every worker count and the influence certificate
//! holds throughout — a seed that escapes its coverage fails *typed*
//! (`CoverageExceeded`), never silently.

use cpm_cluster::{
    ChannelTransport, ClusterConfig, ClusterCoordinator, ClusterError, Transport, WorkerHandle,
};
use cpm_core::{
    AggregateFn, AnnQuery, AnyQuerySpec, ConstrainedQuery, CpmServer, CpmServerBuilder,
    CycleDeltas, PointQuery, RangeQuery, SpecEvent,
};
use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::{IndexKind, ObjectEvent};
use cpm_sub::DeltaFanout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Horizontal centers of the four ownership strips the workload pins its
/// query anchors to (the `workers = 4` tiling; coarser tilings contain
/// these strips whole, so anchors stay owned by one worker either way).
const STRIP_X: [f64; 4] = [0.125, 0.375, 0.625, 0.875];

const KNN_IDS: [QueryId; 4] = [QueryId(0), QueryId(1), QueryId(2), QueryId(3)];
const RANGE_IDS: [QueryId; 2] = [QueryId(10), QueryId(11)];
const ANN_ID: QueryId = QueryId(20);
const CON_ID: QueryId = QueryId(30);
const TRANSIENT_ID: QueryId = QueryId(5);
/// Installed out-of-band mid-run through `ClusterCoordinator::install`
/// (lane A mirrors it with `CpmServer::install_spec`), exercising the
/// between-cycles maintenance path.
const EXTRA_ID: QueryId = QueryId(50);

/// One cycle's input batches, as plain data both lanes replay verbatim.
#[derive(Debug, Clone)]
struct CycleWork {
    object_events: Vec<ObjectEvent>,
    query_events: Vec<SpecEvent<AnyQuerySpec>>,
}

/// An anchor inside strip `s`'s jitter box: close enough to the strip
/// center that updates never move a query off its owner's tile.
fn strip_anchor(rng: &mut StdRng, s: usize) -> Point {
    Point::new(
        STRIP_X[s] + rng.gen_range(-0.04..0.04),
        rng.gen_range(0.15..0.85),
    )
}

/// The fixed mixed-kind query population, one install batch.
fn build_installs(seed: u64) -> Vec<SpecEvent<AnyQuerySpec>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1B5_7E12);
    let mut installs = Vec::new();
    for (s, &id) in KNN_IDS.iter().enumerate() {
        installs.push(SpecEvent::Install {
            id,
            spec: AnyQuerySpec::Knn(PointQuery(strip_anchor(&mut rng, s))),
            k: 3,
        });
    }
    installs.push(SpecEvent::Install {
        id: RANGE_IDS[0],
        spec: AnyQuerySpec::Range(RangeQuery::circle(strip_anchor(&mut rng, 1), 0.08)),
        k: RangeQuery::UNBOUNDED_K,
    });
    let c = strip_anchor(&mut rng, 2);
    installs.push(SpecEvent::Install {
        id: RANGE_IDS[1],
        spec: AnyQuerySpec::Range(RangeQuery::rect(Rect::new(
            Point::new(c.x - 0.06, c.y - 0.06),
            Point::new(c.x + 0.06, c.y + 0.06),
        ))),
        k: RangeQuery::UNBOUNDED_K,
    });
    let a = strip_anchor(&mut rng, 0);
    installs.push(SpecEvent::Install {
        id: ANN_ID,
        spec: AnyQuerySpec::Ann(AnnQuery::new(
            vec![
                Point::new(a.x - 0.02, a.y),
                Point::new(a.x + 0.02, a.y + 0.03),
            ],
            AggregateFn::Sum,
        )),
        k: 2,
    });
    let q = strip_anchor(&mut rng, 3);
    installs.push(SpecEvent::Install {
        id: CON_ID,
        spec: AnyQuerySpec::Constrained(ConstrainedQuery::new(
            q,
            Rect::new(
                Point::new(q.x - 0.09, q.y - 0.09),
                Point::new(q.x + 0.09, q.y + 0.09),
            ),
        )),
        k: 3,
    });
    installs
}

/// The out-of-band mid-run install both lanes apply between the same two
/// cycles.
fn extra_install(seed: u64) -> Vec<SpecEvent<AnyQuerySpec>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E57_AA11);
    vec![SpecEvent::Install {
        id: EXTRA_ID,
        spec: AnyQuerySpec::Knn(PointQuery(strip_anchor(&mut rng, 1))),
        k: 2,
    }]
}

/// Build the whole run's per-cycle batches up front. Cycle 0 carries the
/// initial object population as appears and cycle 1 the query installs,
/// so both lanes ingest identical streams (installs land *after* objects
/// exist — a k-NN installed over an empty workspace has unbounded
/// influence, which no finite coverage can certify) and every initial
/// result rides the delta stream.
fn build_workload(
    seed: u64,
    n_objects: u32,
    cycles: usize,
    installs: &[SpecEvent<AnyQuerySpec>],
) -> Vec<CycleWork> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C_0CA7);
    let mut live: Vec<u32> = (0..n_objects).collect();
    let mut next_oid = n_objects;
    let install_at = (cycles / 3).max(2);
    let terminate_at = (2 * cycles) / 3;
    let use_transient = install_at < terminate_at;

    (0..cycles)
        .map(|cycle| {
            let mut object_events = Vec::new();
            let mut seen = std::collections::HashSet::new();
            if cycle == 0 {
                for &id in &live {
                    object_events.push(ObjectEvent::Appear {
                        id: ObjectId(id),
                        pos: Point::new(rng.gen(), rng.gen()),
                    });
                }
            } else {
                for _ in 0..rng.gen_range(1..16) {
                    match rng.gen_range(0..10) {
                        0 if live.len() > n_objects as usize / 2 => {
                            let at = rng.gen_range(0..live.len());
                            let id = live.swap_remove(at);
                            if seen.insert(id) {
                                object_events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                            } else {
                                live.push(id);
                            }
                        }
                        1 => {
                            live.push(next_oid);
                            seen.insert(next_oid);
                            object_events.push(ObjectEvent::Appear {
                                id: ObjectId(next_oid),
                                pos: Point::new(rng.gen(), rng.gen()),
                            });
                            next_oid += 1;
                        }
                        _ => {
                            let id = live[rng.gen_range(0..live.len())];
                            if seen.insert(id) {
                                object_events.push(ObjectEvent::Move {
                                    id: ObjectId(id),
                                    to: Point::new(rng.gen(), rng.gen()),
                                });
                            }
                        }
                    }
                }
            }

            let mut query_events: Vec<SpecEvent<AnyQuerySpec>> = Vec::new();
            if cycle == 1 {
                query_events.extend(installs.iter().cloned());
            }
            if cycle > 1 && rng.gen_bool(0.4) {
                let s = rng.gen_range(0..KNN_IDS.len());
                query_events.push(SpecEvent::Update {
                    id: KNN_IDS[s],
                    spec: AnyQuerySpec::Knn(PointQuery(strip_anchor(&mut rng, s))),
                });
            }
            if cycle > 1 && rng.gen_bool(0.3) {
                query_events.push(SpecEvent::Update {
                    id: RANGE_IDS[0],
                    spec: AnyQuerySpec::Range(RangeQuery::circle(
                        strip_anchor(&mut rng, 1),
                        0.05 + rng.gen::<f64>() * 0.06,
                    )),
                });
            }
            if use_transient && cycle == install_at {
                query_events.push(SpecEvent::Install {
                    id: TRANSIENT_ID,
                    spec: AnyQuerySpec::Knn(PointQuery(strip_anchor(&mut rng, 2))),
                    k: 2,
                });
            }
            if use_transient && cycle == terminate_at {
                query_events.push(SpecEvent::Terminate { id: TRANSIENT_ID });
            }

            CycleWork {
                object_events,
                query_events,
            }
        })
        .collect()
}

/// Lane A: the single-node reference run, with the out-of-band extra
/// install applied right after cycle `extra_at`. Returns the final
/// server and every cycle's delta batch.
fn reference_run(
    work: &[CycleWork],
    extra_at: usize,
    extra: &[SpecEvent<AnyQuerySpec>],
    grid_dim: u32,
    index: IndexKind,
) -> (CpmServer, Vec<CycleDeltas>) {
    let mut server = CpmServerBuilder::new(grid_dim)
        .shards(1)
        .deltas(true)
        .index(index)
        .try_build()
        .expect("valid reference configuration");
    let mut outputs = Vec::with_capacity(work.len());
    for (t, w) in work.iter().enumerate() {
        let mut out = CycleDeltas::default();
        server
            .process_cycle_with_deltas_into(&w.object_events, &w.query_events, &mut out)
            .expect("validated workload");
        outputs.push(out);
        if t == extra_at {
            for ev in extra {
                match ev {
                    SpecEvent::Install { id, spec, k } => {
                        let _ = server
                            .install_spec(*id, spec.clone(), *k)
                            .expect("valid install");
                    }
                    _ => unreachable!("the extra batch only installs"),
                }
            }
        }
    }
    (server, outputs)
}

/// Lane B: drive a connected coordinator through the workload, asserting
/// each merged batch equals the reference bit-for-bit and folding the
/// stream through a [`DeltaFanout`]. `extra` is the out-of-band install
/// batch and the cycle it lands after; `restart` (if any) fires before
/// the given cycle and must hot-swap one worker.
#[allow(clippy::type_complexity)]
fn drive_cluster<T: Transport>(
    mut coord: ClusterCoordinator<T>,
    work: &[CycleWork],
    extra: (usize, &[SpecEvent<AnyQuerySpec>]),
    reference: &[CycleDeltas],
    final_server: &CpmServer,
    mut restart: Option<(
        usize,
        Box<dyn FnMut(&mut ClusterCoordinator<T>) -> Result<WorkerHandle, ClusterError>>,
    )>,
    label: &str,
) -> Vec<WorkerHandle> {
    let (extra_at, extra) = extra;
    let mut extra_handles = Vec::new();
    let mut fanout = DeltaFanout::new();
    let tracked = [
        KNN_IDS[0],
        KNN_IDS[1],
        KNN_IDS[2],
        KNN_IDS[3],
        RANGE_IDS[0],
        RANGE_IDS[1],
        ANN_ID,
        CON_ID,
        TRANSIENT_ID,
    ];
    for id in tracked {
        fanout.subscribe(id);
    }
    for (t, w) in work.iter().enumerate() {
        if let Some((at, spawn)) = restart.as_mut() {
            if *at == t {
                let handle = spawn(&mut coord)
                    .unwrap_or_else(|e| panic!("{label}: worker restart failed: {e}"));
                extra_handles.push(handle);
            }
        }
        let merged = coord
            .process_cycle(&w.object_events, &w.query_events)
            .unwrap_or_else(|e| panic!("{label}: cycle {t} refused: {e}"));
        assert_eq!(
            merged, reference[t],
            "{label}: merged cycle {t} diverged from the single node"
        );
        fanout.publish(&merged);
        if t == extra_at {
            coord
                .install(extra)
                .unwrap_or_else(|e| panic!("{label}: out-of-band install refused: {e}"));
        }
    }
    assert_eq!(
        coord.epoch(),
        final_server.epoch(),
        "{label}: final epochs diverged"
    );
    // The fan-out's replicas — pure folds of the merged delta stream —
    // must reproduce the single node's live results exactly.
    for id in tracked {
        let (_, replayed) = fanout.resync(id).expect("subscribed");
        match final_server.result(id) {
            Some(want) => assert_eq!(
                replayed.as_slice(),
                want,
                "{label}: replicated result of {id} diverged"
            ),
            // Terminated queries keep their last replicated state; the
            // single node simply no longer tracks them.
            None => assert_eq!(id, TRANSIENT_ID, "{label}: {id} vanished from lane A"),
        }
    }
    coord
        .shutdown()
        .unwrap_or_else(|e| panic!("{label}: shutdown failed: {e}"));
    extra_handles
}

fn join_workers(handles: Vec<WorkerHandle>, label: &str) {
    for h in handles {
        h.join()
            .expect("worker thread must not panic")
            .unwrap_or_else(|e| panic!("{label}: worker exited with {e}"));
    }
}

/// Prove single-node equivalence over in-process clusters: for every
/// `seed` × `worker_counts` entry × index backend, the merged delta
/// stream, changed lists and replicated final results must be
/// bit-identical to lane A's, across a mid-run snapshot-transfer restart
/// of one worker. `grid_dim` must be a power of two ≥ 8 (the quadtree
/// lane needs one) and worker counts must divide into at most 4 strips.
pub fn verify_cluster(
    n_objects: u32,
    cycles: usize,
    grid_dim: u32,
    seeds: &[u64],
    worker_counts: &[u32],
) {
    assert!(cycles >= 5, "the harness protocol needs at least 5 cycles");
    let overlap = (grid_dim / 3).max(1);
    let extra_at = cycles / 2;
    for &seed in seeds {
        let installs = build_installs(seed);
        let extra = extra_install(seed);
        let work = build_workload(seed, n_objects, cycles, &installs);
        for index in [IndexKind::Uniform, IndexKind::quadtree()] {
            let (final_server, reference) = reference_run(&work, extra_at, &extra, grid_dim, index);
            for &workers in worker_counts {
                let label = format!(
                    "seed {seed}/{workers} workers/{} index",
                    match index {
                        IndexKind::Uniform => "uniform",
                        IndexKind::Quadtree { .. } => "quadtree",
                    }
                );
                let config = ClusterConfig::new(grid_dim, workers)
                    .overlap(overlap)
                    .index(index);
                let (coord, handles) = ClusterCoordinator::spawn_in_process(config)
                    .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
                let restart_worker = (seed % u64::from(workers)) as usize;
                type Restart = Box<
                    dyn FnMut(
                        &mut ClusterCoordinator<ChannelTransport>,
                    ) -> Result<WorkerHandle, ClusterError>,
                >;
                let spawn: Restart = Box::new(move |c| c.restart_worker_in_process(restart_worker));
                let restart = Some((cycles / 2, spawn));
                let spawned = drive_cluster(
                    coord,
                    &work,
                    (extra_at, &extra),
                    &reference,
                    &final_server,
                    restart,
                    &label,
                );
                join_workers(handles, &label);
                join_workers(spawned, &label);
            }
        }
    }
}

/// Lane B, pipelined: drive the coordinator through
/// [`ClusterCoordinator::submit_cycle`] so routing for epoch *e+1*
/// overlaps the merge of epoch *e*, popping merged batches as the
/// pipeline yields them (lagged by one cycle) and flushing the tail at
/// the end. Every popped batch must equal the reference bit-for-bit in
/// order — the pipeline may only change *when* a batch surfaces, never
/// its bytes. Restart and the out-of-band install both drain the
/// pipeline internally, so their externally visible placement matches
/// the serial lane exactly.
#[allow(clippy::type_complexity)]
fn drive_cluster_pipelined<T: Transport>(
    mut coord: ClusterCoordinator<T>,
    work: &[CycleWork],
    extra: (usize, &[SpecEvent<AnyQuerySpec>]),
    reference: &[CycleDeltas],
    final_server: &CpmServer,
    mut restart: Option<(
        usize,
        Box<dyn FnMut(&mut ClusterCoordinator<T>) -> Result<WorkerHandle, ClusterError>>,
    )>,
    label: &str,
) -> Vec<WorkerHandle> {
    let (extra_at, extra) = extra;
    let mut extra_handles = Vec::new();
    let mut fanout = DeltaFanout::new();
    let tracked = [
        KNN_IDS[0],
        KNN_IDS[1],
        KNN_IDS[2],
        KNN_IDS[3],
        RANGE_IDS[0],
        RANGE_IDS[1],
        ANN_ID,
        CON_ID,
        TRANSIENT_ID,
    ];
    for id in tracked {
        fanout.subscribe(id);
    }
    let mut expect = 0usize;
    for (t, w) in work.iter().enumerate() {
        if let Some((at, spawn)) = restart.as_mut() {
            if *at == t {
                let handle = spawn(&mut coord)
                    .unwrap_or_else(|e| panic!("{label}: worker restart failed: {e}"));
                assert_eq!(
                    coord.in_flight(),
                    0,
                    "{label}: restart must drain the pipeline before snapshot transfer"
                );
                extra_handles.push(handle);
            }
        }
        let popped = coord
            .submit_cycle(&w.object_events, &w.query_events)
            .unwrap_or_else(|e| panic!("{label}: cycle {t} refused: {e}"));
        if let Some(merged) = popped {
            assert_eq!(
                merged, reference[expect],
                "{label}: pipelined merged cycle {expect} diverged from the single node"
            );
            fanout.publish(&merged);
            expect += 1;
        }
        assert!(
            coord.in_flight() <= 1,
            "{label}: pipeline depth exceeded one in-flight epoch"
        );
        if t == extra_at {
            coord
                .install(extra)
                .unwrap_or_else(|e| panic!("{label}: out-of-band install refused: {e}"));
        }
    }
    for merged in coord
        .flush()
        .unwrap_or_else(|e| panic!("{label}: final flush refused: {e}"))
    {
        assert_eq!(
            merged, reference[expect],
            "{label}: flushed merged cycle {expect} diverged from the single node"
        );
        fanout.publish(&merged);
        expect += 1;
    }
    assert_eq!(
        expect,
        work.len(),
        "{label}: the pipeline dropped merged cycles"
    );
    assert_eq!(
        coord.epoch(),
        final_server.epoch(),
        "{label}: final epochs diverged"
    );
    for id in tracked {
        let (_, replayed) = fanout.resync(id).expect("subscribed");
        match final_server.result(id) {
            Some(want) => assert_eq!(
                replayed.as_slice(),
                want,
                "{label}: replicated result of {id} diverged"
            ),
            None => assert_eq!(id, TRANSIENT_ID, "{label}: {id} vanished from lane A"),
        }
    }
    coord
        .shutdown()
        .unwrap_or_else(|e| panic!("{label}: shutdown failed: {e}"));
    extra_handles
}

/// [`verify_cluster`] with the coordinator in pipelined mode: same
/// seeds, worker counts, index backends and mid-run restart, but lane B
/// routes epoch *e+1* while *e* is still in flight. The acceptance bar
/// is unchanged — every merged batch and every replicated result must be
/// bit-identical to the single node, and the restart must drain the
/// pipeline before its snapshot transfer.
pub fn verify_cluster_pipelined(
    n_objects: u32,
    cycles: usize,
    grid_dim: u32,
    seeds: &[u64],
    worker_counts: &[u32],
) {
    assert!(cycles >= 5, "the harness protocol needs at least 5 cycles");
    let overlap = (grid_dim / 3).max(1);
    let extra_at = cycles / 2;
    for &seed in seeds {
        let installs = build_installs(seed);
        let extra = extra_install(seed);
        let work = build_workload(seed, n_objects, cycles, &installs);
        for index in [IndexKind::Uniform, IndexKind::quadtree()] {
            let (final_server, reference) = reference_run(&work, extra_at, &extra, grid_dim, index);
            for &workers in worker_counts {
                let label = format!(
                    "pipelined seed {seed}/{workers} workers/{} index",
                    match index {
                        IndexKind::Uniform => "uniform",
                        IndexKind::Quadtree { .. } => "quadtree",
                    }
                );
                let config = ClusterConfig::new(grid_dim, workers)
                    .overlap(overlap)
                    .index(index)
                    .pipelined(true);
                let (coord, handles) = ClusterCoordinator::spawn_in_process(config)
                    .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
                let restart_worker = (seed % u64::from(workers)) as usize;
                type Restart = Box<
                    dyn FnMut(
                        &mut ClusterCoordinator<ChannelTransport>,
                    ) -> Result<WorkerHandle, ClusterError>,
                >;
                let spawn: Restart = Box::new(move |c| c.restart_worker_in_process(restart_worker));
                let restart = Some((cycles / 2, spawn));
                let spawned = drive_cluster_pipelined(
                    coord,
                    &work,
                    (extra_at, &extra),
                    &reference,
                    &final_server,
                    restart,
                    &label,
                );
                join_workers(handles, &label);
                join_workers(spawned, &label);
            }
        }
    }
}

/// The pipelined protocol over TCP loopback transports, including a
/// mid-run restart through
/// [`ClusterCoordinator::restart_worker_tcp_loopback`] — the restart
/// drains the pipeline, snapshots over TCP, and resumes pipelined
/// operation without losing a merged cycle.
pub fn verify_cluster_tcp_pipelined(
    n_objects: u32,
    cycles: usize,
    grid_dim: u32,
    seed: u64,
    workers: u32,
) {
    assert!(cycles >= 5, "the harness protocol needs at least 5 cycles");
    let installs = build_installs(seed);
    let extra = extra_install(seed);
    let extra_at = cycles / 2;
    let work = build_workload(seed, n_objects, cycles, &installs);
    let (final_server, reference) =
        reference_run(&work, extra_at, &extra, grid_dim, IndexKind::Uniform);
    let label = format!("tcp pipelined seed {seed}/{workers} workers");
    let config = ClusterConfig::new(grid_dim, workers)
        .overlap((grid_dim / 3).max(1))
        .pipelined(true);
    let (coord, handles) = ClusterCoordinator::spawn_tcp_loopback(config)
        .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
    let restart_worker = (seed % u64::from(workers)) as usize;
    type Restart = Box<
        dyn FnMut(
            &mut ClusterCoordinator<cpm_cluster::TcpTransport>,
        ) -> Result<WorkerHandle, ClusterError>,
    >;
    let spawn: Restart = Box::new(move |c| c.restart_worker_tcp_loopback(restart_worker));
    let restart = Some((cycles / 2, spawn));
    let spawned = drive_cluster_pipelined(
        coord,
        &work,
        (extra_at, &extra),
        &reference,
        &final_server,
        restart,
        &label,
    );
    join_workers(handles, &label);
    join_workers(spawned, &label);
}

/// The same two-lane protocol over TCP loopback transports (uniform
/// index, no restart — the transport is what's under test here; restart
/// coverage lives in [`verify_cluster`]).
pub fn verify_cluster_tcp(n_objects: u32, cycles: usize, grid_dim: u32, seed: u64, workers: u32) {
    assert!(cycles >= 5, "the harness protocol needs at least 5 cycles");
    let installs = build_installs(seed);
    let extra = extra_install(seed);
    let extra_at = cycles / 2;
    let work = build_workload(seed, n_objects, cycles, &installs);
    let (final_server, reference) =
        reference_run(&work, extra_at, &extra, grid_dim, IndexKind::Uniform);
    let label = format!("tcp seed {seed}/{workers} workers");
    let config = ClusterConfig::new(grid_dim, workers).overlap((grid_dim / 3).max(1));
    let (coord, handles) = ClusterCoordinator::spawn_tcp_loopback(config)
        .unwrap_or_else(|e| panic!("{label}: spawn failed: {e}"));
    let spawned = drive_cluster(
        coord,
        &work,
        (extra_at, &extra),
        &reference,
        &final_server,
        None,
        &label,
    );
    join_workers(handles, &label);
    join_workers(spawned, &label);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let installs = build_installs(5);
        let a = build_workload(5, 40, 8, &installs);
        let b = build_workload(5, 40, 8, &installs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.object_events, y.object_events);
            assert_eq!(x.query_events.len(), y.query_events.len());
        }
        assert!(a[1].query_events.len() >= installs.len());
        assert!(a[0].query_events.is_empty());
    }

    #[test]
    fn smoke_one_seed_two_workers() {
        verify_cluster(80, 6, 16, &[3], &[2]);
    }

    #[test]
    fn smoke_pipelined_one_seed_two_workers() {
        verify_cluster_pipelined(80, 6, 16, &[3], &[2]);
    }
}
