//! Experiment parameters (Table 6.1) and scaling.

use cpm_gen::{SpeedClass, WorkloadConfig};

/// Which workload model drives a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Brinkhoff-style network movement (the paper's setup; see
    /// DESIGN.md §3 for the road-map substitution).
    Network {
        /// Street-grid resolution per axis (`cols = rows`).
        grid_streets: u32,
    },
    /// Uniform random displacement (the Section 4.1 analysis model).
    Uniform,
    /// Gaussian-hotspot skew with drifting centers (the regime the paper
    /// flags for hierarchical grids).
    Skewed {
        /// Number of hotspots.
        hotspots: usize,
    },
    /// A single hotspot whose center moves every tick while the
    /// population breathes between `n_objects` and `n_objects ×
    /// peak_factor` (triangle wave over the run) — the adversary stream
    /// for online re-gridding ([`cpm_gen::drift`]).
    Drift {
        /// Peak population as a multiple of `n_objects`.
        peak_factor: f64,
    },
}

impl Default for WorkloadKind {
    fn default() -> Self {
        WorkloadKind::Network { grid_streets: 32 }
    }
}

/// One experiment point: Table 6.1 parameters plus harness settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Object population `N` (paper default 100K).
    pub n_objects: usize,
    /// Number of queries `n` (paper default 5K).
    pub n_queries: usize,
    /// Neighbors per query `k` (paper default 16).
    pub k: usize,
    /// Object speed (paper default medium).
    pub object_speed: SpeedClass,
    /// Query speed (paper default medium).
    pub query_speed: SpeedClass,
    /// Object agility `f_obj` (paper default 50%).
    pub f_obj: f64,
    /// Query agility `f_qry` (paper default 30%).
    pub f_qry: f64,
    /// Grid granularity per axis (paper default 128).
    pub grid_dim: u32,
    /// Simulation length in timestamps (paper: 100).
    pub timestamps: usize,
    /// Workload model.
    pub workload: WorkloadKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimParams {
    /// The paper's defaults (Table 6.1), full scale.
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            n_queries: 5_000,
            k: 16,
            object_speed: SpeedClass::Medium,
            query_speed: SpeedClass::Medium,
            f_obj: 0.5,
            f_qry: 0.3,
            grid_dim: 128,
            timestamps: 100,
            workload: WorkloadKind::default(),
            seed: 2005,
        }
    }
}

impl SimParams {
    /// The paper's default parameters at a reduced scale factor
    /// (`scale ∈ (0, 1]` multiplies `N`, `n` and the timestamp count), so
    /// sweeps keep the paper's *shape* at laptop-friendly runtimes.
    pub fn scaled(scale: f64) -> Self {
        let base = Self::default();
        assert!(scale > 0.0 && scale <= 1.0, "scale out of range");
        Self {
            n_objects: ((base.n_objects as f64 * scale) as usize).max(100),
            n_queries: ((base.n_queries as f64 * scale) as usize).max(10),
            timestamps: ((base.timestamps as f64 * scale.max(0.2)) as usize).max(10),
            ..base
        }
    }

    /// Convert into the generator configuration.
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            n_objects: self.n_objects,
            n_queries: self.n_queries,
            k: self.k,
            object_speed: self.object_speed,
            query_speed: self.query_speed,
            f_obj: self.f_obj,
            f_qry: self.f_qry,
            seed: self.seed,
        }
    }

    /// Cell side `δ = 1/grid_dim`.
    pub fn delta(&self) -> f64 {
        1.0 / self.grid_dim as f64
    }

    /// The matching analytical model of Section 4.1.
    pub fn cost_model(&self) -> cpm_core::CostModel {
        cpm_core::CostModel {
            n_objects: self.n_objects,
            n_queries: self.n_queries,
            k: self.k,
            delta: self.delta(),
            f_obj: self.f_obj,
            f_qry: self.f_qry,
            skew: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_6_1() {
        let p = SimParams::default();
        assert_eq!(p.n_objects, 100_000);
        assert_eq!(p.n_queries, 5_000);
        assert_eq!(p.k, 16);
        assert_eq!(p.object_speed, SpeedClass::Medium);
        assert_eq!(p.f_obj, 0.5);
        assert_eq!(p.f_qry, 0.3);
        assert_eq!(p.grid_dim, 128);
        assert_eq!(p.timestamps, 100);
    }

    #[test]
    fn scaling_preserves_ratios_and_floors() {
        let p = SimParams::scaled(0.1);
        assert_eq!(p.n_objects, 10_000);
        assert_eq!(p.n_queries, 500);
        assert!(p.timestamps >= 10);
        let tiny = SimParams::scaled(0.0001);
        assert!(tiny.n_objects >= 100);
        assert!(tiny.n_queries >= 10);
    }
}
