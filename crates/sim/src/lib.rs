//! Simulation driver, ground-truth oracle, metrics collection and
//! experiment parameterization for the CPM reproduction suite.
//!
//! * [`algo`] — the [`KnnMonitorAlgo`] trait unifying CPM, YPK-CNN,
//!   SEA-CNN and the oracle behind one driving surface.
//! * [`oracle`] — brute-force ground truth.
//! * [`params`] — Table 6.1 parameters with paper defaults and scaling.
//! * [`stream`] — pre-generated update streams so every contender replays
//!   the identical workload.
//! * [`recovery`] — the crash-recovery chaos harness
//!   ([`verify_recovery`]): seeded crash/corruption schedules over the
//!   durable server, asserting bit-identical recovery.
//! * [`cluster`] — the distributed conformance harness
//!   ([`verify_cluster`]): coordinator-routed multi-worker runs asserting
//!   merged delta streams bit-identical to a single node.
//! * [`runner`] — timed replay, per-run reports, and the
//!   oracle-verification harnesses used by the integration tests
//!   (contender agreement, sharded determinism, delta-stream replay,
//!   unified-server conformance).
//! * [`viz`] — ASCII rendering of grids and query book-keeping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod cluster;
pub mod oracle;
pub mod params;
pub mod recovery;
pub mod runner;
pub mod stream;
pub mod viz;

pub use algo::{AlgoKind, KnnMonitorAlgo};
pub use cluster::{
    verify_cluster, verify_cluster_pipelined, verify_cluster_tcp, verify_cluster_tcp_pipelined,
};
pub use oracle::{brute_force_range, OracleMonitor};
pub use params::{SimParams, WorkloadKind};
pub use recovery::verify_recovery;
pub use runner::{
    run, run_boxed, run_contenders, run_sharded, verify_against_oracle, verify_delta_replay,
    verify_index, verify_regrid, verify_sharded_determinism, verify_unified_server,
    verify_unified_server_with, RunReport,
};
pub use stream::SimulationInput;
