//! Pre-generated simulation inputs.
//!
//! To compare algorithms fairly, every contender must see the *identical*
//! update stream. [`SimulationInput::generate`] materializes the initial
//! placements and the per-timestamp event batches once; the runner then
//! replays them into each monitor. Workload generation cost (shortest
//! paths etc.) is thus paid once per experiment point and never pollutes
//! the timed sections.

use cpm_gen::{
    DriftConfig, DriftingHotspotWorkload, NetworkWorkload, RoadNetwork, SkewConfig, SkewedWorkload,
    TickEvents, UniformWorkload,
};
use cpm_geom::{ObjectId, Point, QueryId};

use crate::params::{SimParams, WorkloadKind};

/// A fully materialized simulation input.
#[derive(Debug, Clone)]
pub struct SimulationInput {
    /// Parameters this input was generated from.
    pub params: SimParams,
    /// Initial object placements.
    pub initial_objects: Vec<(ObjectId, Point)>,
    /// Initial queries `(id, position, k)`.
    pub initial_queries: Vec<(QueryId, Point, usize)>,
    /// One event batch per timestamp.
    pub ticks: Vec<TickEvents>,
}

impl SimulationInput {
    /// Generate the input stream for `params` (deterministic in
    /// `params.seed`).
    pub fn generate(params: &SimParams) -> Self {
        match params.workload {
            WorkloadKind::Network { grid_streets } => {
                let net = RoadNetwork::grid_city(
                    grid_streets,
                    grid_streets,
                    0.25,
                    0.15,
                    (grid_streets as usize) / 2,
                    params.seed ^ 0x006E_6574_776F_726B,
                );
                let mut w = NetworkWorkload::new(net, params.workload_config());
                let initial_objects = w.initial_objects().collect();
                let initial_queries = w.initial_queries().collect();
                let ticks = (0..params.timestamps).map(|_| w.tick()).collect();
                Self {
                    params: *params,
                    initial_objects,
                    initial_queries,
                    ticks,
                }
            }
            WorkloadKind::Uniform => {
                let mut w = UniformWorkload::new(params.workload_config());
                let initial_objects = w.initial_objects().collect();
                let initial_queries = w.initial_queries().collect();
                let ticks = (0..params.timestamps).map(|_| w.tick()).collect();
                Self {
                    params: *params,
                    initial_objects,
                    initial_queries,
                    ticks,
                }
            }
            WorkloadKind::Skewed { hotspots } => {
                let skew = SkewConfig {
                    hotspots,
                    ..SkewConfig::default()
                };
                let mut w = SkewedWorkload::new(params.workload_config(), skew);
                let initial_objects = w.initial_objects().collect();
                let initial_queries = w.initial_queries().collect();
                let ticks = (0..params.timestamps).map(|_| w.tick()).collect();
                Self {
                    params: *params,
                    initial_objects,
                    initial_queries,
                    ticks,
                }
            }
            WorkloadKind::Drift { peak_factor } => {
                let drift = DriftConfig {
                    peak_factor,
                    // One full breath (base → peak → base) per run.
                    ramp_ticks: (params.timestamps / 2).max(1),
                    ..DriftConfig::default()
                };
                let mut w = DriftingHotspotWorkload::new(params.workload_config(), drift);
                let initial_objects = w.initial_objects().collect();
                let initial_queries = w.initial_queries().collect();
                let ticks = (0..params.timestamps).map(|_| w.tick()).collect();
                Self {
                    params: *params,
                    initial_objects,
                    initial_queries,
                    ticks,
                }
            }
        }
    }

    /// Total number of object events across all ticks.
    pub fn total_object_events(&self) -> usize {
        self.ticks.iter().map(|t| t.object_events.len()).sum()
    }

    /// Total number of query events across all ticks.
    pub fn total_query_events(&self) -> usize {
        self.ticks.iter().map(|t| t.query_events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(workload: WorkloadKind) -> SimParams {
        SimParams {
            n_objects: 300,
            n_queries: 12,
            k: 4,
            timestamps: 15,
            grid_dim: 32,
            workload,
            ..SimParams::default()
        }
    }

    #[test]
    fn network_input_is_deterministic_and_sized() {
        let p = tiny(WorkloadKind::Network { grid_streets: 8 });
        let a = SimulationInput::generate(&p);
        let b = SimulationInput::generate(&p);
        assert_eq!(a.initial_objects, b.initial_objects);
        assert_eq!(a.ticks.len(), 15);
        assert_eq!(a.total_object_events(), b.total_object_events());
        assert_eq!(a.initial_queries.len(), 12);
        // Expected update volume ≈ N · f_obj · T (plus respawn pairs).
        let expect = 300.0 * 0.5 * 15.0;
        let got = a.total_object_events() as f64;
        assert!(got > 0.6 * expect && got < 1.8 * expect, "volume {got}");
    }

    #[test]
    fn uniform_input_has_exact_move_events_only() {
        let p = tiny(WorkloadKind::Uniform);
        let input = SimulationInput::generate(&p);
        for tick in &input.ticks {
            for ev in &tick.object_events {
                assert!(matches!(ev, cpm_grid::ObjectEvent::Move { .. }));
            }
        }
    }
}
