//! ASCII rendering of grids and query book-keeping state.
//!
//! Debugging a spatial monitor usually means *looking* at it: where the
//! objects cluster, which cells a query registered, how far the visit list
//! reaches past the influence circle. These renderers print exactly the
//! diagrams the paper draws (Figures 3.2, 3.5, 4.1) from live state.

use cpm_core::CpmKnnMonitor;
use cpm_geom::QueryId;
use cpm_grid::{CellCoord, Grid};

/// Density glyphs from empty to crowded.
const SHADES: &[u8] = b" .:-=+*#%@";

/// Render an object-density map of the grid, downsampled to at most
/// `max_side × max_side` character cells (top row = north).
pub fn render_density(grid: &Grid, max_side: u32) -> String {
    let dim = grid.dim();
    let side = dim.min(max_side.max(1));
    let block = dim.div_ceil(side);
    let side = dim.div_ceil(block);
    let mut counts = vec![0usize; (side * side) as usize];
    for cell in grid.occupied_cells() {
        let c = (cell.col / block).min(side - 1);
        let r = (cell.row / block).min(side - 1);
        counts[(r * side + c) as usize] += grid.cell_len(cell);
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::with_capacity(((side + 3) * side) as usize);
    for r in (0..side).rev() {
        for c in 0..side {
            let v = counts[(r * side + c) as usize];
            let idx = if v == 0 {
                0
            } else {
                1 + (v * (SHADES.len() - 2)) / max
            };
            out.push(SHADES[idx.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

/// Render one query's book-keeping over the grid (top row = north):
///
/// * `Q` — the query cell;
/// * `#` — cells of the influence region (registered in influence lists);
/// * `+` — cells in the visit list beyond the influence region;
/// * `h` — cells left in the search heap;
/// * digits — object count of other cells (9 = nine or more);
/// * `·` — empty cell.
///
/// Intended for small grids (≤ 64²); returns `None` if the query is not
/// installed.
pub fn render_query(monitor: &CpmKnnMonitor, id: QueryId) -> Option<String> {
    let st = monitor.query_state(id)?;
    let grid = monitor.grid();
    let dim = grid.dim();
    let mut glyphs = vec![b'\0'; (dim as usize) * (dim as usize)];
    let at = |c: CellCoord| (c.row as usize) * dim as usize + c.col as usize;

    for (i, &(cell, _)) in st.visit_list.iter().enumerate() {
        glyphs[at(cell)] = if i < st.influence_len { b'#' } else { b'+' };
    }
    glyphs[at(grid.cell_of(st.q))] = b'Q';

    let mut out = String::with_capacity(((dim + 1) * dim) as usize);
    for row in (0..dim).rev() {
        for col in 0..dim {
            let cell = CellCoord::new(col, row);
            let g = glyphs[at(cell)];
            if g != b'\0' {
                out.push(g as char);
            } else {
                let n = grid.cell_len(cell);
                out.push(match n {
                    0 => '\u{b7}', // ·
                    1..=8 => (b'0' + n as u8) as char,
                    _ => '9',
                });
            }
        }
        out.push('\n');
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::{ObjectId, Point};

    fn monitor() -> CpmKnnMonitor {
        let mut m = CpmKnnMonitor::new(8);
        m.populate([
            (ObjectId(0), Point::new(0.32, 0.55)),
            (ObjectId(1), Point::new(0.51, 0.50)),
            (ObjectId(2), Point::new(0.92, 0.93)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.55), 1);
        m
    }

    #[test]
    fn query_rendering_marks_regions() {
        let m = monitor();
        let s = render_query(&m, QueryId(0)).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
        assert_eq!(s.matches('Q').count(), 1);
        // Influence glyphs match the registered prefix minus the query
        // cell (which renders as Q even when registered).
        let st = m.query_state(QueryId(0)).unwrap();
        let hashes = s.matches('#').count();
        assert!(
            hashes + 1 >= st.influence_len && hashes <= st.influence_len,
            "{hashes} hashes vs influence_len {}",
            st.influence_len
        );
        assert!(render_query(&m, QueryId(9)).is_none());
    }

    #[test]
    fn density_rendering_shapes() {
        let m = monitor();
        let s = render_density(m.grid(), 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8);
        // Crowded-most block must use the top shade; empty blocks blank.
        assert!(s.contains('@'));
        assert!(s.contains(' '));
        // Downsampling to 4 halves the sides.
        let small = render_density(m.grid(), 4);
        assert_eq!(small.lines().count(), 4);
    }

    #[test]
    fn density_handles_empty_grid() {
        let g = cpm_grid::GridBuilder::new(16).build_uniform();
        let s = render_density(&g, 8);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }
}
