//! Deterministic crash-recovery chaos harness for the durable server.
//!
//! [`verify_recovery`] replays one seeded mixed-kind workload into two
//! lanes per shard count:
//!
//! * **lane A** never crashes: a [`DurableCpmServer`] processes every
//!   cycle, recording the per-cycle [`CycleDeltas`] (changed lists plus
//!   delta streams) and, after each cycle, the snapshot/journal bytes
//!   that would be on stable storage at that instant;
//! * **lane B** crashes at the cycle a seeded [`FaultPlan`] picks, its
//!   surviving artifacts are damaged per the plan's corruption class
//!   (torn tail, duplicated/reordered frames, flipped bits in journal or
//!   snapshot), and the server is recovered from what's left.
//!
//! The harness then redelivers the cycles the recovered epoch says are
//! missing — the at-least-once window the write-after-commit journal
//! design leaves to the upstream — and asserts every redelivered cycle's
//! output is **bit-identical** to lane A's recording, then that the final
//! results, reverse-NN sets and epoch agree exactly. Corrupted artifacts
//! must fail with *typed* errors, never panics.

use cpm_core::{
    AggregateFn, AnnQuery, AnyQuerySpec, ConstrainedQuery, CpmServerBuilder, CycleDeltas,
    DurableCpmServer, PointQuery, RangeQuery, RecoveryError, SpecEvent,
};
use cpm_gen::{Corruption, FaultPlan};
use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ids of the persistent queries the workload tracks (mixed kinds).
const KNN_IDS: [QueryId; 2] = [QueryId(0), QueryId(1)];
const RANGE_IDS: [QueryId; 2] = [QueryId(10), QueryId(11)];
const ANN_ID: QueryId = QueryId(20);
const CON_ID: QueryId = QueryId(30);
const RNN_ID: QueryId = QueryId(40);
const TRANSIENT_ID: QueryId = QueryId(5);

/// One cycle's precomputed input: the event batches plus an optional
/// direct reverse-NN move issued immediately before the cycle.
#[derive(Debug, Clone)]
struct CycleWork {
    object_events: Vec<ObjectEvent>,
    query_events: Vec<SpecEvent<AnyQuerySpec>>,
    rnn_move: Option<Point>,
}

/// Build the whole run's workload up front, as plain data, so both lanes
/// (and any redelivery) apply byte-for-byte identical inputs.
fn build_workload(seed: u64, n_objects: u32, cycles: usize) -> Vec<CycleWork> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut live: Vec<u32> = (0..n_objects).collect();
    let mut next_oid = n_objects;
    let install_at = cycles / 3;
    let terminate_at = (2 * cycles) / 3;
    let use_transient = install_at < terminate_at;

    (0..cycles)
        .map(|cycle| {
            let mut object_events = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1..12) {
                match rng.gen_range(0..10) {
                    0 if live.len() > 8 => {
                        let at = rng.gen_range(0..live.len());
                        let id = live.swap_remove(at);
                        if seen.insert(id) {
                            object_events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                        } else {
                            live.push(id);
                        }
                    }
                    1 => {
                        live.push(next_oid);
                        seen.insert(next_oid);
                        object_events.push(ObjectEvent::Appear {
                            id: ObjectId(next_oid),
                            pos: Point::new(rng.gen(), rng.gen()),
                        });
                        next_oid += 1;
                    }
                    _ => {
                        let id = live[rng.gen_range(0..live.len())];
                        if seen.insert(id) {
                            object_events.push(ObjectEvent::Move {
                                id: ObjectId(id),
                                to: Point::new(rng.gen(), rng.gen()),
                            });
                        }
                    }
                }
            }

            let mut query_events: Vec<SpecEvent<AnyQuerySpec>> = Vec::new();
            if rng.gen_bool(0.4) {
                let qi = rng.gen_range(0..KNN_IDS.len());
                query_events.push(SpecEvent::Update {
                    id: KNN_IDS[qi],
                    spec: AnyQuerySpec::Knn(PointQuery(Point::new(rng.gen(), rng.gen()))),
                });
            }
            if rng.gen_bool(0.3) {
                let qi = rng.gen_range(0..RANGE_IDS.len());
                query_events.push(SpecEvent::Update {
                    id: RANGE_IDS[qi],
                    spec: AnyQuerySpec::Range(RangeQuery::circle(
                        Point::new(rng.gen(), rng.gen()),
                        0.1 + rng.gen::<f64>() * 0.2,
                    )),
                });
            }
            if use_transient && cycle == install_at {
                query_events.push(SpecEvent::Install {
                    id: TRANSIENT_ID,
                    spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.15, 0.85))),
                    k: 2,
                });
            }
            if use_transient && cycle == terminate_at {
                query_events.push(SpecEvent::Terminate { id: TRANSIENT_ID });
            }
            let rnn_move = rng.gen_bool(0.25).then(|| Point::new(rng.gen(), rng.gen()));

            CycleWork {
                object_events,
                query_events,
                rnn_move,
            }
        })
        .collect()
}

/// Build, populate and register the durable server both lanes start from.
fn fresh_durable(seed: u64, n_objects: u32, grid_dim: u32, shards: usize) -> DurableCpmServer {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x000B_1EC7);
    let mut server = CpmServerBuilder::new(grid_dim)
        .shards(shards)
        .deltas(true)
        .build();
    server.populate((0..n_objects).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
    let mut durable = DurableCpmServer::new(server, 3);
    let _ = durable
        .install_knn(KNN_IDS[0], Point::new(0.3, 0.4), 3)
        .expect("fresh id");
    let _ = durable
        .install_knn(KNN_IDS[1], Point::new(0.7, 0.6), 4)
        .expect("fresh id");
    let _ = durable
        .install_range(
            RANGE_IDS[0],
            RangeQuery::rect(Rect::new(Point::new(0.2, 0.1), Point::new(0.6, 0.5))),
        )
        .expect("fresh id");
    let _ = durable
        .install_range(RANGE_IDS[1], RangeQuery::circle(Point::new(0.6, 0.7), 0.22))
        .expect("fresh id");
    let _ = durable
        .install_ann(
            ANN_ID,
            AnnQuery::new(
                vec![
                    Point::new(0.25, 0.75),
                    Point::new(0.8, 0.3),
                    Point::new(0.5, 0.5),
                ],
                AggregateFn::Sum,
            ),
            2,
        )
        .expect("fresh id");
    let _ = durable
        .install_constrained(
            CON_ID,
            ConstrainedQuery::new(
                Point::new(0.45, 0.55),
                Rect::new(Point::new(0.3, 0.3), Point::new(0.9, 0.9)),
            ),
            3,
        )
        .expect("fresh id");
    let _ = durable
        .install_rnn(RNN_ID, Point::new(0.55, 0.45))
        .expect("fresh id");
    // Fold the registrations into the baseline snapshot so every journal
    // byte thereafter is cycle-or-move traffic — the redelivery protocol
    // below only knows how to re-send cycles.
    durable.checkpoint();
    durable
}

/// Apply cycle `t` of the workload: the optional direct reverse-NN move,
/// then the event batch. Returns the cycle's delta batch.
fn apply_cycle(durable: &mut DurableCpmServer, work: &CycleWork) -> CycleDeltas {
    if let Some(pos) = work.rnn_move {
        let h = durable.server().rnn_handle(RNN_ID).expect("installed");
        let _ = durable.update_rnn(h, pos).expect("valid move");
    }
    let mut out = CycleDeltas::default();
    durable
        .process_cycle_with_deltas_into(&work.object_events, &work.query_events, &mut out)
        .expect("validated workload");
    out
}

/// Split a byte stream of checksummed frames into whole frames (layout:
/// 12-byte header with the payload length at offset 8, then the payload,
/// then the CRC). Only used to *damage* journals, so it trusts lengths.
fn split_frames(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at + 16 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
        let end = at + 12 + len + 4;
        if end > bytes.len() {
            break;
        }
        frames.push(bytes[at..end].to_vec());
        at = end;
    }
    frames
}

/// Damage `journal`/`snapshot` per the plan. Returns the corrupted pair
/// plus whether the snapshot is expected to be undecodable.
fn corrupt(plan: &FaultPlan, snapshot: &[u8], journal: &[u8]) -> (Vec<u8>, Vec<u8>, bool) {
    let mut rng = StdRng::seed_from_u64(plan.site_seed);
    let mut snap = snapshot.to_vec();
    let mut jour = journal.to_vec();
    let mut snap_broken = false;
    match plan.corruption {
        Corruption::None => {}
        Corruption::TruncateTail => {
            if !jour.is_empty() {
                let cut = rng.gen_range(1..=jour.len());
                jour.truncate(jour.len() - cut);
            }
        }
        Corruption::DuplicateFrame => {
            let frames = split_frames(&jour);
            if !frames.is_empty() {
                let dup = frames[rng.gen_range(0..frames.len())].clone();
                jour.extend_from_slice(&dup);
            }
        }
        Corruption::ReorderFrames => {
            let mut frames = split_frames(&jour);
            if frames.len() >= 2 {
                let at = rng.gen_range(0..frames.len() - 1);
                frames.swap(at, at + 1);
                jour = frames.concat();
            }
        }
        Corruption::BitFlipJournal => {
            if !jour.is_empty() {
                let at = rng.gen_range(0..jour.len());
                jour[at] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        Corruption::BitFlipSnapshot => {
            let at = rng.gen_range(0..snap.len());
            snap[at] ^= 1 << rng.gen_range(0..8u32);
            snap_broken = true;
        }
    }
    (snap, jour, snap_broken)
}

/// Chaos-test crash recovery: for every `seed` × entry of
/// `shard_counts`, run the two-lane protocol described in the
/// [module docs](self) over `cycles` cycles of a mixed-kind workload on
/// `n_objects` objects. Panics on any divergence; corrupted artifacts
/// must surface as typed errors only.
pub fn verify_recovery(
    n_objects: u32,
    cycles: usize,
    grid_dim: u32,
    seeds: &[u64],
    shard_counts: &[usize],
) {
    for &seed in seeds {
        let work = build_workload(seed, n_objects, cycles);
        let plan = FaultPlan::from_seed(seed, cycles as u32);
        for &shards in shard_counts {
            // Lane A: the uninterrupted reference run.
            let mut lane_a = fresh_durable(seed, n_objects, grid_dim, shards);
            let mut outputs: Vec<CycleDeltas> = Vec::with_capacity(cycles);
            let mut artifacts: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(cycles);
            for w in &work {
                outputs.push(apply_cycle(&mut lane_a, w));
                artifacts.push((
                    lane_a.snapshot_bytes().to_vec(),
                    lane_a.journal_bytes().to_vec(),
                ));
            }

            // Lane B: crash after `plan.crash_cycle`, damage the
            // artifacts, recover from what survives.
            let crash = plan.crash_cycle as usize;
            let (snapshot, journal) = &artifacts[crash];
            let (bad_snap, bad_jour, snap_broken) = corrupt(&plan, snapshot, journal);

            let recovered = DurableCpmServer::recover(&bad_snap, &bad_jour, 3);
            let (mut lane_b, report) = if snap_broken {
                match recovered {
                    Err(RecoveryError::Wire(_)) => {}
                    other => panic!(
                        "seed {seed}/{shards} shards: flipped snapshot bit must fail \
                         with a typed wire error, got {other:?}"
                    ),
                }
                // The operator falls back to the intact snapshot copy
                // (the harness models mirrored snapshot storage).
                DurableCpmServer::recover(snapshot, &bad_jour, 3).expect("intact snapshot recovers")
            } else {
                recovered
                    .unwrap_or_else(|e| panic!("seed {seed}/{shards} shards: recovery failed: {e}"))
            };
            let resumed = report.epoch as usize;
            assert!(
                resumed <= crash + 1,
                "seed {seed}/{shards} shards: recovered epoch {resumed} is beyond \
                 the crash point {crash}"
            );
            if matches!(
                plan.corruption,
                Corruption::None | Corruption::DuplicateFrame | Corruption::ReorderFrames
            ) {
                assert_eq!(
                    resumed,
                    crash + 1,
                    "seed {seed}/{shards} shards: a lossless journal must recover \
                     to the crash point exactly"
                );
                assert!(report.tail_error.is_none());
            }
            lane_b.server().check_invariants();

            // Redeliver the missing cycles (at-least-once upstream) and
            // demand bit-identical outputs, including every delta.
            for (t, w) in work.iter().enumerate().skip(resumed) {
                let out = apply_cycle(&mut lane_b, w);
                assert_eq!(
                    out, outputs[t],
                    "seed {seed}/{shards} shards: redelivered cycle {t} diverged"
                );
            }

            // Final states agree bit-for-bit on everything observable.
            assert_eq!(lane_b.server().epoch(), lane_a.server().epoch());
            let mut tracked = vec![
                KNN_IDS[0],
                KNN_IDS[1],
                RANGE_IDS[0],
                RANGE_IDS[1],
                ANN_ID,
                CON_ID,
            ];
            if lane_a.server().kind_of(TRANSIENT_ID).is_some() {
                tracked.push(TRANSIENT_ID);
            }
            for &id in &tracked {
                assert_eq!(
                    lane_b.server().result(id).expect("tracked"),
                    lane_a.server().result(id).expect("tracked"),
                    "seed {seed}/{shards} shards: final result of {id} diverged"
                );
            }
            assert_eq!(
                lane_b.server().rnn_result(RNN_ID).expect("tracked"),
                lane_a.server().rnn_result(RNN_ID).expect("tracked"),
                "seed {seed}/{shards} shards: final reverse-NN set diverged"
            );
            lane_b.server().check_invariants();

            // A crash immediately after recovery must recover again: the
            // rebuilt journal carries the redelivered records.
            let (again, _) =
                DurableCpmServer::recover(lane_b.snapshot_bytes(), lane_b.journal_bytes(), 3)
                    .expect("post-recovery artifacts recover");
            assert_eq!(again.server().epoch(), lane_b.server().epoch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = build_workload(7, 40, 10);
        let b = build_workload(7, 40, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.object_events, y.object_events);
            assert_eq!(x.rnn_move, y.rnn_move);
        }
    }

    #[test]
    fn frame_splitting_reassembles_exactly() {
        let mut durable = fresh_durable(3, 30, 16, 1);
        // 7 cycles: not a multiple of the checkpoint interval (3), so
        // the run ends with journal traffic past the last checkpoint.
        let work = build_workload(3, 30, 7);
        for w in &work {
            let _ = apply_cycle(&mut durable, w);
        }
        let journal = durable.journal_bytes();
        let frames = split_frames(journal);
        assert!(!frames.is_empty());
        assert_eq!(frames.concat(), journal);
    }

    #[test]
    fn smoke_one_seed() {
        verify_recovery(60, 8, 16, &[11], &[2]);
    }
}
