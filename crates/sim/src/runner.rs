//! The experiment runner: replay a [`SimulationInput`] into a monitor and
//! collect per-run statistics (wall time of the processing cycles plus the
//! hardware-independent counters of [`cpm_grid::Metrics`]).

use std::time::{Duration, Instant};

use cpm_grid::Metrics;

use crate::algo::{AlgoKind, KnnMonitorAlgo};
use crate::stream::SimulationInput;

/// Aggregated statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm label.
    pub algo: &'static str,
    /// Wall time spent inside `process_cycle` (excludes workload
    /// generation and result verification).
    pub processing_time: Duration,
    /// Wall time spent installing the initial queries.
    pub install_time: Duration,
    /// Summed work counters over all cycles.
    pub metrics: Metrics,
    /// Number of processed timestamps.
    pub cycles: usize,
    /// Number of installed queries.
    pub n_queries: usize,
    /// Memory units at the end of the run (Section 4.1 accounting).
    pub space_units: usize,
    /// Total result changes reported.
    pub result_changes: usize,
    /// Per-cycle processing times, in the order processed (for latency
    /// percentiles — a production monitor cares about tail cycles, not
    /// just totals).
    pub cycle_times: Vec<Duration>,
}

impl RunReport {
    /// Cell accesses per query per timestamp — the y-axis of Figure 6.3b.
    pub fn cell_accesses_per_query_per_cycle(&self) -> f64 {
        self.metrics.cell_accesses as f64 / (self.n_queries.max(1) * self.cycles.max(1)) as f64
    }

    /// Processing milliseconds per timestamp (the "CPU time" y-axis of the
    /// paper's figures, for this host).
    pub fn millis_per_cycle(&self) -> f64 {
        self.processing_time.as_secs_f64() * 1e3 / self.cycles.max(1) as f64
    }

    /// Memory units converted to megabytes at 4 bytes per unit (the
    /// paper's footnote-6 space comparison).
    pub fn space_mbytes(&self) -> f64 {
        self.space_units as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Cycle-latency percentile in milliseconds (`q ∈ [0, 1]`; `q = 0.5`
    /// is the median, `q = 1.0` the slowest cycle).
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        if self.cycle_times.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<Duration> = self.cycle_times.clone();
        sorted.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
        sorted[idx].as_secs_f64() * 1e3
    }
}

/// Run `algo` over the pre-generated `input` and report statistics.
pub fn run(algo: AlgoKind, input: &SimulationInput) -> RunReport {
    let mut monitor = algo.build(input.params.grid_dim);
    run_boxed(&mut *monitor, input)
}

/// Run an already-built monitor over `input` (for custom configurations).
pub fn run_boxed(monitor: &mut dyn KnnMonitorAlgo, input: &SimulationInput) -> RunReport {
    monitor.populate(&input.initial_objects);

    let install_start = Instant::now();
    for &(qid, pos, k) in &input.initial_queries {
        monitor.install_query(qid, pos, k);
    }
    let install_time = install_start.elapsed();

    let mut processing_time = Duration::ZERO;
    let mut result_changes = 0usize;
    let mut cycle_times = Vec::with_capacity(input.ticks.len());
    for tick in &input.ticks {
        let start = Instant::now();
        let changed = monitor.process_cycle(&tick.object_events, &tick.query_events);
        let elapsed = start.elapsed();
        processing_time += elapsed;
        cycle_times.push(elapsed);
        result_changes += changed.len();
    }

    RunReport {
        algo: monitor.name(),
        processing_time,
        install_time,
        metrics: monitor.take_metrics(),
        cycles: input.ticks.len(),
        n_queries: input.initial_queries.len(),
        space_units: monitor.space_units(),
        result_changes,
        cycle_times,
    }
}

/// Run the sharded CPM monitor with `shards` query shards over `input`
/// (`shards = 1` is the sequential engine path — no worker threads).
pub fn run_sharded(input: &SimulationInput, shards: usize) -> RunReport {
    let mut monitor = cpm_core::ShardedKnnMonitor::new(input.params.grid_dim, shards);
    run_boxed(&mut monitor, input)
}

/// Replay `input` into the sequential engine (one shard) and into a
/// sharded monitor per entry of `shard_counts`, asserting after every
/// cycle that:
///
/// * each query's reported result is **bit-identical** (same object ids,
///   same distance bits, same order) across all shard counts,
/// * the changed-query sets agree,
/// * the per-cycle [`Metrics`] totals agree (work moved between threads,
///   not skipped or double-counted),
///
/// and, at the end of the run, that the sequential results match the
/// brute-force oracle by distance. Panics on any divergence.
pub fn verify_sharded_determinism(input: &SimulationInput, shard_counts: &[usize]) {
    use cpm_core::ShardedKnnMonitor;

    let mut sequential = ShardedKnnMonitor::new(input.params.grid_dim, 1);
    let mut sharded: Vec<ShardedKnnMonitor> = shard_counts
        .iter()
        .map(|&s| ShardedKnnMonitor::new(input.params.grid_dim, s))
        .collect();

    sequential.populate(input.initial_objects.iter().copied());
    for m in sharded.iter_mut() {
        m.populate(input.initial_objects.iter().copied());
    }
    for &(qid, pos, k) in &input.initial_queries {
        sequential.install_query(qid, pos, k);
        for m in sharded.iter_mut() {
            m.install_query(qid, pos, k);
        }
    }

    let mut tracked: Vec<cpm_geom::QueryId> = input
        .initial_queries
        .iter()
        .map(|&(qid, _, _)| qid)
        .collect();
    for (t, tick) in input.ticks.iter().enumerate() {
        for ev in &tick.query_events {
            match *ev {
                cpm_grid::QueryEvent::Install { id, .. } => tracked.push(id),
                cpm_grid::QueryEvent::Terminate { id } => tracked.retain(|&q| q != id),
                cpm_grid::QueryEvent::Move { .. } => {}
            }
        }
        let changed_seq = sequential.process_cycle(&tick.object_events, &tick.query_events);
        let metrics_seq = sequential.take_metrics();
        for (m, &shards) in sharded.iter_mut().zip(shard_counts) {
            let changed = m.process_cycle(&tick.object_events, &tick.query_events);
            assert_eq!(
                changed_seq, changed,
                "changed sets diverged at t={t} with {shards} shards"
            );
            let metrics = m.take_metrics();
            assert_eq!(
                metrics_seq, metrics,
                "metrics totals diverged at t={t} with {shards} shards"
            );
            for &qid in &tracked {
                assert_eq!(
                    sequential.result(qid).expect("sequential tracks query"),
                    m.result(qid)
                        .unwrap_or_else(|| panic!("{shards}-shard monitor lost query {qid}")),
                    "results diverged for {qid} at t={t} with {shards} shards"
                );
            }
            m.check_invariants();
        }
    }

    // Anchor the whole family to ground truth: brute-force k-NN over the
    // final object population must agree with the sequential engine.
    for &qid in &tracked {
        let st = sequential
            .query_state(qid)
            .expect("tracked query installed");
        let mut truth: Vec<f64> = sequential
            .grid()
            .iter_objects()
            .map(|(_, p)| st.spec.0.dist(p))
            .collect();
        truth.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        truth.truncate(st.k());
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), truth.len().min(st.k()), "oracle size for {qid}");
        for (g, e) in got.iter().zip(&truth) {
            assert!((g - e).abs() < 1e-9, "oracle mismatch for {qid}");
        }
    }
}

/// Replay `input` through the delta-streaming subscription layer
/// ([`cpm_sub::KnnSubscriptionHub`]) at every shard count in
/// `shard_counts`, folding each subscription's delta stream into a
/// client-side [`cpm_sub::Replica`], and assert after **every** epoch
/// that:
///
/// * each replica is **bit-identical** (ids, `f64` distance bits, order)
///   to the hub's authoritative snapshot — the delta stream is lossless,
/// * each replica is bit-identical to the brute-force
///   [`crate::OracleMonitor`] result — the reconstructed stream is not
///   just self-consistent but *correct*,
/// * the drained delta streams are bit-identical across shard counts.
///
/// Query events are mapped onto subscription calls (`Install` →
/// subscribe, `Move` → update, `Terminate` → unsubscribe), so moving-query
/// churn exercises the update path. Panics on any divergence.
pub fn verify_delta_replay(input: &SimulationInput, shard_counts: &[usize]) {
    use cpm_geom::QueryId;
    use cpm_sub::{KnnSubscriptionHub, Replica};
    use std::collections::BTreeMap;

    let mut oracle = crate::OracleMonitor::new();
    oracle.populate(&input.initial_objects);

    struct Lane {
        shards: usize,
        hub: KnnSubscriptionHub,
        replicas: BTreeMap<QueryId, Replica>,
    }
    let mut lanes: Vec<Lane> = shard_counts
        .iter()
        .map(|&shards| {
            let mut hub = KnnSubscriptionHub::new(input.params.grid_dim, shards);
            hub.populate(input.initial_objects.iter().copied());
            Lane {
                shards,
                hub,
                replicas: BTreeMap::new(),
            }
        })
        .collect();

    // Epoch 1: the initial subscriptions install (no object events).
    for &(qid, pos, k) in &input.initial_queries {
        oracle.install_query(qid, pos, k);
        for lane in lanes.iter_mut() {
            lane.hub.subscribe_knn(qid, pos, k);
            lane.replicas.insert(qid, Replica::new());
        }
    }
    fold_and_compare(&mut lanes, &oracle, 0);

    for (t, tick) in input.ticks.iter().enumerate() {
        oracle.process_cycle(&tick.object_events, &tick.query_events);
        for lane in lanes.iter_mut() {
            for ev in &tick.query_events {
                match *ev {
                    cpm_grid::QueryEvent::Install { id, pos, k } => {
                        lane.hub.subscribe_knn(id, pos, k);
                        lane.replicas.insert(id, Replica::new());
                    }
                    cpm_grid::QueryEvent::Move { id, to } => lane.hub.move_knn(id, to),
                    cpm_grid::QueryEvent::Terminate { id } => {
                        lane.hub.unsubscribe(id);
                        lane.replicas.remove(&id);
                    }
                }
            }
            lane.hub.push_updates(tick.object_events.iter().copied());
        }
        fold_and_compare(&mut lanes, &oracle, t + 1);
    }

    fn fold_and_compare(lanes: &mut [Lane], oracle: &crate::OracleMonitor, t: usize) {
        let mut reference: Option<Vec<(QueryId, Vec<cpm_core::NeighborDelta>)>> = None;
        for lane in lanes.iter_mut() {
            let shards = lane.shards;
            lane.hub.commit();
            let mut drained = Vec::new();
            for (&qid, replica) in lane.replicas.iter_mut() {
                let deltas = lane.hub.drain(qid);
                assert_eq!(
                    lane.hub.lagged(qid),
                    0,
                    "unbounded mailbox dropped deltas for {qid}"
                );
                for delta in &deltas {
                    replica.apply(delta);
                }
                let (_, snapshot) = lane
                    .hub
                    .snapshot(qid)
                    .unwrap_or_else(|| panic!("{shards}-shard hub lost {qid}"));
                assert_eq!(
                    replica.result(),
                    snapshot,
                    "replay diverged from the hub for {qid} at t={t} with {shards} shards"
                );
                let truth = oracle.result(qid).expect("oracle tracks every query");
                assert_eq!(
                    replica.result(),
                    truth,
                    "replay diverged from the oracle for {qid} at t={t} with {shards} shards"
                );
                drained.push((qid, deltas));
            }
            lane.hub.check_invariants();
            match &reference {
                None => reference = Some(drained),
                Some(first) => assert_eq!(
                    first, &drained,
                    "delta streams diverged at t={t} with {shards} shards"
                ),
            }
        }
    }
}

/// Conformance harness for online re-gridding: replay `input` through
/// re-gridding engines and prove that **a re-grid is observationally
/// invisible** — results, changed lists and delta streams are
/// bit-identical to an engine built at the new δ from scratch.
///
/// Lanes:
///
/// * one delta-capturing [`cpm_core::ShardedCpmEngine`] per entry of
///   `shard_counts`, all re-gridding at the cycle boundaries named in
///   `regrid_at` (`(cycle index, new dim)` — applied before that cycle's
///   events run);
/// * a **reference engine rebuilt from scratch at every re-grid point**:
///   fresh grid at the new δ, populated from the live objects in
///   ascending id order, queries installed in ascending id order at
///   their current positions, epoch-aligned by replaying empty cycles.
///
/// After every cycle the harness asserts that all lanes and the current
/// reference produce bit-identical changed lists, delta batches and
/// per-query results; at the end, lane results are checked against a
/// brute-force oracle by distance. Panics on any divergence.
pub fn verify_regrid(input: &SimulationInput, regrid_at: &[(usize, u32)], shard_counts: &[usize]) {
    use cpm_core::{CycleDeltas, PointQuery, ShardedCpmEngine, SpecEvent};
    use cpm_geom::QueryId;
    use std::collections::BTreeMap;

    let translate = |events: &[cpm_grid::QueryEvent]| -> Vec<SpecEvent<PointQuery>> {
        events
            .iter()
            .map(|ev| match *ev {
                cpm_grid::QueryEvent::Install { id, pos, k } => SpecEvent::Install {
                    id,
                    spec: PointQuery(pos),
                    k,
                },
                cpm_grid::QueryEvent::Move { id, to } => SpecEvent::Update {
                    id,
                    spec: PointQuery(to),
                },
                cpm_grid::QueryEvent::Terminate { id } => SpecEvent::Terminate { id },
            })
            .collect()
    };

    let mut lanes: Vec<ShardedCpmEngine<PointQuery>> = shard_counts
        .iter()
        .map(|&s| {
            let mut e = ShardedCpmEngine::new(input.params.grid_dim, s);
            e.enable_deltas();
            e.populate(input.initial_objects.iter().copied());
            e
        })
        .collect();
    // The live query book (id → position, k), maintained from the event
    // stream so a reference engine can be installed mid-run.
    let mut book: BTreeMap<QueryId, (cpm_geom::Point, usize)> = BTreeMap::new();
    for &(qid, pos, k) in &input.initial_queries {
        book.insert(qid, (pos, k));
        for lane in lanes.iter_mut() {
            lane.install(qid, PointQuery(pos), k).expect("fresh id");
        }
    }
    let mut reference: Option<ShardedCpmEngine<PointQuery>> = None;

    let mut out = CycleDeltas::default();
    let mut ref_out = CycleDeltas::default();
    for (t, tick) in input.ticks.iter().enumerate() {
        if let Some(&(_, dim)) = regrid_at.iter().find(|&&(at, _)| at == t) {
            for lane in lanes.iter_mut() {
                lane.regrid_to(dim).expect("verify dims are in range");
                lane.check_invariants();
            }
            // Build the from-scratch reference at the new δ.
            let mut fresh = ShardedCpmEngine::new(dim, 1);
            fresh.enable_deltas();
            fresh.populate(lanes[0].grid().iter_objects());
            for (&qid, &(pos, k)) in &book {
                fresh.install(qid, PointQuery(pos), k).expect("fresh id");
            }
            while fresh.epoch() < lanes[0].epoch() {
                fresh.process_cycle_with_deltas(&[], &[]);
            }
            reference = Some(fresh);
        }
        for ev in &tick.query_events {
            match *ev {
                cpm_grid::QueryEvent::Install { id, pos, k } => {
                    book.insert(id, (pos, k));
                }
                cpm_grid::QueryEvent::Move { id, to } => {
                    book.get_mut(&id).expect("move of installed query").0 = to;
                }
                cpm_grid::QueryEvent::Terminate { id } => {
                    book.remove(&id);
                }
            }
        }
        let events = translate(&tick.query_events);
        lanes[0].process_cycle_with_deltas_into(&tick.object_events, &events, &mut out);
        for (lane, &shards) in lanes.iter_mut().zip(shard_counts).skip(1) {
            let other = lane.process_cycle_with_deltas(&tick.object_events, &events);
            assert_eq!(
                out, other,
                "cycle outputs diverged at t={t} with {shards} shards"
            );
        }
        if let Some(fresh) = reference.as_mut() {
            fresh.process_cycle_with_deltas_into(&tick.object_events, &events, &mut ref_out);
            assert_eq!(
                out, ref_out,
                "re-gridded engine diverged from the from-scratch reference at t={t}"
            );
            for &qid in book.keys() {
                assert_eq!(
                    lanes[0].result(qid).expect("lane tracks query"),
                    fresh.result(qid).expect("reference tracks query"),
                    "result diverged from the from-scratch reference for {qid} at t={t}"
                );
            }
        }
        for lane in lanes.iter() {
            lane.check_invariants();
        }
    }

    // Anchor to ground truth: brute-force k-NN over the final population.
    for (&qid, &(pos, k)) in &book {
        let st = lanes[0].query_state(qid).expect("tracked query installed");
        assert_eq!(st.k(), k);
        let mut truth: Vec<f64> = lanes[0]
            .grid()
            .iter_objects()
            .map(|(_, p)| pos.dist(p))
            .collect();
        truth.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        truth.truncate(k);
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), truth.len().min(k), "oracle size for {qid}");
        for (g, e) in got.iter().zip(&truth) {
            assert!((g - e).abs() < 1e-9, "oracle mismatch for {qid}");
        }
    }
}

/// Conformance harness for the pluggable spatial-index layer: replay
/// `input` through delta-capturing k-NN engines on **every backend in
/// `backends` × every shard count**, with the re-grid schedule of
/// `regrid_at` and (optionally) a full snapshot → restore round-trip at
/// the `snapshot_at` cycle boundary, asserting after every cycle that
/// changed lists, delta batches and per-query results are bit-identical
/// to a uniform-[`cpm_grid::CellIndex`] reference engine.
///
/// The backend is an implementation detail the paper's algorithm cannot
/// observe: best-first cell ordering, influence lists and result sets
/// depend only on the conceptual `dim × dim` geometry, which every
/// [`cpm_grid::SpatialIndex`] serves identically. The round-trip also
/// proves a snapshot restores onto **its recorded backend** (and that
/// restoring under a different configured backend is refused with
/// [`cpm_core::CpmError::IndexMismatch`]). Panics on any divergence.
pub fn verify_index(
    input: &SimulationInput,
    backends: &[cpm_grid::IndexKind],
    regrid_at: &[(usize, u32)],
    shard_counts: &[usize],
    snapshot_at: Option<usize>,
) {
    use cpm_core::{CycleDeltas, EngineSnapshot, PointQuery, ShardedCpmEngine, SpecEvent};
    use cpm_geom::QueryId;
    use cpm_grid::{DynIndex, GridBuilder, IndexKind, SpatialIndex};
    use std::collections::BTreeMap;

    let translate = |events: &[cpm_grid::QueryEvent]| -> Vec<SpecEvent<PointQuery>> {
        events
            .iter()
            .map(|ev| match *ev {
                cpm_grid::QueryEvent::Install { id, pos, k } => SpecEvent::Install {
                    id,
                    spec: PointQuery(pos),
                    k,
                },
                cpm_grid::QueryEvent::Move { id, to } => SpecEvent::Update {
                    id,
                    spec: PointQuery(to),
                },
                cpm_grid::QueryEvent::Terminate { id } => SpecEvent::Terminate { id },
            })
            .collect()
    };

    struct Lane {
        label: String,
        kind: IndexKind,
        engine: ShardedCpmEngine<PointQuery, DynIndex>,
    }

    let mut reference: ShardedCpmEngine<PointQuery> =
        ShardedCpmEngine::new(input.params.grid_dim, 1);
    reference.enable_deltas();
    reference.populate(input.initial_objects.iter().copied());
    let mut lanes: Vec<Lane> = backends
        .iter()
        .flat_map(|&kind| shard_counts.iter().map(move |&s| (kind, s)))
        .map(|(kind, shards)| {
            let grid = GridBuilder::new(input.params.grid_dim)
                .index(kind)
                .try_build()
                .expect("verify dims satisfy every backend");
            let mut engine = ShardedCpmEngine::with_grid(grid, shards);
            engine.enable_deltas();
            engine.populate(input.initial_objects.iter().copied());
            Lane {
                label: format!("{kind}×{shards}"),
                kind,
                engine,
            }
        })
        .collect();

    let mut book: BTreeMap<QueryId, (cpm_geom::Point, usize)> = BTreeMap::new();
    for &(qid, pos, k) in &input.initial_queries {
        book.insert(qid, (pos, k));
        reference
            .install(qid, PointQuery(pos), k)
            .expect("fresh id");
        for lane in lanes.iter_mut() {
            lane.engine
                .install(qid, PointQuery(pos), k)
                .expect("fresh id");
        }
    }

    let mut out = CycleDeltas::default();
    let mut ref_out = CycleDeltas::default();
    for (t, tick) in input.ticks.iter().enumerate() {
        if let Some(&(_, dim)) = regrid_at.iter().find(|&&(at, _)| at == t) {
            reference.regrid_to(dim).expect("verify dims are in range");
            for lane in lanes.iter_mut() {
                lane.engine
                    .regrid_to(dim)
                    .expect("verify dims satisfy every backend");
                lane.engine.check_invariants();
            }
        }
        if snapshot_at == Some(t) {
            for lane in lanes.iter_mut() {
                let snap = EngineSnapshot::capture(&lane.engine);
                // Restoring under a backend the snapshot was not captured
                // with must be refused up front.
                let other = match lane.kind {
                    IndexKind::Uniform => IndexKind::quadtree(),
                    IndexKind::Quadtree { .. } => IndexKind::Uniform,
                };
                assert!(
                    matches!(
                        snap.restore_expecting(other),
                        Err(cpm_core::CpmError::IndexMismatch { .. })
                    ),
                    "lane {}: cross-backend restore must be refused",
                    lane.label
                );
                lane.engine = snap
                    .restore_expecting(lane.kind)
                    .expect("round-trip restores the recorded backend");
                assert_eq!(
                    lane.engine.grid().index().kind(),
                    lane.kind,
                    "lane {}: restore changed the backend",
                    lane.label
                );
                lane.engine.check_invariants();
            }
        }
        for ev in &tick.query_events {
            match *ev {
                cpm_grid::QueryEvent::Install { id, pos, k } => {
                    book.insert(id, (pos, k));
                }
                cpm_grid::QueryEvent::Move { id, to } => {
                    book.get_mut(&id).expect("move of installed query").0 = to;
                }
                cpm_grid::QueryEvent::Terminate { id } => {
                    book.remove(&id);
                }
            }
        }
        let events = translate(&tick.query_events);
        reference.process_cycle_with_deltas_into(&tick.object_events, &events, &mut ref_out);
        for lane in lanes.iter_mut() {
            lane.engine
                .process_cycle_with_deltas_into(&tick.object_events, &events, &mut out);
            assert_eq!(
                ref_out, out,
                "lane {}: cycle outputs diverged from the uniform reference at t={t}",
                lane.label
            );
            for &qid in book.keys() {
                assert_eq!(
                    reference.result(qid).expect("reference tracks query"),
                    lane.engine.result(qid).expect("lane tracks query"),
                    "lane {}: result diverged for {qid} at t={t}",
                    lane.label
                );
            }
            lane.engine.check_invariants();
        }
    }

    // Anchor to ground truth: brute-force k-NN over the final population.
    for (&qid, &(pos, k)) in &book {
        let st = reference.query_state(qid).expect("tracked query installed");
        assert_eq!(st.k(), k);
        let mut truth: Vec<f64> = reference
            .grid()
            .iter_objects()
            .map(|(_, p)| pos.dist(p))
            .collect();
        truth.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        truth.truncate(k);
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), truth.len().min(k), "oracle size for {qid}");
        for (g, e) in got.iter().zip(&truth) {
            assert!((g - e).abs() < 1e-9, "oracle mismatch for {qid}");
        }
    }
}

/// Run every contender (CPM, YPK-CNN, SEA-CNN) over the same input.
pub fn run_contenders(input: &SimulationInput) -> Vec<RunReport> {
    AlgoKind::CONTENDERS
        .iter()
        .map(|&a| run(a, input))
        .collect()
}

/// Replay `input` into all contenders *and* the oracle, asserting that
/// every query's result distances agree with the ground truth at every
/// timestamp (distance ties may differ in object id). Used by integration
/// tests; panics on divergence.
pub fn verify_against_oracle(input: &SimulationInput) {
    let mut monitors: Vec<Box<dyn KnnMonitorAlgo>> = [
        AlgoKind::Cpm,
        AlgoKind::Ypk,
        AlgoKind::Sea,
        AlgoKind::Oracle,
    ]
    .iter()
    .map(|&a| a.build(input.params.grid_dim))
    .collect();

    for m in monitors.iter_mut() {
        m.populate(&input.initial_objects);
        for &(qid, pos, k) in &input.initial_queries {
            m.install_query(qid, pos, k);
        }
    }

    let (oracle, contenders) = monitors.split_last_mut().expect("non-empty");
    compare_all(&**oracle, contenders, input, 0);

    for (t, tick) in input.ticks.iter().enumerate() {
        for m in contenders.iter_mut() {
            m.process_cycle(&tick.object_events, &tick.query_events);
        }
        oracle.process_cycle(&tick.object_events, &tick.query_events);
        compare_all(&**oracle, contenders, input, t + 1);
    }
}

fn compare_all(
    oracle: &dyn KnnMonitorAlgo,
    contenders: &[Box<dyn KnnMonitorAlgo>],
    input: &SimulationInput,
    timestamp: usize,
) {
    for &(qid, _, _) in &input.initial_queries {
        let truth: Vec<f64> = oracle
            .result(qid)
            .expect("oracle tracks every query")
            .iter()
            .map(|n| n.dist)
            .collect();
        for m in contenders {
            let got: Vec<f64> = m
                .result(qid)
                .unwrap_or_else(|| panic!("{} lost query {qid}", m.name()))
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(
                got.len(),
                truth.len(),
                "{} result size for {qid} at t={timestamp}",
                m.name()
            );
            for (g, e) in got.iter().zip(&truth) {
                assert!(
                    (g - e).abs() < 1e-9,
                    "{} diverged on {qid} at t={timestamp}: {got:?} vs {truth:?}",
                    m.name()
                );
            }
        }
    }
}

/// Conformance harness for the unified [`cpm_core::CpmServer`]: replay a
/// deterministic mixed-kind workload (k-NN + range + aggregate-NN +
/// constrained + reverse-NN, with moving queries and mid-stream
/// install/terminate) into one server per entry of `shard_counts` and,
/// side by side, into **dedicated single-kind engines** over their own
/// grids, asserting after every cycle that:
///
/// * every non-RNN query's result is **bit-identical** (ids, `f64`
///   distance bits, order) between the server and its kind's dedicated
///   [`cpm_core::ShardedCpmEngine`] — the `AnyQuerySpec` dispatch adds
///   nothing and loses nothing,
/// * server results are identical across all shard counts, and the
///   merged work-counter totals agree,
/// * changed-query lists agree between the server and the union of the
///   dedicated engines (plus RNN re-verification),
/// * the server performed exactly **one** grid ingest pass per cycle
///   (`updates_applied` equals the event count, not kinds × events),
/// * every result matches a brute-force oracle (range results
///   bit-identical via [`crate::brute_force_range`]; k-NN/ANN/constrained
///   by distance; RNN sets exactly).
///
/// Panics on any divergence.
pub fn verify_unified_server(n_objects: u32, cycles: usize, grid_dim: u32, shard_counts: &[usize]) {
    verify_unified_server_with(
        cpm_grid::IndexKind::Uniform,
        n_objects,
        cycles,
        grid_dim,
        shard_counts,
    );
}

/// [`verify_unified_server`] with the servers running on an explicit
/// index backend: the dedicated single-kind engines stay on the default
/// uniform [`cpm_grid::CellIndex`], so passing
/// [`cpm_grid::IndexKind::quadtree`] proves **every** exact query kind —
/// k-NN, range, aggregate-NN, constrained and reverse-NN — bit-identical
/// *across backends*, not merely across shard counts.
pub fn verify_unified_server_with(
    index: cpm_grid::IndexKind,
    n_objects: u32,
    cycles: usize,
    grid_dim: u32,
    shard_counts: &[usize],
) {
    use cpm_core::{
        AggregateFn, AnnQuery, AnyQuerySpec, ConstrainedQuery, CpmServer, CpmServerBuilder,
        PointQuery, RangeQuery, ShardedCpmEngine, SpecEvent,
    };
    use cpm_geom::{ObjectId, Point, QueryId, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    let mut rng = StdRng::seed_from_u64(0x0CF5);
    let objects: Vec<(ObjectId, Point)> = (0..n_objects)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();

    // Brute-force reverse NN: p ∈ RNN(q) iff no other object is strictly
    // closer to p than q is.
    fn brute_rnn(objects: &[(ObjectId, Point)], q: Point) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = objects
            .iter()
            .filter(|&&(id, p)| {
                let dq = p.dist(q);
                !objects.iter().any(|&(o, op)| o != id && p.dist(op) < dq)
            })
            .map(|&(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    let mut servers: Vec<CpmServer> = shard_counts
        .iter()
        .map(|&s| {
            CpmServerBuilder::new(grid_dim)
                .shards(s)
                .index(index)
                .build()
        })
        .collect();
    let mut knn_engine: ShardedCpmEngine<PointQuery> = ShardedCpmEngine::new(grid_dim, 1);
    let mut range_engine: ShardedCpmEngine<RangeQuery> = ShardedCpmEngine::new(grid_dim, 1);
    let mut ann_engine: ShardedCpmEngine<AnnQuery> = ShardedCpmEngine::new(grid_dim, 1);
    let mut con_engine: ShardedCpmEngine<ConstrainedQuery> = ShardedCpmEngine::new(grid_dim, 1);
    for s in servers.iter_mut() {
        s.populate(objects.iter().copied());
    }
    knn_engine.populate(objects.iter().copied());
    range_engine.populate(objects.iter().copied());
    ann_engine.populate(objects.iter().copied());
    con_engine.populate(objects.iter().copied());

    // Initial mixed population. Ids are disjoint across kinds.
    let mut knn_pos = [Point::new(0.3, 0.4), Point::new(0.7, 0.6)];
    let knn_ids = [QueryId(0), QueryId(1)];
    let mut range_specs = [
        RangeQuery::rect(Rect::new(Point::new(0.2, 0.1), Point::new(0.6, 0.5))),
        RangeQuery::circle(Point::new(0.6, 0.7), 0.22),
    ];
    let range_ids = [QueryId(10), QueryId(11)];
    let ann_spec = AnnQuery::new(
        vec![
            Point::new(0.25, 0.75),
            Point::new(0.8, 0.3),
            Point::new(0.5, 0.5),
        ],
        AggregateFn::Sum,
    );
    let ann_id = QueryId(20);
    let con_spec = ConstrainedQuery::new(
        Point::new(0.45, 0.55),
        Rect::new(Point::new(0.3, 0.3), Point::new(0.9, 0.9)),
    );
    let con_id = QueryId(30);
    let mut rnn_pos = Point::new(0.55, 0.45);
    let rnn_id = QueryId(40);

    for s in servers.iter_mut() {
        for (i, &id) in knn_ids.iter().enumerate() {
            let _ = s.install_knn(id, knn_pos[i], 3 + i).expect("fresh id");
        }
        for (i, &id) in range_ids.iter().enumerate() {
            let _ = s.install_range(id, range_specs[i]).expect("fresh id");
        }
        let _ = s
            .install_ann(ann_id, ann_spec.clone(), 2)
            .expect("fresh id");
        let _ = s
            .install_constrained(con_id, con_spec.clone(), 3)
            .expect("fresh id");
        let _ = s.install_rnn(rnn_id, rnn_pos).expect("fresh id");
    }
    for (i, &id) in knn_ids.iter().enumerate() {
        knn_engine
            .install(id, PointQuery(knn_pos[i]), 3 + i)
            .expect("fresh id");
    }
    for (i, &id) in range_ids.iter().enumerate() {
        range_engine
            .install(id, range_specs[i], RangeQuery::UNBOUNDED_K)
            .expect("fresh id");
    }
    ann_engine
        .install(ann_id, ann_spec.clone(), 2)
        .expect("fresh id");
    con_engine
        .install(con_id, con_spec.clone(), 3)
        .expect("fresh id");

    // Mid-stream churn: a k-NN query installed a third of the way in and
    // terminated two thirds of the way in. Skipped for very short runs,
    // where install and terminate would land in the same event batch
    // (one event per id per batch).
    let transient_id = QueryId(5);
    let install_at = cycles / 3;
    let terminate_at = (2 * cycles) / 3;
    let use_transient = install_at < terminate_at;
    let mut transient_live = false;

    let mut live: Vec<u32> = (0..n_objects).collect();
    let mut next_oid = n_objects;

    for cycle in 0..cycles {
        // Object churn: moves plus occasional appear/disappear.
        let mut object_events = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..rng.gen_range(1..12) {
            match rng.gen_range(0..10) {
                0 if live.len() > 8 => {
                    let at = rng.gen_range(0..live.len());
                    let id = live.swap_remove(at);
                    if seen.insert(id) {
                        object_events.push(cpm_grid::ObjectEvent::Disappear { id: ObjectId(id) });
                    } else {
                        live.push(id);
                    }
                }
                1 => {
                    live.push(next_oid);
                    seen.insert(next_oid);
                    object_events.push(cpm_grid::ObjectEvent::Appear {
                        id: ObjectId(next_oid),
                        pos: Point::new(rng.gen(), rng.gen()),
                    });
                    next_oid += 1;
                }
                _ => {
                    let id = live[rng.gen_range(0..live.len())];
                    if seen.insert(id) {
                        object_events.push(cpm_grid::ObjectEvent::Move {
                            id: ObjectId(id),
                            to: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                }
            }
        }

        // Query events, mirrored between the server (unified vocabulary)
        // and the kind's dedicated engine.
        let mut server_events: Vec<SpecEvent<AnyQuerySpec>> = Vec::new();
        let mut knn_events: Vec<SpecEvent<PointQuery>> = Vec::new();
        let mut range_events: Vec<SpecEvent<RangeQuery>> = Vec::new();
        if rng.gen_bool(0.4) {
            // A k-NN subscriber moves.
            let qi = rng.gen_range(0..knn_ids.len());
            knn_pos[qi] = Point::new(rng.gen(), rng.gen());
            server_events.push(SpecEvent::Update {
                id: knn_ids[qi],
                spec: AnyQuerySpec::Knn(PointQuery(knn_pos[qi])),
            });
            knn_events.push(SpecEvent::Update {
                id: knn_ids[qi],
                spec: PointQuery(knn_pos[qi]),
            });
        }
        if rng.gen_bool(0.3) {
            // A range region moves.
            let qi = rng.gen_range(0..range_ids.len());
            range_specs[qi] = RangeQuery::circle(
                Point::new(rng.gen(), rng.gen()),
                0.1 + rng.gen::<f64>() * 0.2,
            );
            server_events.push(SpecEvent::Update {
                id: range_ids[qi],
                spec: AnyQuerySpec::Range(range_specs[qi]),
            });
            range_events.push(SpecEvent::Update {
                id: range_ids[qi],
                spec: range_specs[qi],
            });
        }
        if use_transient && cycle == install_at {
            let pos = Point::new(0.15, 0.85);
            server_events.push(SpecEvent::Install {
                id: transient_id,
                spec: AnyQuerySpec::Knn(PointQuery(pos)),
                k: 2,
            });
            knn_events.push(SpecEvent::Install {
                id: transient_id,
                spec: PointQuery(pos),
                k: 2,
            });
            transient_live = true;
        }
        if use_transient && cycle == terminate_at {
            server_events.push(SpecEvent::Terminate { id: transient_id });
            knn_events.push(SpecEvent::Terminate { id: transient_id });
            transient_live = false;
        }
        // The reverse-NN registration moves occasionally (direct calls —
        // the server owns the six-region composition).
        let move_rnn = rng.gen_bool(0.25);
        if move_rnn {
            rnn_pos = Point::new(rng.gen(), rng.gen());
        }

        for s in servers.iter_mut() {
            s.take_metrics();
            if move_rnn {
                let h = s.rnn_handle(rnn_id).expect("installed");
                let _ = s.update_rnn(h, rnn_pos).expect("installed");
            }
        }
        let changed_first = servers[0]
            .process_cycle(&object_events, &server_events)
            .expect("validated events");
        let metrics_first = servers[0].take_metrics();
        assert_eq!(
            metrics_first.updates_applied,
            object_events.len() as u64,
            "cycle {cycle}: the unified server must ingest the batch exactly once"
        );
        for (s, &shards) in servers.iter_mut().zip(shard_counts).skip(1) {
            let changed = s
                .process_cycle(&object_events, &server_events)
                .expect("validated events");
            assert_eq!(
                changed_first, changed,
                "cycle {cycle}: changed sets diverged at {shards} shards"
            );
            let metrics = s.take_metrics();
            assert_eq!(
                metrics_first, metrics,
                "cycle {cycle}: metrics diverged at {shards} shards"
            );
        }

        let mut dedicated_changed: BTreeSet<QueryId> = BTreeSet::new();
        dedicated_changed.extend(knn_engine.process_cycle(&object_events, &knn_events));
        dedicated_changed.extend(range_engine.process_cycle(&object_events, &range_events));
        dedicated_changed.extend(ann_engine.process_cycle(&object_events, &[]));
        dedicated_changed.extend(con_engine.process_cycle(&object_events, &[]));
        let server_non_rnn: BTreeSet<QueryId> = changed_first
            .iter()
            .copied()
            .filter(|&q| q != rnn_id)
            .collect();
        assert_eq!(
            server_non_rnn, dedicated_changed,
            "cycle {cycle}: changed sets diverged between server and dedicated engines"
        );

        // Bit-identical per-kind results, plus brute-force ground truth.
        let snapshot: Vec<(ObjectId, Point)> = servers[0].grid().iter_objects().collect();
        for s in servers.iter() {
            let mut tracked: Vec<QueryId> = Vec::new();
            tracked.extend(knn_ids);
            if transient_live {
                tracked.push(transient_id);
            }
            for &id in &tracked {
                assert_eq!(
                    s.result(id).expect("server tracks query"),
                    knn_engine.result(id).expect("engine tracks query"),
                    "cycle {cycle}: k-NN {id} diverged from the dedicated engine"
                );
            }
            for &id in &range_ids {
                let got = s.result(id).expect("server tracks query");
                assert_eq!(
                    got,
                    range_engine.result(id).expect("engine tracks query"),
                    "cycle {cycle}: range {id} diverged from the dedicated engine"
                );
                let spec = s
                    .query_state(id)
                    .unwrap()
                    .spec
                    .as_range()
                    .unwrap()
                    .to_owned();
                assert_eq!(
                    got,
                    crate::brute_force_range(snapshot.iter().copied(), &spec).as_slice(),
                    "cycle {cycle}: range {id} diverged from brute force"
                );
            }
            assert_eq!(
                s.result(ann_id).expect("server tracks query"),
                ann_engine.result(ann_id).expect("engine tracks query"),
                "cycle {cycle}: ANN diverged from the dedicated engine"
            );
            assert_eq!(
                s.result(con_id).expect("server tracks query"),
                con_engine.result(con_id).expect("engine tracks query"),
                "cycle {cycle}: constrained diverged from the dedicated engine"
            );
            assert_eq!(
                s.rnn_result(rnn_id).expect("server tracks query"),
                brute_rnn(&snapshot, rnn_pos).as_slice(),
                "cycle {cycle}: RNN diverged from brute force"
            );
            // k-NN ground truth by distance.
            for &id in &tracked {
                let st = s.query_state(id).unwrap();
                let q = st.spec.as_knn().expect("knn query");
                let mut truth: Vec<f64> = snapshot.iter().map(|&(_, p)| q.dist(p)).collect();
                truth.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                truth.truncate(st.k());
                let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
                assert_eq!(got.len(), truth.len().min(st.k()));
                for (g, e) in got.iter().zip(&truth) {
                    assert!((g - e).abs() < 1e-9, "cycle {cycle}: k-NN oracle mismatch");
                }
            }
            s.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SimParams, WorkloadKind};

    fn tiny_params() -> SimParams {
        SimParams {
            n_objects: 250,
            n_queries: 10,
            k: 4,
            timestamps: 12,
            grid_dim: 32,
            workload: WorkloadKind::Network { grid_streets: 8 },
            ..SimParams::default()
        }
    }

    #[test]
    fn all_algorithms_agree_with_the_oracle() {
        verify_against_oracle(&SimulationInput::generate(&tiny_params()));
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        verify_sharded_determinism(&SimulationInput::generate(&tiny_params()), &[2, 3, 4]);
    }

    #[test]
    fn delta_replay_reconstructs_the_oracle() {
        verify_delta_replay(&SimulationInput::generate(&tiny_params()), &[1, 2, 4]);
    }

    #[test]
    fn regrids_are_observationally_invisible() {
        // Two mid-run re-grids (refine, then coarsen) on the drifting
        // workload, checked sequentially and at 4 shards.
        let params = SimParams {
            workload: WorkloadKind::Drift { peak_factor: 4.0 },
            ..tiny_params()
        };
        let input = SimulationInput::generate(&params);
        verify_regrid(&input, &[(3, 64), (8, 16)], &[1, 4]);
    }

    #[test]
    fn sharded_report_matches_sequential_counters() {
        let input = SimulationInput::generate(&tiny_params());
        let seq = run_sharded(&input, 1);
        let par = run_sharded(&input, 4);
        assert_eq!(seq.algo, "CPM-sharded");
        assert_eq!(seq.metrics, par.metrics, "sharding changed the work done");
        assert_eq!(seq.result_changes, par.result_changes);
    }

    #[test]
    fn latency_percentiles_are_monotone() {
        let input = SimulationInput::generate(&tiny_params());
        let r = run(AlgoKind::Cpm, &input);
        assert_eq!(r.cycle_times.len(), r.cycles);
        let p50 = r.latency_percentile_ms(0.5);
        let p95 = r.latency_percentile_ms(0.95);
        let max = r.latency_percentile_ms(1.0);
        assert!(p50 <= p95 && p95 <= max);
        assert!(max > 0.0);
        // The sum of cycle times is the processing time.
        let sum: f64 = r.cycle_times.iter().map(|d| d.as_secs_f64()).sum();
        assert!((sum - r.processing_time.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn reports_carry_sane_statistics() {
        let input = SimulationInput::generate(&tiny_params());
        let reports = run_contenders(&input);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.cycles, 12);
            assert_eq!(r.n_queries, 10);
            assert!(r.space_units > 0);
            assert!(r.metrics.updates_applied > 0);
        }
        // CPM must do no more cell accesses than either baseline on the
        // default maintenance-heavy workload.
        let cpm = &reports[0];
        assert!(cpm.metrics.cell_accesses <= reports[1].metrics.cell_accesses);
        assert!(cpm.metrics.cell_accesses <= reports[2].metrics.cell_accesses);
    }
}
