//! Typed cluster-layer errors: every way the coordinator/worker protocol
//! can refuse to proceed, surfaced as values instead of panics.

use cpm_core::CpmError;
use cpm_geom::{ObjectId, QueryId};
use cpm_wire::cluster::{ClusterReject, TileRect};
use cpm_wire::WireError;

use crate::transport::TransportError;

/// Why a cluster operation failed.
///
/// The protocol's invariants are all here: version agreement
/// ([`VersionSkew`](Self::VersionSkew)), contiguous epochs
/// ([`EpochGap`](Self::EpochGap), [`ConflictingDeltas`](Self::ConflictingDeltas)),
/// routing matching the partition ([`PartitionMismatch`](Self::PartitionMismatch),
/// [`QueryOutOfTile`](Self::QueryOutOfTile)) and the single-node-equivalence
/// certificate ([`CoverageExceeded`](Self::CoverageExceeded)). A violated
/// invariant stops the cluster with one of these — it never commits a
/// merged cycle it cannot certify.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A peer speaks a different wire version.
    VersionSkew {
        /// The worker involved.
        worker: u32,
        /// Our wire version.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// An epoch arrived out of sequence: a frame was lost or a peer
    /// skipped ahead, and merging around the hole would fabricate
    /// history.
    EpochGap {
        /// The worker involved.
        worker: u32,
        /// The epoch we were ready to process.
        expected: u64,
        /// The epoch that arrived.
        got: u64,
    },
    /// An object event was routed to a worker whose coverage does not
    /// contain its position; the worker refused the whole batch.
    PartitionMismatch {
        /// The misrouted object.
        oid: ObjectId,
        /// The coverage tile the position falls outside of.
        tile: TileRect,
    },
    /// A query was routed to (or moved under) a worker whose tile does
    /// not own its anchor point.
    QueryOutOfTile {
        /// The misrouted query.
        qid: QueryId,
        /// The ownership tile the anchor falls outside of.
        tile: TileRect,
    },
    /// A query's influence region grew past its worker's coverage, so
    /// local results can no longer be certified globally correct. Raise
    /// the overlap margin (or lower the query's `k`) and re-install.
    CoverageExceeded {
        /// The escaping query.
        qid: QueryId,
        /// The worker that could no longer certify it.
        worker: u32,
    },
    /// One worker delivered two different delta payloads for the same
    /// epoch.
    ConflictingDeltas {
        /// The worker involved.
        worker: u32,
        /// The epoch claimed twice.
        epoch: u64,
    },
    /// The transport failed (peer hung up, I/O error).
    Transport(TransportError),
    /// A frame failed to decode.
    Wire(WireError),
    /// A worker's engine refused a batch (rendered `CpmError`).
    Engine {
        /// The worker involved.
        worker: u32,
        /// The engine error's display form.
        detail: String,
    },
    /// The peer answered with a message the protocol does not allow in
    /// this state.
    Protocol {
        /// What was violated.
        what: &'static str,
    },
}

impl ClusterError {
    /// Lift an engine error into the cluster error space.
    pub fn engine(worker: u32, err: &CpmError) -> Self {
        ClusterError::Engine {
            worker,
            detail: err.to_string(),
        }
    }

    /// Reconstruct the typed error a worker shipped as a
    /// [`ClusterReject`].
    pub fn from_reject(worker: u32, reject: ClusterReject) -> Self {
        match reject {
            ClusterReject::VersionSkew { ours, theirs } => ClusterError::VersionSkew {
                worker,
                // The *worker's* "ours" is our "theirs": re-orient so the
                // error reads from the coordinator's point of view.
                ours: theirs,
                theirs: ours,
            },
            ClusterReject::EpochGap { expected, got } => ClusterError::EpochGap {
                worker,
                expected,
                got,
            },
            ClusterReject::PartitionMismatch { oid, tile } => {
                ClusterError::PartitionMismatch { oid, tile }
            }
            ClusterReject::QueryOutOfTile { qid, tile } => {
                ClusterError::QueryOutOfTile { qid, tile }
            }
            ClusterReject::CoverageExceeded { qid, .. } => {
                ClusterError::CoverageExceeded { qid, worker }
            }
            ClusterReject::Engine { detail } => ClusterError::Engine { worker, detail },
        }
    }
}

impl From<TransportError> for ClusterError {
    fn from(e: TransportError) -> Self {
        ClusterError::Transport(e)
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::VersionSkew {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "version skew with worker {worker}: ours {ours}, theirs {theirs}"
            ),
            ClusterError::EpochGap {
                worker,
                expected,
                got,
            } => write!(
                f,
                "epoch gap from worker {worker}: expected {expected}, got {got}"
            ),
            ClusterError::PartitionMismatch { oid, tile } => write!(
                f,
                "object {} routed outside worker coverage cols {}..={} rows {}..={}",
                oid.0, tile.c0, tile.c1, tile.r0, tile.r1
            ),
            ClusterError::QueryOutOfTile { qid, tile } => write!(
                f,
                "query {} anchored outside worker tile cols {}..={} rows {}..={}",
                qid.0, tile.c0, tile.c1, tile.r0, tile.r1
            ),
            ClusterError::CoverageExceeded { qid, worker } => write!(
                f,
                "query {} influence region escaped worker {worker}'s coverage",
                qid.0
            ),
            ClusterError::ConflictingDeltas { worker, epoch } => write!(
                f,
                "worker {worker} delivered conflicting deltas for epoch {epoch}"
            ),
            ClusterError::Transport(e) => write!(f, "transport: {e}"),
            ClusterError::Wire(e) => write!(f, "wire: {e}"),
            ClusterError::Engine { worker, detail } => {
                write!(f, "worker {worker} engine error: {detail}")
            }
            ClusterError::Protocol { what } => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {}
