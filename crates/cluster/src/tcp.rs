//! TCP loopback backend for the cluster [`Transport`] — plain
//! `std::net::TcpStream`, no extra dependencies.
//!
//! Frames are already self-delimiting (`cpm-wire` puts the payload
//! length at a fixed header offset), so the socket carries them
//! back-to-back with no additional envelope: a reader pulls the
//! 12-byte header, learns the payload length, then pulls payload + CRC.
//! Corruption is the frame codec's problem (typed `WireError`s);
//! this layer only turns socket failures into
//! [`TransportError`]s.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use crate::transport::{Transport, TransportError};

/// Bytes before the `len` field in a `cpm-wire` frame header
/// (magic `u32` + version `u16` + kind `u16`).
const LEN_OFFSET: usize = 8;
/// Full header size: the fields above plus the `len: u32` itself.
const HEADER: usize = 12;
/// Trailing CRC-32 size.
const TRAILER: usize = 4;
/// Refuse frames claiming more than this (a corrupt length prefix must
/// not trigger a giant allocation; a snapshot of millions of objects
/// fits comfortably).
const MAX_FRAME: usize = 1 << 30;

fn io_err(e: std::io::Error) -> TransportError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TransportError::Closed
    } else {
        TransportError::Io(e.to_string())
    }
}

/// A connected TCP transport end.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(Self { stream })
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(Self { stream })
    }

    /// Accept exactly one connection on `listener`.
    pub fn accept_one(listener: &TcpListener) -> Result<Self, TransportError> {
        let (stream, _) = listener.accept().map_err(io_err)?;
        Self::from_stream(stream)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(frame).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut header = [0u8; HEADER];
        if let Err(e) = self.stream.read_exact(&mut header) {
            // EOF on a frame boundary is a clean hang-up.
            return Err(io_err(e));
        }
        let len = u32::from_le_bytes(
            header[LEN_OFFSET..HEADER]
                .try_into()
                .expect("fixed 4-byte slice"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::Io(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        let mut frame = vec![0u8; HEADER + len + TRAILER];
        frame[..HEADER].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[HEADER..])
            .map_err(io_err)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_wire::cluster::ClusterMsg;

    #[test]
    fn frames_roundtrip_over_a_loopback_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept_one(&listener).unwrap();
            // Echo two frames back-to-back, then read one.
            let f1 = t.recv().unwrap();
            let f2 = t.recv().unwrap();
            t.send(&f2).unwrap();
            t.send(&f1).unwrap();
        });
        let mut t = TcpTransport::connect(addr).unwrap();
        let a = ClusterMsg::SnapshotReq.to_frame();
        let b = ClusterMsg::Ack {
            worker: 3,
            epoch: 9,
        }
        .to_frame();
        t.send(&a).unwrap();
        t.send(&b).unwrap();
        assert_eq!(t.recv().unwrap(), b);
        assert_eq!(t.recv().unwrap(), a);
        server.join().unwrap();
    }

    #[test]
    fn peer_hangup_is_a_clean_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr).unwrap();
            drop(t);
        });
        let mut t = TcpTransport::accept_one(&listener).unwrap();
        client.join().unwrap();
        assert_eq!(t.recv(), Err(TransportError::Closed));
    }
}
