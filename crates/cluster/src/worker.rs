//! The worker side of the cluster: one [`CpmServer`] per worker, a
//! validate-then-run message handler, and the blocking serve loop.
//!
//! A worker is deliberately stateless beyond its engine: everything it
//! knows (tile, coverage, grid resolution, index backend) arrived in the
//! coordinator's `Hello`, and its full query/object state fits in one
//! snapshot frame — which is exactly how a crashed worker's replacement
//! is seeded ([`ClusterMsg::SnapshotXfer`]).
//!
//! Validation is batch-level and runs **before any state changes**
//! (mirroring the server's own ingest hardening): a misrouted object is
//! a typed `PartitionMismatch` refusing the whole batch, a misrouted
//! query a typed `QueryOutOfTile`, an out-of-sequence cycle a typed
//! `EpochGap`. After each cycle the worker re-checks the influence
//! certificate ([`crate::partition::influence_bbox`]) for every owned
//! query and refuses with `CoverageExceeded` the moment local results
//! can no longer be certified globally correct.

use cpm_core::{AnyQuerySpec, CpmError, CpmServer, CpmServerBuilder, CycleDeltas, SpecEvent};
use cpm_grid::{GridGeom, IndexKind, ObjectEvent};
use cpm_wire::cluster::{ClusterMsg, ClusterReject, DeltasRef, TileRect};
use cpm_wire::{Decode, Encode, WIRE_VERSION};

use crate::error::ClusterError;
use crate::partition::{anchor_of, influence_bbox};
use crate::transport::{Transport, TransportError};

/// One cluster worker: a [`CpmServer`] restricted to a coverage region.
#[derive(Debug)]
pub struct ClusterWorker {
    id: u32,
    server: CpmServer,
    geom: GridGeom,
    index: IndexKind,
    tile: TileRect,
    coverage: TileRect,
    /// Recycled per-cycle delta batch (the engine's `_into` idiom).
    cycle_out: CycleDeltas,
    /// Recycled engine-encoded image of `cycle_out`, the `Deltas`
    /// payload; valid after a successful [`ClusterWorker::run_batch`].
    payload_buf: Vec<u8>,
}

impl ClusterWorker {
    /// Build a fresh worker for the assignment a `Hello` carries.
    ///
    /// # Errors
    /// [`CpmError::InvalidDim`] for an unusable grid resolution.
    pub fn new(
        id: u32,
        dim: u32,
        index: IndexKind,
        tile: TileRect,
        coverage: TileRect,
    ) -> Result<Self, CpmError> {
        let server = CpmServerBuilder::new(dim)
            .shards(1)
            .deltas(true)
            .index(index)
            .try_build()?;
        Ok(Self {
            id,
            server,
            geom: GridGeom::new(dim),
            index,
            tile,
            coverage,
            cycle_out: CycleDeltas::default(),
            payload_buf: Vec::new(),
        })
    }

    /// The worker's index in the cluster.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The underlying server (read-only; mutations go through messages).
    pub fn server(&self) -> &CpmServer {
        &self.server
    }

    /// The worker engine's current epoch.
    pub fn epoch(&self) -> u64 {
        self.server.epoch()
    }

    fn reject(&self, reject: ClusterReject) -> ClusterMsg {
        ClusterMsg::Reject {
            worker: self.id,
            reject,
        }
    }

    /// `true` if `p`'s cell lies inside this worker's coverage.
    fn covered(&self, p: cpm_geom::Point) -> bool {
        self.coverage.contains_cell(self.geom.cell_of(p))
    }

    /// Validate a query-event batch: every addressed spec must anchor
    /// inside this worker's ownership tile (and be partitionable at
    /// all).
    fn check_query_events(&self, events: &[SpecEvent<AnyQuerySpec>]) -> Result<(), ClusterReject> {
        for ev in events {
            let (id, spec) = match ev {
                SpecEvent::Install { id, spec, .. } | SpecEvent::Update { id, spec } => {
                    (*id, Some(spec))
                }
                SpecEvent::Terminate { id } => (*id, None),
            };
            if let Some(spec) = spec {
                match anchor_of(spec) {
                    None => {
                        return Err(ClusterReject::Engine {
                            detail: format!(
                                "composite (RNN) spec for query {} cannot be partitioned",
                                id.0
                            ),
                        })
                    }
                    Some(a) if !self.tile.contains_cell(self.geom.cell_of(a)) => {
                        return Err(ClusterReject::QueryOutOfTile {
                            qid: id,
                            tile: self.tile,
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// The influence certificate: every owned query's influence region
    /// must lie inside the coverage, or the local result can no longer
    /// be proven equal to the global one. Returns the first violator.
    fn certificate_violation(&self) -> Option<cpm_geom::QueryId> {
        let dim = self.geom.dim();
        let full = self.coverage == TileRect::new(0, 0, dim - 1, dim - 1);
        for id in self.server.engine().query_ids() {
            let state = self.server.query_state(id)?;
            let bbox = influence_bbox(
                &state.spec,
                state.k(),
                state.result().len(),
                state.best_dist(),
            );
            let ok = match bbox {
                None => full,
                Some(b) => {
                    self.coverage.contains_cell(self.geom.cell_of(b.lo))
                        && self.coverage.contains_cell(self.geom.cell_of(b.hi))
                }
            };
            if !ok {
                return Some(id);
            }
        }
        None
    }

    /// Handle one protocol message, returning the reply to ship (if
    /// any). `Shutdown` is handled by the serve loop, not here.
    pub fn handle(&mut self, msg: ClusterMsg) -> Option<ClusterMsg> {
        match msg {
            ClusterMsg::Install { payload } => Some(self.handle_install(&payload)),
            ClusterMsg::Batch {
                epoch,
                objects,
                queries,
            } => Some(match self.run_batch(epoch, &objects, &queries) {
                Ok(()) => ClusterMsg::Deltas {
                    worker: self.id,
                    epoch,
                    payload: self.payload_buf.clone(),
                },
                Err(r) => self.reject(r),
            }),
            ClusterMsg::SnapshotReq => {
                let snap = cpm_core::Snapshot::capture(&self.server, self.server.epoch());
                Some(ClusterMsg::SnapshotXfer {
                    worker: self.id,
                    epoch: self.server.epoch(),
                    payload: snap.to_frame(),
                })
            }
            ClusterMsg::SnapshotXfer { payload, .. } => Some(self.handle_restore(&payload)),
            ClusterMsg::Shutdown => None,
            ClusterMsg::Hello { .. }
            | ClusterMsg::HelloAck { .. }
            | ClusterMsg::Deltas { .. }
            | ClusterMsg::Ack { .. }
            | ClusterMsg::Reject { .. } => Some(self.reject(ClusterReject::Engine {
                detail: "unexpected protocol message for a worker".to_owned(),
            })),
        }
    }

    /// Between-cycles query maintenance (no epoch advance): installs,
    /// updates and terminations applied through the typed server
    /// surface.
    fn handle_install(&mut self, payload: &[u8]) -> ClusterMsg {
        let events = match Vec::<SpecEvent<AnyQuerySpec>>::decode_all(payload) {
            Ok(v) => v,
            Err(e) => {
                return self.reject(ClusterReject::Engine {
                    detail: format!("query batch decode: {e}"),
                })
            }
        };
        if let Err(r) = self.check_query_events(&events) {
            return self.reject(r);
        }
        for ev in events {
            let applied = match ev {
                SpecEvent::Install { id, spec, k } => {
                    self.server.install_spec(id, spec, k).map(|_| ())
                }
                SpecEvent::Update { id, spec } => self.server.update_spec(id, spec).map(|_| ()),
                SpecEvent::Terminate { id } => self.server.terminate(id),
            };
            if let Err(e) = applied {
                return self.reject(ClusterReject::Engine {
                    detail: e.to_string(),
                });
            }
        }
        if let Some(qid) = self.certificate_violation() {
            return self.reject(ClusterReject::CoverageExceeded {
                qid,
                tile: self.coverage,
            });
        }
        ClusterMsg::Ack {
            worker: self.id,
            epoch: self.server.epoch(),
        }
    }

    /// One processing cycle: validate the whole batch, run it, certify
    /// the results, leave the encoded deltas in the recycled
    /// `payload_buf`. The typed-refusal contract is batch-level: an
    /// `Err` means no state changed and nothing was encoded.
    fn run_batch(
        &mut self,
        epoch: u64,
        objects: &[ObjectEvent],
        queries: &[u8],
    ) -> Result<(), ClusterReject> {
        let expected = self.server.epoch() + 1;
        if epoch != expected {
            return Err(ClusterReject::EpochGap {
                expected,
                got: epoch,
            });
        }
        // Partition validation before any state change: a position the
        // coordinator routed here must fall inside this coverage.
        for ev in objects {
            let pos = match ev {
                ObjectEvent::Appear { pos, .. } => Some(*pos),
                ObjectEvent::Move { to, .. } => Some(*to),
                ObjectEvent::Disappear { .. } => None,
            };
            if let Some(p) = pos {
                if !self.covered(p) {
                    return Err(ClusterReject::PartitionMismatch {
                        oid: ev.id(),
                        tile: self.coverage,
                    });
                }
            }
        }
        let query_events = Vec::<SpecEvent<AnyQuerySpec>>::decode_all(queries).map_err(|e| {
            ClusterReject::Engine {
                detail: format!("query batch decode: {e}"),
            }
        })?;
        self.check_query_events(&query_events)?;
        // The server validates both batches before any state change, so
        // an engine refusal here leaves the cycle un-run.
        let mut out = std::mem::take(&mut self.cycle_out);
        let ran = self
            .server
            .process_cycle_with_deltas_into(objects, &query_events, &mut out);
        self.cycle_out = out;
        ran.map_err(|e| ClusterReject::Engine {
            detail: e.to_string(),
        })?;
        if let Some(qid) = self.certificate_violation() {
            return Err(ClusterReject::CoverageExceeded {
                qid,
                tile: self.coverage,
            });
        }
        self.cycle_out.encode_into(&mut self.payload_buf);
        Ok(())
    }

    /// Build the `Deltas` reply frame for the last successful
    /// [`ClusterWorker::run_batch`] into `out`, reusing its allocation.
    fn deltas_frame_into(&self, epoch: u64, out: &mut Vec<u8>) {
        DeltasRef {
            worker: self.id,
            epoch,
            payload: &self.payload_buf,
        }
        .to_frame_into(out);
    }

    /// Replace the engine with a transferred snapshot (replacement
    /// worker seeding).
    fn handle_restore(&mut self, payload: &[u8]) -> ClusterMsg {
        let snap = match cpm_core::Snapshot::from_frame(payload) {
            Ok(s) => s,
            Err(e) => {
                return self.reject(ClusterReject::Engine {
                    detail: format!("snapshot decode: {e}"),
                })
            }
        };
        match CpmServer::restore_expecting(&snap, self.index) {
            Ok(server) => {
                self.server = server;
                ClusterMsg::Ack {
                    worker: self.id,
                    epoch: self.server.epoch(),
                }
            }
            Err(e) => self.reject(ClusterReject::Engine {
                detail: format!("snapshot restore: {e}"),
            }),
        }
    }
}

/// Serve one worker over `transport` until the coordinator shuts it
/// down or hangs up: handshake (`Hello` → `HelloAck`, with a typed
/// version-skew refusal), then handle messages one at a time.
///
/// # Errors
/// [`ClusterError::VersionSkew`] on a mismatched `Hello`,
/// [`ClusterError::Protocol`] if the first message is not a `Hello`,
/// transport/wire errors as typed values. A peer hang-up after the
/// handshake is a clean exit.
pub fn run_worker<T: Transport>(mut transport: T) -> Result<(), ClusterError> {
    let first = ClusterMsg::from_frame(&transport.recv()?)?;
    let mut worker = match first {
        ClusterMsg::Hello {
            version,
            worker,
            dim,
            index,
            tile,
            coverage,
        } => {
            if version != WIRE_VERSION {
                let reject = ClusterMsg::Reject {
                    worker,
                    reject: ClusterReject::VersionSkew {
                        ours: WIRE_VERSION,
                        theirs: version,
                    },
                };
                transport.send(&reject.to_frame())?;
                return Err(ClusterError::VersionSkew {
                    worker,
                    ours: WIRE_VERSION,
                    theirs: version,
                });
            }
            match ClusterWorker::new(worker, dim, index, tile, coverage) {
                Ok(w) => w,
                Err(e) => {
                    let reject = ClusterMsg::Reject {
                        worker,
                        reject: ClusterReject::Engine {
                            detail: e.to_string(),
                        },
                    };
                    transport.send(&reject.to_frame())?;
                    return Err(ClusterError::engine(worker, &e));
                }
            }
        }
        _ => {
            return Err(ClusterError::Protocol {
                what: "worker expected a Hello first",
            })
        }
    };
    let ack = ClusterMsg::HelloAck {
        worker: worker.id(),
        version: WIRE_VERSION,
        epoch: worker.epoch(),
    };
    transport.send(&ack.to_frame())?;
    // One reply-frame buffer for the whole serve loop: the per-cycle hot
    // path (`Batch` in, `Deltas` out) re-encodes into the same two
    // recycled buffers (worker payload + this frame) every epoch.
    let mut frame_buf = Vec::new();
    loop {
        let frame = match transport.recv() {
            Ok(f) => f,
            Err(TransportError::Closed) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match ClusterMsg::from_frame(&frame)? {
            ClusterMsg::Batch {
                epoch,
                objects,
                queries,
            } => {
                match worker.run_batch(epoch, &objects, &queries) {
                    Ok(()) => worker.deltas_frame_into(epoch, &mut frame_buf),
                    Err(r) => worker.reject(r).to_frame_into(&mut frame_buf),
                }
                transport.send(&frame_buf)?;
            }
            msg => match worker.handle(msg) {
                Some(reply) => {
                    reply.to_frame_into(&mut frame_buf);
                    transport.send(&frame_buf)?;
                }
                None => return Ok(()),
            },
        }
    }
}
