//! The byte-level boundary between coordinator and workers.
//!
//! A [`Transport`] ships whole frames (already length-prefixed and
//! CRC-checksummed by `cpm-wire`) between two peers. Two backends:
//!
//! * [`duplex`] — an in-process pair of bounded-by-nothing byte queues,
//!   fully deterministic, no sockets: what the conformance tests and
//!   proptests run on;
//! * [`crate::tcp::TcpTransport`] — a `std::net::TcpStream` loopback
//!   backend with the same blocking semantics and no extra dependencies.
//!
//! Both ends speak strict request/reply in this subsystem, so the trait
//! is deliberately small and blocking; async serving is a separate
//! ROADMAP item.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed its end (worker exited, coordinator dropped).
    Closed,
    /// An I/O error (TCP backend), rendered.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer closed the transport"),
            TransportError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A blocking, frame-oriented, bidirectional byte channel.
pub trait Transport: Send {
    /// Ship one frame to the peer.
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receive the next frame, blocking until one arrives or the peer
    /// closes.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;
}

/// One direction of an in-process duplex channel.
#[derive(Debug, Default)]
struct Pipe {
    queue: Mutex<(VecDeque<Vec<u8>>, bool)>,
    ready: Condvar,
}

impl Pipe {
    fn push(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let mut q = self.queue.lock().expect("pipe lock");
        if q.1 {
            return Err(TransportError::Closed);
        }
        q.0.push_back(frame);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Result<Vec<u8>, TransportError> {
        let mut q = self.queue.lock().expect("pipe lock");
        loop {
            if let Some(frame) = q.0.pop_front() {
                return Ok(frame);
            }
            if q.1 {
                return Err(TransportError::Closed);
            }
            q = self.ready.wait(q).expect("pipe lock");
        }
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("pipe lock");
        q.1 = true;
        self.ready.notify_all();
    }
}

/// One end of an in-process duplex byte channel (see [`duplex`]).
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx.push(frame.to_vec())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.pop()
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Closing both directions wakes a peer blocked in recv() and
        // fails its next send() — a dropped coordinator reads as a clean
        // hang-up, exactly like a closed socket.
        self.tx.close();
        self.rx.close();
    }
}

/// Build a connected pair of in-process transports: frames sent on one
/// end arrive on the other, in order, with no loss or duplication.
pub fn duplex() -> (ChannelTransport, ChannelTransport) {
    let a_to_b = Arc::new(Pipe::default());
    let b_to_a = Arc::new(Pipe::default());
    (
        ChannelTransport {
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
        },
        ChannelTransport {
            tx: b_to_a,
            rx: a_to_b,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_ships_frames_in_order_both_ways() {
        let (mut a, mut b) = duplex();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        b.send(b"ack").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        assert_eq!(b.recv().unwrap(), b"two");
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn dropping_one_end_closes_the_other() {
        let (a, mut b) = duplex();
        drop(a);
        assert_eq!(b.recv(), Err(TransportError::Closed));
        assert_eq!(b.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn recv_blocks_until_a_frame_arrives() {
        let (mut a, mut b) = duplex();
        let t = std::thread::spawn(move || b.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.send(b"late").unwrap();
        assert_eq!(t.join().unwrap(), b"late");
    }
}
