//! The coordinator: query installation, update-batch routing with
//! boundary-overlap replication, the epoch-aligned merge, and worker
//! lifecycle (handshake, snapshot-transfer restart).
//!
//! # Routing model
//!
//! The coordinator is the only component that sees the whole workspace.
//! It tracks every live object's position and every query's owner, and
//! translates each global update batch into one per-worker batch:
//!
//! * an object **entering** a worker's coverage appears there, one
//!   **leaving** disappears there, one **moving within** it moves there —
//!   so by induction each worker's live set is exactly the objects in
//!   its coverage;
//! * a query belongs to the worker whose tile contains its anchor
//!   (sticky: an update that moves the anchor off the owner's tile is a
//!   typed [`ClusterError::QueryOutOfTile`], not a silent migration).
//!
//! Every worker receives a batch every cycle — empty batches included —
//! so worker epochs advance in lockstep and the [`MergeBuffer`] barrier
//! can never mix epochs.
//!
//! # Failure model
//!
//! Fail-stop: the first typed refusal (from validation here, a worker's
//! `Reject`, or a transport failure) poisons the cycle — the coordinator
//! returns the error and makes no further guarantees about worker
//! alignment. Recovery is explicit: restart workers from a snapshot
//! ([`ClusterCoordinator::restart_worker`]) or rebuild the cluster.

use std::net::TcpListener;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use cpm_core::{AnyQuerySpec, CycleDeltas, SpecEvent};
use cpm_geom::{FastHashMap, ObjectId, Point, QueryId};
use cpm_grid::{IndexKind, ObjectEvent};
use cpm_sub::{CycleReceipt, DeltaFanout};
use cpm_wire::cluster::ClusterMsg;
use cpm_wire::{Encode, WIRE_VERSION};

use crate::error::ClusterError;
use crate::merge::MergeBuffer;
use crate::partition::{anchor_of, Partition};
use crate::tcp::TcpTransport;
use crate::transport::{duplex, ChannelTransport, Transport};
use crate::worker::run_worker;

/// Static cluster shape: grid resolution, worker count, overlap margin
/// and index backend (every worker runs the same one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Grid resolution (`dim × dim` cells), shared by every worker.
    pub dim: u32,
    /// Number of workers / partition tiles.
    pub workers: u32,
    /// Coverage margin in grid cells on each side of a tile. Wider
    /// margins certify larger influence regions at the cost of more
    /// object replication.
    pub overlap: u32,
    /// Spatial-index backend each worker builds.
    pub index: IndexKind,
}

impl ClusterConfig {
    /// A `workers`-way split of a `dim × dim` grid with a 2-cell overlap
    /// and the uniform-grid index.
    pub fn new(dim: u32, workers: u32) -> Self {
        Self {
            dim,
            workers,
            overlap: 2,
            index: IndexKind::Uniform,
        }
    }

    /// Builder-style overlap margin override.
    pub fn overlap(mut self, cells: u32) -> Self {
        self.overlap = cells;
        self
    }

    /// Builder-style index backend override.
    pub fn index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }
}

/// A spawned worker thread's join handle, resolving to the worker
/// loop's exit status (join after [`ClusterCoordinator::shutdown`]).
pub type WorkerHandle = JoinHandle<Result<(), ClusterError>>;

/// The routing coordinator over `workers` connected [`Transport`] links;
/// see the [module docs](self) for the routing and failure model.
#[derive(Debug)]
pub struct ClusterCoordinator<T: Transport> {
    partition: Partition,
    config: ClusterConfig,
    links: Vec<T>,
    merge: MergeBuffer,
    epoch: u64,
    /// Every live object's current position — the source of truth the
    /// per-worker appear/move/disappear translation derives from.
    positions: FastHashMap<ObjectId, Point>,
    /// Each installed query's owning worker (sticky from install time).
    owners: FastHashMap<QueryId, usize>,
    /// Merge cost of the last committed cycle (see
    /// [`last_cycle_merge`](Self::last_cycle_merge)).
    last_merge: Duration,
}

impl ClusterCoordinator<ChannelTransport> {
    /// Spawn `config.workers` in-process workers on [`duplex`] channels,
    /// one thread each, and hand back the connected coordinator plus the
    /// worker join handles (join after [`shutdown`](Self::shutdown)).
    ///
    /// # Errors
    /// Any handshake refusal, as [`connect`](Self::connect).
    pub fn spawn_in_process(
        config: ClusterConfig,
    ) -> Result<(Self, Vec<WorkerHandle>), ClusterError> {
        let mut links = Vec::with_capacity(config.workers as usize);
        let mut handles = Vec::with_capacity(config.workers as usize);
        for _ in 0..config.workers {
            let (near, far) = duplex();
            links.push(near);
            handles.push(thread::spawn(move || run_worker(far)));
        }
        Ok((Self::connect(config, links)?, handles))
    }

    /// Spawn one replacement in-process worker and hot-swap it in for
    /// worker `w` via [`restart_worker`](Self::restart_worker).
    ///
    /// # Errors
    /// As [`restart_worker`](Self::restart_worker).
    pub fn restart_worker_in_process(&mut self, w: usize) -> Result<WorkerHandle, ClusterError> {
        let (near, far) = duplex();
        let handle = thread::spawn(move || run_worker(far));
        self.restart_worker(w, near)?;
        Ok(handle)
    }
}

impl ClusterCoordinator<TcpTransport> {
    /// Spawn `config.workers` workers as threads serving TCP loopback
    /// connections (one ephemeral listener each) and connect to them.
    ///
    /// # Errors
    /// Socket errors as [`ClusterError::Transport`]; handshake refusals
    /// as [`connect`](Self::connect).
    pub fn spawn_tcp_loopback(
        config: ClusterConfig,
    ) -> Result<(Self, Vec<WorkerHandle>), ClusterError> {
        let mut links = Vec::with_capacity(config.workers as usize);
        let mut handles = Vec::with_capacity(config.workers as usize);
        for _ in 0..config.workers {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| crate::transport::TransportError::Io(e.to_string()))?;
            let addr = listener
                .local_addr()
                .map_err(|e| crate::transport::TransportError::Io(e.to_string()))?;
            handles.push(thread::spawn(move || {
                run_worker(TcpTransport::accept_one(&listener)?)
            }));
            links.push(TcpTransport::connect(addr)?);
        }
        Ok((Self::connect(config, links)?, handles))
    }
}

impl<T: Transport> ClusterCoordinator<T> {
    /// Handshake with `links.len() == config.workers` already-serving
    /// workers: send each its `Hello` (worker index, grid, index
    /// backend, tile, coverage) and check the `HelloAck`.
    ///
    /// # Errors
    /// [`ClusterError::VersionSkew`] / typed worker rejections /
    /// [`ClusterError::Protocol`] on a malformed handshake.
    ///
    /// # Panics
    /// Panics if `links.len() != config.workers`, if `config.workers`
    /// is 0, or if `config.dim < config.workers`.
    pub fn connect(config: ClusterConfig, mut links: Vec<T>) -> Result<Self, ClusterError> {
        assert_eq!(
            links.len(),
            config.workers as usize,
            "one transport link per worker"
        );
        let partition = Partition::new(config.dim, config.workers, config.overlap);
        for (w, link) in links.iter_mut().enumerate() {
            Self::handshake(&config, &partition, w as u32, link, 0)?;
        }
        Ok(Self {
            partition,
            config,
            links,
            merge: MergeBuffer::new(config.workers as usize, 0),
            epoch: 0,
            positions: FastHashMap::default(),
            owners: FastHashMap::default(),
            last_merge: Duration::ZERO,
        })
    }

    fn handshake(
        config: &ClusterConfig,
        partition: &Partition,
        w: u32,
        link: &mut T,
        expect_epoch: u64,
    ) -> Result<(), ClusterError> {
        let hello = ClusterMsg::Hello {
            version: WIRE_VERSION,
            worker: w,
            dim: config.dim,
            index: config.index,
            tile: partition.tile(w as usize),
            coverage: partition.coverage(w as usize),
        };
        link.send(&hello.to_frame())?;
        match ClusterMsg::from_frame(&link.recv()?)? {
            ClusterMsg::HelloAck {
                worker,
                version,
                epoch,
            } => {
                if version != WIRE_VERSION {
                    return Err(ClusterError::VersionSkew {
                        worker: w,
                        ours: WIRE_VERSION,
                        theirs: version,
                    });
                }
                if worker != w {
                    return Err(ClusterError::Protocol {
                        what: "HelloAck from the wrong worker index",
                    });
                }
                if epoch != expect_epoch {
                    return Err(ClusterError::EpochGap {
                        worker: w,
                        expected: expect_epoch,
                        got: epoch,
                    });
                }
                Ok(())
            }
            ClusterMsg::Reject { worker, reject } => Err(ClusterError::from_reject(worker, reject)),
            _ => Err(ClusterError::Protocol {
                what: "handshake expected a HelloAck",
            }),
        }
    }

    /// The partition map the cluster routes over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Epoch of the last committed cycle (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Currently live (routed) object count.
    pub fn objects(&self) -> usize {
        self.positions.len()
    }

    /// The worker owning query `id`, if installed.
    pub fn owner(&self, id: QueryId) -> Option<usize> {
        self.owners.get(&id).copied()
    }

    /// Route query maintenance to the owning workers *between* cycles
    /// (no epoch advance): installs pick their owner by anchor tile,
    /// updates and terminations go to the sticky owner. Each contacted
    /// worker applies the sub-batch and re-certifies its coverage.
    ///
    /// # Errors
    /// Typed routing refusals ([`ClusterError::QueryOutOfTile`],
    /// [`ClusterError::Protocol`] for composite/unknown queries) before
    /// anything is sent; worker rejections (engine errors,
    /// [`ClusterError::CoverageExceeded`]) after.
    pub fn install(&mut self, events: &[SpecEvent<AnyQuerySpec>]) -> Result<(), ClusterError> {
        let (batches, owners) = self.route_queries(events)?;
        self.owners = owners;
        for (w, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let msg = ClusterMsg::Install {
                payload: batch.encode_to_vec(),
            };
            self.links[w].send(&msg.to_frame())?;
        }
        for (w, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match ClusterMsg::from_frame(&self.links[w].recv()?)? {
                ClusterMsg::Ack { .. } => {}
                ClusterMsg::Reject { worker, reject } => {
                    return Err(ClusterError::from_reject(worker, reject))
                }
                _ => {
                    return Err(ClusterError::Protocol {
                        what: "install expected an Ack",
                    })
                }
            }
        }
        Ok(())
    }

    /// Run one cluster-wide processing cycle: translate and route the
    /// global batches, collect every worker's deltas, and commit the
    /// epoch-aligned merge. The returned batch is bit-identical to what
    /// a single-node [`cpm_core::CpmServer`] emits for the same cycle.
    ///
    /// # Errors
    /// Typed routing refusals before anything is sent; worker
    /// rejections, transport and merge errors after (the cycle is then
    /// poisoned — see the [module docs](self) failure model).
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<CycleDeltas, ClusterError> {
        let epoch = self.epoch + 1;
        let (query_batches, owners) = self.route_queries(query_events)?;
        let (object_batches, positions) = self.route_objects(object_events)?;
        self.owners = owners;
        self.positions = positions;
        for w in 0..self.links.len() {
            let msg = ClusterMsg::Batch {
                epoch,
                objects: object_batches[w].clone(),
                queries: query_batches[w].encode_to_vec(),
            };
            self.links[w].send(&msg.to_frame())?;
        }
        let mut merge_spent = Duration::ZERO;
        for link in &mut self.links {
            match ClusterMsg::from_frame(&link.recv()?)? {
                ClusterMsg::Deltas {
                    worker,
                    epoch: got,
                    payload,
                } => {
                    let t = Instant::now();
                    self.merge.offer(worker, got, payload)?;
                    merge_spent += t.elapsed();
                }
                ClusterMsg::Reject { worker, reject } => {
                    return Err(ClusterError::from_reject(worker, reject))
                }
                _ => {
                    return Err(ClusterError::Protocol {
                        what: "cycle expected a Deltas batch",
                    })
                }
            }
        }
        let t = Instant::now();
        let merged = self.merge.try_commit()?.ok_or(ClusterError::Protocol {
            what: "all workers replied yet the merge barrier is incomplete",
        })?;
        merge_spent += t.elapsed();
        self.last_merge = merge_spent;
        self.epoch = epoch;
        Ok(merged)
    }

    /// Coordinator-side merge cost of the last committed cycle: payload
    /// reassembly into the epoch barrier, engine-delta decoding and the
    /// canonical query-id interleave. This is the cost the cluster adds
    /// *serially* on the coordinator regardless of how many cores the
    /// host gives the workers, which is why the bench gate bounds it
    /// (total cycle cost also depends on host parallelism; see
    /// `cpm-bench`'s cluster module).
    pub fn last_cycle_merge(&self) -> Duration {
        self.last_merge
    }

    /// [`process_cycle`](Self::process_cycle), publishing the merged
    /// batch into a subscription fan-out — the hub-boundary handoff: the
    /// fan-out (and every [`cpm_sub::Replica`] downstream) cannot tell a
    /// cluster from a single node.
    ///
    /// # Errors
    /// As [`process_cycle`](Self::process_cycle).
    pub fn process_cycle_fanout(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
        fanout: &mut DeltaFanout,
    ) -> Result<CycleReceipt, ClusterError> {
        let merged = self.process_cycle(object_events, query_events)?;
        Ok(fanout.publish(&merged))
    }

    /// Hot-swap worker `w`: capture its engine snapshot over the old
    /// link, shut the old worker down, handshake the replacement serving
    /// on `replacement`, and seed it with the snapshot. The cluster
    /// resumes at the current epoch with no other worker involved.
    ///
    /// # Errors
    /// Transport/handshake/restore failures as typed errors; on error
    /// the old link may already be gone (rebuild the cluster).
    pub fn restart_worker(&mut self, w: usize, mut replacement: T) -> Result<(), ClusterError> {
        self.links[w].send(&ClusterMsg::SnapshotReq.to_frame())?;
        let snapshot = match ClusterMsg::from_frame(&self.links[w].recv()?)? {
            ClusterMsg::SnapshotXfer { payload, .. } => payload,
            ClusterMsg::Reject { worker, reject } => {
                return Err(ClusterError::from_reject(worker, reject))
            }
            _ => {
                return Err(ClusterError::Protocol {
                    what: "snapshot request expected a SnapshotXfer",
                })
            }
        };
        self.links[w].send(&ClusterMsg::Shutdown.to_frame())?;
        // A fresh worker starts at epoch 0; the snapshot then fast-forwards
        // it to the cluster epoch.
        Self::handshake(&self.config, &self.partition, w as u32, &mut replacement, 0)?;
        let xfer = ClusterMsg::SnapshotXfer {
            worker: w as u32,
            epoch: self.epoch,
            payload: snapshot,
        };
        replacement.send(&xfer.to_frame())?;
        match ClusterMsg::from_frame(&replacement.recv()?)? {
            ClusterMsg::Ack { epoch, .. } if epoch == self.epoch => {}
            ClusterMsg::Ack { epoch, .. } => {
                return Err(ClusterError::EpochGap {
                    worker: w as u32,
                    expected: self.epoch,
                    got: epoch,
                })
            }
            ClusterMsg::Reject { worker, reject } => {
                return Err(ClusterError::from_reject(worker, reject))
            }
            _ => {
                return Err(ClusterError::Protocol {
                    what: "snapshot transfer expected an Ack",
                })
            }
        }
        self.links[w] = replacement;
        Ok(())
    }

    /// Shut every worker down cleanly. Join the spawn handles afterwards
    /// to observe their exit status.
    ///
    /// # Errors
    /// The first send failure (a worker that already hung up).
    pub fn shutdown(mut self) -> Result<(), ClusterError> {
        for link in &mut self.links {
            link.send(&ClusterMsg::Shutdown.to_frame())?;
        }
        Ok(())
    }

    /// Route query events to per-worker batches against a *copy* of the
    /// ownership map, so a refusal leaves the coordinator untouched.
    #[allow(clippy::type_complexity)]
    fn route_queries(
        &self,
        events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<
        (
            Vec<Vec<SpecEvent<AnyQuerySpec>>>,
            FastHashMap<QueryId, usize>,
        ),
        ClusterError,
    > {
        let mut owners = self.owners.clone();
        let mut batches = vec![Vec::new(); self.links.len()];
        for ev in events {
            let w = match ev {
                SpecEvent::Install { id, spec, .. } => {
                    let Some(anchor) = anchor_of(spec) else {
                        return Err(ClusterError::Protocol {
                            what: "composite (RNN) queries cannot be installed on a cluster",
                        });
                    };
                    if owners.contains_key(id) {
                        return Err(ClusterError::Protocol {
                            what: "install of a query id that is already installed",
                        });
                    }
                    let w = self.partition.owner_of(anchor);
                    owners.insert(*id, w);
                    w
                }
                SpecEvent::Update { id, spec } => {
                    let Some(&w) = owners.get(id) else {
                        return Err(ClusterError::Protocol {
                            what: "update of a query the coordinator never installed",
                        });
                    };
                    let Some(anchor) = anchor_of(spec) else {
                        return Err(ClusterError::Protocol {
                            what: "composite (RNN) queries cannot be installed on a cluster",
                        });
                    };
                    // Sticky ownership: the anchor must stay on the
                    // owner's tile.
                    if self.partition.owner_of(anchor) != w {
                        return Err(ClusterError::QueryOutOfTile {
                            qid: *id,
                            tile: self.partition.tile(w),
                        });
                    }
                    w
                }
                SpecEvent::Terminate { id } => {
                    let Some(w) = owners.remove(id) else {
                        return Err(ClusterError::Protocol {
                            what: "terminate of a query the coordinator never installed",
                        });
                    };
                    w
                }
            };
            batches[w].push(ev.clone());
        }
        Ok((batches, owners))
    }

    /// Translate global object events into per-worker batches against a
    /// *copy* of the position map: appear/move/disappear are rewritten
    /// relative to each worker's coverage so its live set tracks exactly
    /// the objects inside it.
    #[allow(clippy::type_complexity)]
    fn route_objects(
        &self,
        events: &[ObjectEvent],
    ) -> Result<(Vec<Vec<ObjectEvent>>, FastHashMap<ObjectId, Point>), ClusterError> {
        let mut positions = self.positions.clone();
        let mut batches = vec![Vec::new(); self.links.len()];
        for ev in events {
            match *ev {
                ObjectEvent::Appear { id, pos } => {
                    if positions.insert(id, pos).is_some() {
                        return Err(ClusterError::Protocol {
                            what: "appear of an object that is already live",
                        });
                    }
                    for (w, batch) in batches.iter_mut().enumerate() {
                        if self.partition.covers(w, pos) {
                            batch.push(ObjectEvent::Appear { id, pos });
                        }
                    }
                }
                ObjectEvent::Move { id, to } => {
                    let Some(old) = positions.insert(id, to) else {
                        return Err(ClusterError::Protocol {
                            what: "move of an object that is not live",
                        });
                    };
                    for (w, batch) in batches.iter_mut().enumerate() {
                        let was = self.partition.covers(w, old);
                        let is = self.partition.covers(w, to);
                        match (was, is) {
                            (true, true) => batch.push(ObjectEvent::Move { id, to }),
                            (false, true) => batch.push(ObjectEvent::Appear { id, pos: to }),
                            (true, false) => batch.push(ObjectEvent::Disappear { id }),
                            (false, false) => {}
                        }
                    }
                }
                ObjectEvent::Disappear { id } => {
                    let Some(old) = positions.remove(&id) else {
                        return Err(ClusterError::Protocol {
                            what: "disappear of an object that is not live",
                        });
                    };
                    for (w, batch) in batches.iter_mut().enumerate() {
                        if self.partition.covers(w, old) {
                            batch.push(ObjectEvent::Disappear { id });
                        }
                    }
                }
            }
        }
        Ok((batches, positions))
    }
}
