//! The coordinator: query installation, update-batch routing with
//! boundary-overlap replication, the epoch-aligned merge, and worker
//! lifecycle (handshake, snapshot-transfer restart).
//!
//! # Routing model
//!
//! The coordinator is the only component that sees the whole workspace.
//! It tracks every live object's position and every query's owner, and
//! translates each global update batch into one per-worker batch:
//!
//! * an object **entering** a worker's coverage appears there, one
//!   **leaving** disappears there, one **moving within** it moves there —
//!   so by induction each worker's live set is exactly the objects in
//!   its coverage;
//! * a query belongs to the worker whose tile contains its anchor
//!   (sticky: an update that moves the anchor off the owner's tile is a
//!   typed [`ClusterError::QueryOutOfTile`], not a silent migration).
//!
//! Every worker receives a batch every cycle — empty batches included —
//! so worker epochs advance in lockstep and the [`MergeBuffer`] barrier
//! can never mix epochs.
//!
//! Routing runs in two phases. Phase 1 is inherently serial: event
//! validation and owner/position resolution walk the maps in event
//! order. Phase 2 — per-worker translation and frame encoding — is a
//! pure function of the phase-1 plan and the partition map, so each
//! worker's batch is computed independently (and, in pipelined mode on
//! multi-core hosts, fanned out across `std::thread::scope` threads)
//! and sent in canonical worker order. Both schedules produce
//! bit-identical frames.
//!
//! # Pipelined mode
//!
//! [`ClusterConfig::pipelined`] selects a depth-1 software pipeline:
//! [`submit_cycle`](ClusterCoordinator::submit_cycle) routes, encodes
//! and sends epoch *e+1* while the workers are still computing epoch
//! *e*, and only then drains the merge barrier for the oldest in-flight
//! epoch. The transports are FIFO and workers process one message at a
//! time, so a worker sees `Batch(e+1)` exactly when it finishes `e` —
//! no protocol change, and the merged output stream is bit-identical to
//! the serial coordinator's. Out-of-band operations (install, restart,
//! snapshot transfer) drain the pipeline first; the merged batches they
//! drain are handed out by subsequent submits in order.
//!
//! # Failure model
//!
//! Fail-stop: the first typed refusal (from validation here, a worker's
//! `Reject`, or a transport failure) poisons the cycle — the coordinator
//! returns the error and makes no further guarantees about worker
//! alignment. Recovery is explicit: restart workers from a snapshot
//! ([`ClusterCoordinator::restart_worker`]) or rebuild the cluster.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use cpm_core::{AnyQuerySpec, CycleDeltas, SpecEvent};
use cpm_geom::{FastHashMap, ObjectId, Point, QueryId};
use cpm_grid::{IndexKind, ObjectEvent};
use cpm_sub::{CycleReceipt, DeltaFanout};
use cpm_wire::cluster::{BatchRef, ClusterMsg};
use cpm_wire::{Encode, WIRE_VERSION};

use crate::error::ClusterError;
use crate::merge::MergeBuffer;
use crate::partition::{anchor_of, Partition};
use crate::tcp::TcpTransport;
use crate::transport::{duplex, ChannelTransport, Transport};
use crate::worker::run_worker;

/// Static cluster shape: grid resolution, worker count, overlap margin,
/// index backend (every worker runs the same one) and cycle schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Grid resolution (`dim × dim` cells), shared by every worker.
    pub dim: u32,
    /// Number of workers / partition tiles.
    pub workers: u32,
    /// Coverage margin in grid cells on each side of a tile. Wider
    /// margins certify larger influence regions at the cost of more
    /// object replication.
    pub overlap: u32,
    /// Spatial-index backend each worker builds.
    pub index: IndexKind,
    /// Run the depth-1 epoch pipeline (route epoch *e+1* while workers
    /// compute *e*) and fan per-worker routing out across threads on
    /// multi-core hosts. Default `false`: fully serial cycles. The
    /// merged output stream is bit-identical either way.
    pub pipeline: bool,
}

impl ClusterConfig {
    /// A `workers`-way split of a `dim × dim` grid with a 2-cell overlap
    /// and the uniform-grid index, serial cycles.
    pub fn new(dim: u32, workers: u32) -> Self {
        Self {
            dim,
            workers,
            overlap: 2,
            index: IndexKind::Uniform,
            pipeline: false,
        }
    }

    /// Builder-style overlap margin override.
    pub fn overlap(mut self, cells: u32) -> Self {
        self.overlap = cells;
        self
    }

    /// Builder-style index backend override.
    pub fn index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// Builder-style pipeline selection (see [`ClusterConfig::pipeline`]).
    pub fn pipelined(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }
}

/// Per-stage cost breakdown of one committed coordinator cycle — the
/// instrumentation behind [`ClusterCoordinator::last_cycle_timings`]
/// and the bench gates (which read these counters instead of differing
/// wall clocks around whole calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleTimings {
    /// Routing and translation: phase-1 planning, per-worker batch
    /// translation, frame encoding and the sends.
    pub route: Duration,
    /// Time blocked on worker replies (includes the workers' own cycle
    /// compute; in pipelined mode the overlap shrinks this).
    pub worker_wait: Duration,
    /// Merge-barrier cost: payload reassembly, engine-delta decoding and
    /// the canonical query-id interleave.
    pub merge: Duration,
}

impl CycleTimings {
    /// The summed coordinator-side cost of the cycle.
    pub fn total(&self) -> Duration {
        self.route + self.worker_wait + self.merge
    }
}

/// Cumulative coordinator instrumentation across all committed cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorMetrics {
    /// Committed cycles.
    pub cycles: u64,
    /// Summed routing/translation/encode time.
    pub route: Duration,
    /// Summed time blocked on worker replies.
    pub worker_wait: Duration,
    /// Summed merge-barrier time.
    pub merge: Duration,
}

impl CoordinatorMetrics {
    fn record(&mut self, t: CycleTimings) {
        self.cycles += 1;
        self.route += t.route;
        self.worker_wait += t.worker_wait;
        self.merge += t.merge;
    }
}

/// Per-worker reusable routing buffers: the translated object batch,
/// the routed query events, their encoding, and the outgoing frame.
/// Steady state the whole route-and-send slice allocates nothing.
#[derive(Debug, Default)]
struct WorkerLane {
    objects: Vec<ObjectEvent>,
    qevents: Vec<SpecEvent<AnyQuerySpec>>,
    queries: Vec<u8>,
    frame: Vec<u8>,
}

/// A spawned worker thread's join handle, resolving to the worker
/// loop's exit status (join after [`ClusterCoordinator::shutdown`]).
pub type WorkerHandle = JoinHandle<Result<(), ClusterError>>;

/// The routing coordinator over `workers` connected [`Transport`] links;
/// see the [module docs](self) for the routing and failure model.
#[derive(Debug)]
pub struct ClusterCoordinator<T: Transport> {
    partition: Partition,
    config: ClusterConfig,
    links: Vec<T>,
    merge: MergeBuffer,
    /// Epoch of the last *committed* (merged) cycle.
    epoch: u64,
    /// Epoch of the last *sent* cycle; `sent_epoch - epoch` batches are
    /// in flight (at most 1 in pipelined mode, 0 otherwise).
    sent_epoch: u64,
    /// Every live object's current position — the source of truth the
    /// per-worker appear/move/disappear translation derives from.
    positions: FastHashMap<ObjectId, Point>,
    /// Each installed query's owning worker (sticky from install time).
    owners: FastHashMap<QueryId, usize>,
    /// Stage breakdown of the last committed cycle.
    timings: CycleTimings,
    /// Cumulative stage totals.
    metrics: CoordinatorMetrics,
    /// Route-slice durations of in-flight epochs, oldest first, so each
    /// commit's [`CycleTimings`] pairs the route cost of *its* epoch
    /// with the wait/merge cost observed at commit time.
    route_pending: VecDeque<Duration>,
    /// Committed batches not yet handed to the caller (pipelined mode;
    /// out-of-band drains park batches here in order).
    ready: VecDeque<CycleDeltas>,
    /// Recycled [`CycleDeltas`] allocations for the merge commits.
    spare: Vec<CycleDeltas>,
    /// Reusable per-worker routing/encode buffers.
    lanes: Vec<WorkerLane>,
    /// Fan phase-2 translation out across scoped threads (pipelined
    /// mode on a multi-core host with more than one worker).
    route_parallel: bool,
}

impl ClusterCoordinator<ChannelTransport> {
    /// Spawn `config.workers` in-process workers on [`duplex`] channels,
    /// one thread each, and hand back the connected coordinator plus the
    /// worker join handles (join after [`shutdown`](Self::shutdown)).
    ///
    /// # Errors
    /// Any handshake refusal, as [`connect`](Self::connect).
    pub fn spawn_in_process(
        config: ClusterConfig,
    ) -> Result<(Self, Vec<WorkerHandle>), ClusterError> {
        let mut links = Vec::with_capacity(config.workers as usize);
        let mut handles = Vec::with_capacity(config.workers as usize);
        for _ in 0..config.workers {
            let (near, far) = duplex();
            links.push(near);
            handles.push(thread::spawn(move || run_worker(far)));
        }
        Ok((Self::connect(config, links)?, handles))
    }

    /// Spawn one replacement in-process worker and hot-swap it in for
    /// worker `w` via [`restart_worker`](Self::restart_worker).
    ///
    /// # Errors
    /// As [`restart_worker`](Self::restart_worker).
    pub fn restart_worker_in_process(&mut self, w: usize) -> Result<WorkerHandle, ClusterError> {
        let (near, far) = duplex();
        let handle = thread::spawn(move || run_worker(far));
        self.restart_worker(w, near)?;
        Ok(handle)
    }
}

impl ClusterCoordinator<TcpTransport> {
    /// Spawn `config.workers` workers as threads serving TCP loopback
    /// connections (one ephemeral listener each) and connect to them.
    ///
    /// # Errors
    /// Socket errors as [`ClusterError::Transport`]; handshake refusals
    /// as [`connect`](Self::connect).
    pub fn spawn_tcp_loopback(
        config: ClusterConfig,
    ) -> Result<(Self, Vec<WorkerHandle>), ClusterError> {
        let mut links = Vec::with_capacity(config.workers as usize);
        let mut handles = Vec::with_capacity(config.workers as usize);
        for _ in 0..config.workers {
            let (link, handle) = Self::spawn_tcp_worker()?;
            links.push(link);
            handles.push(handle);
        }
        Ok((Self::connect(config, links)?, handles))
    }

    /// Spawn one replacement TCP-loopback worker and hot-swap it in for
    /// worker `w` via [`restart_worker`](Self::restart_worker).
    ///
    /// # Errors
    /// As [`restart_worker`](Self::restart_worker).
    pub fn restart_worker_tcp_loopback(&mut self, w: usize) -> Result<WorkerHandle, ClusterError> {
        let (link, handle) = Self::spawn_tcp_worker()?;
        self.restart_worker(w, link)?;
        Ok(handle)
    }

    fn spawn_tcp_worker() -> Result<(TcpTransport, WorkerHandle), ClusterError> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| crate::transport::TransportError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| crate::transport::TransportError::Io(e.to_string()))?;
        let handle = thread::spawn(move || run_worker(TcpTransport::accept_one(&listener)?));
        Ok((TcpTransport::connect(addr)?, handle))
    }
}

impl<T: Transport> ClusterCoordinator<T> {
    /// Handshake with `links.len() == config.workers` already-serving
    /// workers: send each its `Hello` (worker index, grid, index
    /// backend, tile, coverage) and check the `HelloAck`.
    ///
    /// # Errors
    /// [`ClusterError::VersionSkew`] / typed worker rejections /
    /// [`ClusterError::Protocol`] on a malformed handshake.
    ///
    /// # Panics
    /// Panics if `links.len() != config.workers`, if `config.workers`
    /// is 0, or if `config.dim < config.workers`.
    pub fn connect(config: ClusterConfig, mut links: Vec<T>) -> Result<Self, ClusterError> {
        assert_eq!(
            links.len(),
            config.workers as usize,
            "one transport link per worker"
        );
        let partition = Partition::new(config.dim, config.workers, config.overlap);
        for (w, link) in links.iter_mut().enumerate() {
            Self::handshake(&config, &partition, w as u32, link, 0)?;
        }
        let lanes = (0..config.workers).map(|_| WorkerLane::default()).collect();
        // Fanning translation out only pays when there is real
        // parallelism to buy: more than one worker lane *and* more than
        // one hardware thread. The serial schedule is bit-identical.
        let route_parallel = config.pipeline && config.workers > 1 && available_threads() > 1;
        Ok(Self {
            partition,
            config,
            links,
            merge: MergeBuffer::new(config.workers as usize, 0),
            epoch: 0,
            sent_epoch: 0,
            positions: FastHashMap::default(),
            owners: FastHashMap::default(),
            timings: CycleTimings::default(),
            metrics: CoordinatorMetrics::default(),
            route_pending: VecDeque::new(),
            ready: VecDeque::new(),
            spare: Vec::new(),
            lanes,
            route_parallel,
        })
    }

    fn handshake(
        config: &ClusterConfig,
        partition: &Partition,
        w: u32,
        link: &mut T,
        expect_epoch: u64,
    ) -> Result<(), ClusterError> {
        let hello = ClusterMsg::Hello {
            version: WIRE_VERSION,
            worker: w,
            dim: config.dim,
            index: config.index,
            tile: partition.tile(w as usize),
            coverage: partition.coverage(w as usize),
        };
        link.send(&hello.to_frame())?;
        match ClusterMsg::from_frame(&link.recv()?)? {
            ClusterMsg::HelloAck {
                worker,
                version,
                epoch,
            } => {
                if version != WIRE_VERSION {
                    return Err(ClusterError::VersionSkew {
                        worker: w,
                        ours: WIRE_VERSION,
                        theirs: version,
                    });
                }
                if worker != w {
                    return Err(ClusterError::Protocol {
                        what: "HelloAck from the wrong worker index",
                    });
                }
                if epoch != expect_epoch {
                    return Err(ClusterError::EpochGap {
                        worker: w,
                        expected: expect_epoch,
                        got: epoch,
                    });
                }
                Ok(())
            }
            ClusterMsg::Reject { worker, reject } => Err(ClusterError::from_reject(worker, reject)),
            _ => Err(ClusterError::Protocol {
                what: "handshake expected a HelloAck",
            }),
        }
    }

    /// The partition map the cluster routes over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Epoch of the last committed cycle (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches sent but not yet merged (0 ≤ in-flight ≤ 1).
    pub fn in_flight(&self) -> u64 {
        self.sent_epoch - self.epoch
    }

    /// Currently live (routed) object count.
    pub fn objects(&self) -> usize {
        self.positions.len()
    }

    /// The worker owning query `id`, if installed.
    pub fn owner(&self, id: QueryId) -> Option<usize> {
        self.owners.get(&id).copied()
    }

    /// Route query maintenance to the owning workers *between* cycles
    /// (no epoch advance): installs pick their owner by anchor tile,
    /// updates and terminations go to the sticky owner. Each contacted
    /// worker applies the sub-batch and re-certifies its coverage. In
    /// pipelined mode the pipeline is drained first (this is a strict
    /// request/reply exchange); the drained batches are handed out by
    /// subsequent submits.
    ///
    /// # Errors
    /// Typed routing refusals ([`ClusterError::QueryOutOfTile`],
    /// [`ClusterError::Protocol`] for composite/unknown queries) before
    /// anything is sent; worker rejections (engine errors,
    /// [`ClusterError::CoverageExceeded`]) after.
    pub fn install(&mut self, events: &[SpecEvent<AnyQuerySpec>]) -> Result<(), ClusterError> {
        self.drain_in_flight()?;
        let (batches, owners) = self.route_queries(events)?;
        self.owners = owners;
        for (w, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let msg = ClusterMsg::Install {
                payload: batch.encode_to_vec(),
            };
            self.links[w].send(&msg.to_frame())?;
        }
        for (w, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match ClusterMsg::from_frame(&self.links[w].recv()?)? {
                ClusterMsg::Ack { .. } => {}
                ClusterMsg::Reject { worker, reject } => {
                    return Err(ClusterError::from_reject(worker, reject))
                }
                _ => {
                    return Err(ClusterError::Protocol {
                        what: "install expected an Ack",
                    })
                }
            }
        }
        Ok(())
    }

    /// Run one cluster-wide processing cycle to completion: translate
    /// and route the global batches, collect every worker's deltas, and
    /// commit the epoch-aligned merge. The returned batch is
    /// bit-identical to what a single-node [`cpm_core::CpmServer`] emits
    /// for the same cycle.
    ///
    /// On a pipelined coordinator this degrades to the synchronous
    /// schedule (the in-flight window is drained every call) while still
    /// using the parallel routing slice; use
    /// [`submit_cycle`](Self::submit_cycle) to overlap epochs. Batches
    /// are handed out oldest-first, so mixing the two APIs is safe.
    ///
    /// # Errors
    /// Typed routing refusals before anything is sent; worker
    /// rejections, transport and merge errors after (the cycle is then
    /// poisoned — see the [module docs](self) failure model).
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<CycleDeltas, ClusterError> {
        self.route_and_send(object_events, query_events)?;
        self.drain_in_flight()?;
        self.ready.pop_front().ok_or(ClusterError::Protocol {
            what: "drained pipeline produced no merged batch",
        })
    }

    /// Submit one cycle into the pipeline and return the oldest merged
    /// batch once the pipeline is full — `None` on the priming call(s).
    /// On a serial (non-pipelined) coordinator the pipeline depth is 0
    /// and this always returns the submitted cycle's batch.
    ///
    /// The overlap: while the workers compute the epoch submitted here,
    /// the *next* call's routing/encode slice runs on the coordinator,
    /// and the merge barrier drains the previous epoch — route *e+1* /
    /// compute *e* / merge *e−1*.
    ///
    /// # Errors
    /// As [`process_cycle`](Self::process_cycle).
    pub fn submit_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<Option<CycleDeltas>, ClusterError> {
        self.route_and_send(object_events, query_events)?;
        let depth = u64::from(self.config.pipeline);
        while self.in_flight() > depth {
            self.collect_one()?;
        }
        Ok(self.ready.pop_front())
    }

    /// Drain the pipeline: collect and merge every in-flight epoch and
    /// return all merged batches not yet handed out, oldest first. Call
    /// at end of stream (or before tearing the cluster down) after a
    /// [`submit_cycle`](Self::submit_cycle) loop.
    ///
    /// # Errors
    /// As [`process_cycle`](Self::process_cycle).
    pub fn flush(&mut self) -> Result<Vec<CycleDeltas>, ClusterError> {
        self.drain_in_flight()?;
        Ok(self.ready.drain(..).collect())
    }

    /// Per-stage timings of the last committed cycle.
    pub fn last_cycle_timings(&self) -> CycleTimings {
        self.timings
    }

    /// Cumulative per-stage totals across all committed cycles.
    pub fn metrics(&self) -> CoordinatorMetrics {
        self.metrics
    }

    /// Return the cumulative per-stage totals and reset the accumulators
    /// to zero, so a caller can scope the averages to a window (e.g. a
    /// benchmark's measured cycles, excluding warmup).
    pub fn take_metrics(&mut self) -> CoordinatorMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// Coordinator-side merge cost of the last committed cycle: payload
    /// reassembly into the epoch barrier, engine-delta decoding and the
    /// canonical query-id interleave. This is the cost the cluster adds
    /// *serially* on the coordinator regardless of how many cores the
    /// host gives the workers, which is why the bench gate bounds it
    /// (total cycle cost also depends on host parallelism; see
    /// `cpm-bench`'s cluster module). Equal to
    /// [`last_cycle_timings`](Self::last_cycle_timings)`.merge`.
    pub fn last_cycle_merge(&self) -> Duration {
        self.timings.merge
    }

    /// [`process_cycle`](Self::process_cycle), publishing the merged
    /// batch into a subscription fan-out — the hub-boundary handoff: the
    /// fan-out (and every [`cpm_sub::Replica`] downstream) cannot tell a
    /// cluster from a single node. The merged batch is recycled through
    /// the coordinator's spare pool (the `_into` idiom), so this path
    /// performs no per-cycle `CycleDeltas` clone.
    ///
    /// # Errors
    /// As [`process_cycle`](Self::process_cycle).
    pub fn process_cycle_fanout(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
        fanout: &mut DeltaFanout,
    ) -> Result<CycleReceipt, ClusterError> {
        let merged = self.process_cycle(object_events, query_events)?;
        let receipt = fanout.publish(&merged);
        self.spare.push(merged);
        Ok(receipt)
    }

    /// Hot-swap worker `w`: drain the pipeline (worker epochs must be
    /// aligned before state moves), capture the worker's engine snapshot
    /// over the old link, shut the old worker down, handshake the
    /// replacement serving on `replacement`, and seed it with the
    /// snapshot. The cluster resumes at the current epoch with no other
    /// worker involved.
    ///
    /// # Errors
    /// Transport/handshake/restore failures as typed errors; on error
    /// the old link may already be gone (rebuild the cluster).
    pub fn restart_worker(&mut self, w: usize, mut replacement: T) -> Result<(), ClusterError> {
        self.drain_in_flight()?;
        self.links[w].send(&ClusterMsg::SnapshotReq.to_frame())?;
        let snapshot = match ClusterMsg::from_frame(&self.links[w].recv()?)? {
            ClusterMsg::SnapshotXfer { payload, .. } => payload,
            ClusterMsg::Reject { worker, reject } => {
                return Err(ClusterError::from_reject(worker, reject))
            }
            _ => {
                return Err(ClusterError::Protocol {
                    what: "snapshot request expected a SnapshotXfer",
                })
            }
        };
        self.links[w].send(&ClusterMsg::Shutdown.to_frame())?;
        // A fresh worker starts at epoch 0; the snapshot then fast-forwards
        // it to the cluster epoch.
        Self::handshake(&self.config, &self.partition, w as u32, &mut replacement, 0)?;
        let xfer = ClusterMsg::SnapshotXfer {
            worker: w as u32,
            epoch: self.epoch,
            payload: snapshot,
        };
        replacement.send(&xfer.to_frame())?;
        match ClusterMsg::from_frame(&replacement.recv()?)? {
            ClusterMsg::Ack { epoch, .. } if epoch == self.epoch => {}
            ClusterMsg::Ack { epoch, .. } => {
                return Err(ClusterError::EpochGap {
                    worker: w as u32,
                    expected: self.epoch,
                    got: epoch,
                })
            }
            ClusterMsg::Reject { worker, reject } => {
                return Err(ClusterError::from_reject(worker, reject))
            }
            _ => {
                return Err(ClusterError::Protocol {
                    what: "snapshot transfer expected an Ack",
                })
            }
        }
        self.links[w] = replacement;
        Ok(())
    }

    /// Shut every worker down cleanly. Join the spawn handles afterwards
    /// to observe their exit status. Merged batches still parked in the
    /// pipeline are discarded — [`flush`](Self::flush) first if they
    /// matter.
    ///
    /// # Errors
    /// The first send failure (a worker that already hung up).
    pub fn shutdown(mut self) -> Result<(), ClusterError> {
        for link in &mut self.links {
            link.send(&ClusterMsg::Shutdown.to_frame())?;
        }
        Ok(())
    }

    /// Route, translate, encode and send one cycle's batches (the
    /// pipeline's fill half). A typed refusal returns before any map
    /// commit or send, leaving the coordinator — including in-flight
    /// epochs — untouched.
    fn route_and_send(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<(), ClusterError> {
        let epoch = self.sent_epoch + 1;
        let t = Instant::now();
        let (query_owners, owners) = self.plan_queries(query_events)?;
        let (object_origins, position_overlay) = self.plan_objects(object_events)?;
        // Phase 2: per-worker translation + encoding. Each lane is a
        // pure function of the plans and the partition, so the parallel
        // and serial schedules produce bit-identical frames.
        let partition = &self.partition;
        let run = |(w, lane): (usize, &mut WorkerLane)| {
            translate_worker(
                partition,
                w,
                epoch,
                object_events,
                &object_origins,
                query_events,
                &query_owners,
                lane,
            );
        };
        if self.route_parallel {
            thread::scope(|s| {
                for item in self.lanes.iter_mut().enumerate() {
                    s.spawn(move || run(item));
                }
            });
        } else {
            self.lanes.iter_mut().enumerate().for_each(run);
        }
        self.owners = owners;
        self.commit_objects(position_overlay);
        // Stamp the routing slice *before* the sends: a send wakes the
        // receiving worker, which on a saturated host can preempt this
        // thread and run part of its cycle before `elapsed()` is read —
        // that time belongs to the worker-wait slice, not routing.
        let routed = t.elapsed();
        for (lane, link) in self.lanes.iter().zip(&mut self.links) {
            link.send(&lane.frame)?;
        }
        self.route_pending.push_back(routed);
        self.sent_epoch = epoch;
        Ok(())
    }

    /// Collect every worker's reply for the oldest in-flight epoch,
    /// commit the merge barrier, and park the merged batch on the ready
    /// queue (the pipeline's drain half).
    fn collect_one(&mut self) -> Result<(), ClusterError> {
        debug_assert!(self.in_flight() > 0, "no epoch in flight to collect");
        let mut wait = Duration::ZERO;
        let mut merge_spent = Duration::ZERO;
        for link in &mut self.links {
            let t = Instant::now();
            let frame = link.recv()?;
            wait += t.elapsed();
            match ClusterMsg::from_frame(&frame)? {
                ClusterMsg::Deltas {
                    worker,
                    epoch: got,
                    payload,
                } => {
                    let t = Instant::now();
                    self.merge.offer(worker, got, payload)?;
                    merge_spent += t.elapsed();
                }
                ClusterMsg::Reject { worker, reject } => {
                    return Err(ClusterError::from_reject(worker, reject))
                }
                _ => {
                    return Err(ClusterError::Protocol {
                        what: "cycle expected a Deltas batch",
                    })
                }
            }
        }
        let t = Instant::now();
        let mut merged = self.spare.pop().unwrap_or_default();
        let committed = self.merge.try_commit_into(&mut merged)?;
        merge_spent += t.elapsed();
        if !committed {
            return Err(ClusterError::Protocol {
                what: "all workers replied yet the merge barrier is incomplete",
            });
        }
        self.epoch = merged.epoch;
        self.timings = CycleTimings {
            route: self.route_pending.pop_front().unwrap_or_default(),
            worker_wait: wait,
            merge: merge_spent,
        };
        self.metrics.record(self.timings);
        self.ready.push_back(merged);
        Ok(())
    }

    /// Collect until no epoch is in flight (merged batches stay parked
    /// on the ready queue).
    fn drain_in_flight(&mut self) -> Result<(), ClusterError> {
        while self.in_flight() > 0 {
            self.collect_one()?;
        }
        Ok(())
    }

    /// Route query events to per-worker batches against a *copy* of the
    /// ownership map, so a refusal leaves the coordinator untouched.
    /// (The out-of-band install path; the per-cycle path keeps the
    /// phase-1 plan and lets [`translate_worker`] group.)
    #[allow(clippy::type_complexity)]
    fn route_queries(
        &self,
        events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<
        (
            Vec<Vec<SpecEvent<AnyQuerySpec>>>,
            FastHashMap<QueryId, usize>,
        ),
        ClusterError,
    > {
        let (plan, owners) = self.plan_queries(events)?;
        let mut batches = vec![Vec::new(); self.links.len()];
        for (ev, &w) in events.iter().zip(&plan) {
            batches[w].push(ev.clone());
        }
        Ok((batches, owners))
    }

    /// Phase 1 of query routing: validate every event in order and
    /// resolve its owning worker against a *copy* of the ownership map,
    /// so a refusal leaves the coordinator untouched. Returns the
    /// per-event owner plan and the updated map.
    #[allow(clippy::type_complexity)]
    fn plan_queries(
        &self,
        events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<(Vec<usize>, FastHashMap<QueryId, usize>), ClusterError> {
        let mut owners = self.owners.clone();
        let mut plan = Vec::with_capacity(events.len());
        for ev in events {
            let w = match ev {
                SpecEvent::Install { id, spec, .. } => {
                    let Some(anchor) = anchor_of(spec) else {
                        return Err(ClusterError::Protocol {
                            what: "composite (RNN) queries cannot be installed on a cluster",
                        });
                    };
                    if owners.contains_key(id) {
                        return Err(ClusterError::Protocol {
                            what: "install of a query id that is already installed",
                        });
                    }
                    let w = self.partition.owner_of(anchor);
                    owners.insert(*id, w);
                    w
                }
                SpecEvent::Update { id, spec } => {
                    let Some(&w) = owners.get(id) else {
                        return Err(ClusterError::Protocol {
                            what: "update of a query the coordinator never installed",
                        });
                    };
                    let Some(anchor) = anchor_of(spec) else {
                        return Err(ClusterError::Protocol {
                            what: "composite (RNN) queries cannot be installed on a cluster",
                        });
                    };
                    // Sticky ownership: the anchor must stay on the
                    // owner's tile.
                    if self.partition.owner_of(anchor) != w {
                        return Err(ClusterError::QueryOutOfTile {
                            qid: *id,
                            tile: self.partition.tile(w),
                        });
                    }
                    w
                }
                SpecEvent::Terminate { id } => {
                    let Some(w) = owners.remove(id) else {
                        return Err(ClusterError::Protocol {
                            what: "terminate of a query the coordinator never installed",
                        });
                    };
                    w
                }
            };
            plan.push(w);
        }
        Ok((plan, owners))
    }

    /// Phase 1 of object routing: validate every event in order against
    /// the position map *plus a batch-local overlay* and record each
    /// event's **origin** (the pre-event position; `None` for appears) —
    /// everything the per-worker translation needs. The overlay keeps
    /// phase 1 `O(batch)` instead of `O(N)` (no full-map copy per
    /// cycle — routing is on the pipelined hot path) while preserving
    /// the refusal contract: nothing commits until
    /// [`commit_objects`](Self::commit_objects) applies the overlay.
    #[allow(clippy::type_complexity)]
    fn plan_objects(
        &self,
        events: &[ObjectEvent],
    ) -> Result<(Vec<Option<Point>>, FastHashMap<ObjectId, Option<Point>>), ClusterError> {
        // `Some(p)`: the object sits at `p` after the batch so far;
        // `None`: it disappeared. Absent: fall through to the live map.
        let mut overlay: FastHashMap<ObjectId, Option<Point>> = FastHashMap::default();
        let current = |overlay: &FastHashMap<ObjectId, Option<Point>>, id: &ObjectId| {
            overlay
                .get(id)
                .copied()
                .unwrap_or_else(|| self.positions.get(id).copied())
        };
        let mut plan = Vec::with_capacity(events.len());
        for ev in events {
            let origin = match *ev {
                ObjectEvent::Appear { id, pos } => {
                    if current(&overlay, &id).is_some() {
                        return Err(ClusterError::Protocol {
                            what: "appear of an object that is already live",
                        });
                    }
                    overlay.insert(id, Some(pos));
                    None
                }
                ObjectEvent::Move { id, to } => {
                    let Some(old) = current(&overlay, &id) else {
                        return Err(ClusterError::Protocol {
                            what: "move of an object that is not live",
                        });
                    };
                    overlay.insert(id, Some(to));
                    Some(old)
                }
                ObjectEvent::Disappear { id } => {
                    let Some(old) = current(&overlay, &id) else {
                        return Err(ClusterError::Protocol {
                            what: "disappear of an object that is not live",
                        });
                    };
                    overlay.insert(id, None);
                    Some(old)
                }
            };
            plan.push(origin);
        }
        Ok((plan, overlay))
    }

    /// Apply a validated phase-1 overlay to the live position map (the
    /// overlay already resolved last-wins within the batch, so entry
    /// order does not matter).
    fn commit_objects(&mut self, overlay: FastHashMap<ObjectId, Option<Point>>) {
        for (id, pos) in overlay {
            match pos {
                Some(p) => {
                    self.positions.insert(id, p);
                }
                None => {
                    self.positions.remove(&id);
                }
            }
        }
    }
}

/// Phase 2 of routing for one worker: translate the global object
/// events relative to its coverage (appear/move/disappear rewriting),
/// group its query events, and encode the outgoing `Batch` frame — all
/// into the lane's recycled buffers.
///
/// A pure function of the phase-1 plans and the partition map: workers'
/// lanes are disjoint, so the per-lane calls run in any order (or in
/// parallel) with bit-identical results.
#[allow(clippy::too_many_arguments)]
fn translate_worker(
    partition: &Partition,
    w: usize,
    epoch: u64,
    object_events: &[ObjectEvent],
    object_origins: &[Option<Point>],
    query_events: &[SpecEvent<AnyQuerySpec>],
    query_owners: &[usize],
    lane: &mut WorkerLane,
) {
    lane.objects.clear();
    for (ev, origin) in object_events.iter().zip(object_origins) {
        match *ev {
            ObjectEvent::Appear { id, pos } => {
                if partition.covers(w, pos) {
                    lane.objects.push(ObjectEvent::Appear { id, pos });
                }
            }
            ObjectEvent::Move { id, to } => {
                let old = origin.expect("phase 1 recorded the pre-move position");
                let was = partition.covers(w, old);
                let is = partition.covers(w, to);
                match (was, is) {
                    (true, true) => lane.objects.push(ObjectEvent::Move { id, to }),
                    (false, true) => lane.objects.push(ObjectEvent::Appear { id, pos: to }),
                    (true, false) => lane.objects.push(ObjectEvent::Disappear { id }),
                    (false, false) => {}
                }
            }
            ObjectEvent::Disappear { id } => {
                let old = origin.expect("phase 1 recorded the last position");
                if partition.covers(w, old) {
                    lane.objects.push(ObjectEvent::Disappear { id });
                }
            }
        }
    }
    lane.qevents.clear();
    for (ev, &owner) in query_events.iter().zip(query_owners) {
        if owner == w {
            lane.qevents.push(ev.clone());
        }
    }
    lane.qevents.encode_into(&mut lane.queries);
    BatchRef {
        epoch,
        objects: &lane.objects,
        queries: &lane.queries,
    }
    .to_frame_into(&mut lane.frame);
}

/// Hardware threads available to this process (1 when undetectable).
fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
