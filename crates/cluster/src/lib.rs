//! # cpm-cluster — multi-node CPM behind a routing coordinator
//!
//! The sharded engine parallelizes maintenance inside one process; this
//! crate is the next scale step: the workspace is partitioned into
//! rectangular tiles over the grid geometry, each tile owned by a
//! **worker** running its own [`cpm_core::CpmServer`], and a
//! **coordinator** routes update batches, installs queries, and merges
//! the epoch-numbered per-cycle delta batches the workers ship back over
//! `cpm-wire` frames.
//!
//! * [`partition`] — tiles, coverage regions and the influence-region
//!   certificate behind the single-node-equivalence guarantee.
//! * [`transport`] / [`tcp`] — the [`Transport`] boundary: a
//!   deterministic in-process duplex channel and a `std::net::TcpStream`
//!   loopback backend (no extra dependencies).
//! * [`worker`] — the serve loop: validate, run the cycle, ship deltas;
//!   every refusal is a typed [`ClusterError`], never a silent drop.
//! * [`merge`] — the coordinator's epoch-aligned barrier and canonical
//!   ascending-query-id merge.
//! * [`coordinator`] — query installation, object routing with
//!   boundary-overlap replication, worker restart via snapshot
//!   transfer, and the merged delta stream (which feeds the `cpm-sub`
//!   fan-out unchanged).
//!
//! The correctness bar is the house one: `cpm_sim::verify_cluster`
//! proves the merged cross-node delta stream and changed lists
//! **bit-identical** to a single-node server across worker counts,
//! transports, index backends and a mid-run worker restart.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod error;
pub mod merge;
pub mod partition;
pub mod tcp;
pub mod transport;
pub mod worker;

pub use coordinator::{
    ClusterConfig, ClusterCoordinator, CoordinatorMetrics, CycleTimings, WorkerHandle,
};
pub use error::ClusterError;
pub use merge::{merge_deltas, merge_deltas_into, MergeBuffer};
pub use partition::{anchor_of, influence_bbox, Partition};
pub use tcp::TcpTransport;
pub use transport::{duplex, ChannelTransport, Transport, TransportError};
pub use worker::{run_worker, ClusterWorker};
