//! Epoch-aligned deterministic merging of per-worker delta batches.
//!
//! Workers ship one engine-encoded `CycleDeltas` per cycle. The
//! [`MergeBuffer`] is the coordinator's reassembly point: it holds each
//! worker's payloads keyed by epoch, enforces per-worker epoch
//! contiguity (the transports are FIFO, so an out-of-order epoch from
//! one worker means a frame was lost — a typed
//! [`ClusterError::EpochGap`], never a silent skip), absorbs
//! at-least-once redelivery (byte-identical duplicates collapse;
//! conflicting payloads for one epoch are a typed
//! [`ClusterError::ConflictingDeltas`]), and commits an epoch only when
//! **every** worker's batch for it has arrived — the epoch-aligned
//! barrier that makes a mixed-epoch commit impossible by construction.
//!
//! Committed batches merge in canonical ascending query-id order
//! ([`merge_deltas`]): query ownership is disjoint across workers, so
//! the merge is a permutation-free interleave and the result is
//! bit-identical to the single-node engine's `CycleDeltas` for the same
//! cycle.

use cpm_core::CycleDeltas;
use cpm_wire::Decode;
use std::collections::BTreeMap;

use crate::error::ClusterError;

/// Reassembles per-worker delta payloads into committed epochs.
#[derive(Debug)]
pub struct MergeBuffer {
    /// Per worker: payloads received but not yet committed, by epoch.
    pending: Vec<BTreeMap<u64, Vec<u8>>>,
    /// Per worker: highest epoch received (contiguously) from it.
    delivered: Vec<u64>,
    /// The epoch the next commit will carry.
    next_epoch: u64,
}

impl MergeBuffer {
    /// A buffer for `workers` workers whose engines are currently at
    /// `epoch` (the next committed cycle will be `epoch + 1`).
    pub fn new(workers: usize, epoch: u64) -> Self {
        assert!(workers >= 1, "a merge needs at least one worker");
        Self {
            pending: vec![BTreeMap::new(); workers],
            delivered: vec![epoch; workers],
            next_epoch: epoch + 1,
        }
    }

    /// The epoch the next commit will produce.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Feed one `Deltas` payload from `worker`.
    ///
    /// * a byte-identical redelivery of a pending epoch is absorbed;
    /// * a redelivery of an epoch at or below the worker's contiguous
    ///   high-water mark is ignored (already committed or pending);
    ///   if still pending, its bytes must match;
    /// * an epoch that skips ahead of the contiguous sequence is a typed
    ///   [`ClusterError::EpochGap`];
    /// * two different payloads for one epoch are a typed
    ///   [`ClusterError::ConflictingDeltas`].
    pub fn offer(&mut self, worker: u32, epoch: u64, payload: Vec<u8>) -> Result<(), ClusterError> {
        let w = worker as usize;
        assert!(w < self.pending.len(), "worker index out of range");
        if epoch <= self.delivered[w] {
            if let Some(existing) = self.pending[w].get(&epoch) {
                if *existing != payload {
                    return Err(ClusterError::ConflictingDeltas { worker, epoch });
                }
            }
            return Ok(());
        }
        if epoch != self.delivered[w] + 1 {
            return Err(ClusterError::EpochGap {
                worker,
                expected: self.delivered[w] + 1,
                got: epoch,
            });
        }
        self.delivered[w] = epoch;
        self.pending[w].insert(epoch, payload);
        Ok(())
    }

    /// `true` once every worker's batch for the next epoch has arrived.
    pub fn ready(&self) -> bool {
        self.pending
            .iter()
            .all(|p| p.contains_key(&self.next_epoch))
    }

    /// Commit the next epoch if the barrier is complete: decode every
    /// worker's payload, verify the stamped epochs agree, and merge in
    /// canonical query-id order. Returns `None` while batches are still
    /// missing.
    pub fn try_commit(&mut self) -> Result<Option<CycleDeltas>, ClusterError> {
        let mut out = CycleDeltas::default();
        Ok(self.try_commit_into(&mut out)?.then_some(out))
    }

    /// [`try_commit`](Self::try_commit) through the recycled-batch
    /// `_into` idiom: on a complete barrier the merged batch replaces
    /// `out`'s contents (reusing its allocations) and `true` is
    /// returned; otherwise `out` is untouched and `false` is returned.
    ///
    /// # Errors
    /// As [`try_commit`](Self::try_commit).
    pub fn try_commit_into(&mut self, out: &mut CycleDeltas) -> Result<bool, ClusterError> {
        if !self.ready() {
            return Ok(false);
        }
        let epoch = self.next_epoch;
        let mut parts = Vec::with_capacity(self.pending.len());
        for p in &mut self.pending {
            let payload = p.remove(&epoch).expect("barrier checked");
            parts.push(CycleDeltas::decode_all(&payload)?);
        }
        merge_deltas_into(parts, epoch, out)?;
        self.next_epoch += 1;
        Ok(true)
    }
}

/// Merge per-worker `CycleDeltas` for one epoch into the cluster-wide
/// batch, in canonical ascending query-id order — the same order the
/// single-node engine emits. Every part must be stamped with `epoch`
/// (a mismatch is a typed protocol error: committing it would mix
/// epochs).
pub fn merge_deltas(parts: Vec<CycleDeltas>, epoch: u64) -> Result<CycleDeltas, ClusterError> {
    let mut merged = CycleDeltas::default();
    merge_deltas_into(parts, epoch, &mut merged)?;
    Ok(merged)
}

/// [`merge_deltas`] through the recycled-batch `_into` idiom: the merged
/// batch replaces `out`'s contents, reusing its allocations.
///
/// # Errors
/// As [`merge_deltas`]. On error `out` holds partially merged state and
/// must not be read (the cycle is poisoned anyway).
pub fn merge_deltas_into(
    parts: Vec<CycleDeltas>,
    epoch: u64,
    out: &mut CycleDeltas,
) -> Result<(), ClusterError> {
    out.epoch = epoch;
    out.changed.clear();
    out.deltas.clear();
    for part in parts {
        if part.epoch != epoch {
            return Err(ClusterError::Protocol {
                what: "worker delta batch stamped with a different epoch (mixed-epoch commit)",
            });
        }
        out.changed.extend(part.changed);
        out.deltas.extend(part.deltas);
    }
    // Ownership is disjoint, so sorting by query id is a pure interleave
    // — exactly the canonical order `CycleDeltas::canonicalize` pins.
    out.changed.sort_unstable();
    out.deltas.sort_unstable_by_key(|(qid, _)| *qid);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::delta::DeltaBuf;
    use cpm_core::NeighborDelta;
    use cpm_geom::{ObjectId, QueryId};
    use cpm_wire::Encode;

    /// A tiny synthetic per-worker batch: `qids` changed, one delta per
    /// qid removing object `epoch`.
    fn batch(epoch: u64, qids: &[u32]) -> CycleDeltas {
        CycleDeltas {
            epoch,
            changed: qids.iter().map(|&q| QueryId(q)).collect(),
            deltas: qids
                .iter()
                .map(|&q| {
                    let mut removed = DeltaBuf::new();
                    removed.push(ObjectId(epoch as u32));
                    (
                        QueryId(q),
                        NeighborDelta {
                            epoch,
                            added: DeltaBuf::new(),
                            removed,
                            reordered: DeltaBuf::new(),
                        },
                    )
                })
                .collect(),
        }
    }

    fn payload(epoch: u64, qids: &[u32]) -> Vec<u8> {
        batch(epoch, qids).encode_to_vec()
    }

    #[test]
    fn barrier_commits_only_complete_epochs_in_canonical_order() {
        let mut m = MergeBuffer::new(2, 0);
        m.offer(0, 1, payload(1, &[0, 4])).unwrap();
        assert!(m.try_commit().unwrap().is_none(), "worker 1 still missing");
        m.offer(1, 1, payload(1, &[2])).unwrap();
        let c = m.try_commit().unwrap().unwrap();
        assert_eq!(c.epoch, 1);
        assert_eq!(c.changed, vec![QueryId(0), QueryId(2), QueryId(4)]);
        let qids: Vec<u32> = c.deltas.iter().map(|(q, _)| q.0).collect();
        assert_eq!(qids, vec![0, 2, 4]);
        assert_eq!(m.next_epoch(), 2);
    }

    #[test]
    fn duplicates_collapse_and_conflicts_are_typed() {
        let mut m = MergeBuffer::new(1, 0);
        m.offer(0, 1, payload(1, &[3])).unwrap();
        // Byte-identical redelivery: absorbed.
        m.offer(0, 1, payload(1, &[3])).unwrap();
        // Same epoch, different bytes: refused.
        assert_eq!(
            m.offer(0, 1, payload(1, &[5])),
            Err(ClusterError::ConflictingDeltas {
                worker: 0,
                epoch: 1
            })
        );
    }

    #[test]
    fn skipping_an_epoch_is_a_typed_gap() {
        let mut m = MergeBuffer::new(1, 0);
        m.offer(0, 1, payload(1, &[1])).unwrap();
        assert_eq!(
            m.offer(0, 3, payload(3, &[1])),
            Err(ClusterError::EpochGap {
                worker: 0,
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn stale_redelivery_of_a_committed_epoch_is_ignored() {
        let mut m = MergeBuffer::new(1, 0);
        m.offer(0, 1, payload(1, &[1])).unwrap();
        m.try_commit().unwrap().unwrap();
        m.offer(0, 1, payload(1, &[1])).unwrap();
        assert!(m.try_commit().unwrap().is_none());
        m.offer(0, 2, payload(2, &[1])).unwrap();
        assert_eq!(m.try_commit().unwrap().unwrap().epoch, 2);
    }

    #[test]
    fn mismatched_epoch_stamp_cannot_commit() {
        // A payload whose *stamped* epoch disagrees with its frame epoch
        // would mix epochs in one commit; the merge refuses.
        let mut m = MergeBuffer::new(1, 0);
        m.offer(0, 1, payload(9, &[1])).unwrap();
        assert!(matches!(m.try_commit(), Err(ClusterError::Protocol { .. })));
    }

    #[test]
    fn corrupt_payload_bytes_are_wire_errors() {
        let mut m = MergeBuffer::new(1, 0);
        let mut bytes = payload(1, &[1]);
        bytes.truncate(bytes.len() - 1);
        m.offer(0, 1, bytes).unwrap();
        assert!(matches!(m.try_commit(), Err(ClusterError::Wire(_))));
    }

    mod prop {
        use super::*;
        use cpm_gen::{Corruption, FaultPlan};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Replay a mangled frame schedule into a fresh buffer exactly as
        /// the coordinator would — decode each `ClusterMsg::Deltas` frame
        /// (this is where the CRC catches in-flight damage), then offer
        /// its payload. Returns the committed epochs, or the typed error
        /// that stopped them.
        fn drive(workers: u32, frames: &[Vec<u8>]) -> Result<Vec<CycleDeltas>, ClusterError> {
            let mut m = MergeBuffer::new(workers as usize, 0);
            let mut committed = Vec::new();
            for f in frames {
                match cpm_wire::cluster::ClusterMsg::from_frame(f)? {
                    cpm_wire::cluster::ClusterMsg::Deltas {
                        worker,
                        epoch,
                        payload,
                    } => m.offer(worker, epoch, payload)?,
                    _ => {
                        return Err(ClusterError::Protocol {
                            what: "delta plane expected a Deltas frame",
                        })
                    }
                }
                while let Some(c) = m.try_commit()? {
                    committed.push(c);
                }
            }
            Ok(committed)
        }

        /// Like [`drive`], but modeling the pipelined coordinator's
        /// barrier cadence: commits are only attempted every
        /// `drain_every` frames (and once at the end), so several
        /// epochs sit in the buffer simultaneously before draining —
        /// exactly the route-*e+1* / compute-*e* / merge-*e−1* overlap.
        fn drive_pipelined(
            workers: u32,
            frames: &[Vec<u8>],
            drain_every: usize,
        ) -> Result<Vec<CycleDeltas>, ClusterError> {
            let mut m = MergeBuffer::new(workers as usize, 0);
            let mut committed = Vec::new();
            for (i, f) in frames.iter().enumerate() {
                match cpm_wire::cluster::ClusterMsg::from_frame(f)? {
                    cpm_wire::cluster::ClusterMsg::Deltas {
                        worker,
                        epoch,
                        payload,
                    } => m.offer(worker, epoch, payload)?,
                    _ => {
                        return Err(ClusterError::Protocol {
                            what: "delta plane expected a Deltas frame",
                        })
                    }
                }
                if (i + 1) % drain_every == 0 {
                    while let Some(c) = m.try_commit()? {
                        committed.push(c);
                    }
                }
            }
            while let Some(c) = m.try_commit()? {
                committed.push(c);
            }
            Ok(committed)
        }

        /// Interleave the per-(worker, epoch) frames into a pipelined
        /// arrival order: per-worker epoch order is preserved (the
        /// transports are FIFO) but workers run ahead of each other by
        /// up to `lead` epochs — with `lead = 2`, epochs e−1, e and
        /// e+1 are all in flight at once.
        fn pipelined_interleave(
            rng: &mut StdRng,
            workers: u32,
            frames: &[Vec<u8>],
            lead: u64,
        ) -> Vec<Vec<u8>> {
            // frames[] is epoch-major: frame for (worker w, epoch e) at
            // index (e - 1) * workers + w.
            let mut next: Vec<u64> = vec![0; workers as usize];
            let epochs = frames.len() as u64 / u64::from(workers);
            let mut out = Vec::with_capacity(frames.len());
            while out.len() < frames.len() {
                let floor = next
                    .iter()
                    .filter(|&&e| e < epochs)
                    .copied()
                    .min()
                    .expect("some worker still has frames");
                let eligible: Vec<usize> = (0..workers as usize)
                    .filter(|&w| next[w] < epochs && next[w] <= floor + lead)
                    .collect();
                let w = eligible[rng.gen_range(0..eligible.len())];
                out.push(frames[next[w] as usize * workers as usize + w].clone());
                next[w] += 1;
            }
            out
        }

        proptest! {
            /// Satellite: delayed/duplicated/reordered `Deltas` frames —
            /// the fault vocabulary of `cpm-gen`'s recovery plans applied
            /// to the delta plane — either merge identically to the
            /// clean schedule or surface a typed epoch-gap/conflict
            /// error; a commit never mixes epochs.
            #[test]
            fn faulted_delta_streams_merge_identically_or_fail_typed(
                seed in 0u64..1u64 << 48,
                workers in 1u32..4,
                epochs in 1u64..6,
            ) {
                let qid_of = |w: u32, e: u64| w + workers * (e as u32 % 2);
                // The clean per-worker schedule, one wire frame per
                // (worker, epoch) — the shape workers actually ship.
                let mut frames: Vec<Vec<u8>> = Vec::new();
                for e in 1..=epochs {
                    for w in 0..workers {
                        let msg = cpm_wire::cluster::ClusterMsg::Deltas {
                            worker: w,
                            epoch: e,
                            payload: payload(e, &[qid_of(w, e)]),
                        };
                        frames.push(msg.to_frame());
                    }
                }
                let reference = drive(workers, &frames).unwrap();
                prop_assert_eq!(reference.len() as u64, epochs);

                // Mangle the schedule with the seeded fault plan.
                let plan = FaultPlan::from_seed(seed, epochs as u32);
                let mut rng = StdRng::seed_from_u64(plan.site_seed);
                let mut mangled = frames.clone();
                match plan.corruption {
                    Corruption::None => {}
                    // The relay redelivered a frame (at-least-once).
                    Corruption::DuplicateFrame => {
                        let i = rng.gen_range(0..mangled.len());
                        let dup = mangled[i].clone();
                        let at = rng.gen_range(i..=mangled.len());
                        mangled.insert(at, dup);
                    }
                    // Two frames arrive swapped (delay = reorder).
                    Corruption::ReorderFrames => {
                        let i = rng.gen_range(0..mangled.len());
                        let j = rng.gen_range(0..mangled.len());
                        mangled.swap(i, j);
                    }
                    // The stream tail never arrives (indefinite delay):
                    // the barrier holds the incomplete epoch back and the
                    // committed prefix stays identical.
                    Corruption::TruncateTail => {
                        let keep = rng.gen_range(0..mangled.len());
                        mangled.truncate(keep);
                    }
                    // A frame got damaged in flight: the CRC (or header
                    // validation) catches it at decode as a typed wire
                    // error — damaged bytes never reach the merge.
                    Corruption::BitFlipJournal | Corruption::BitFlipSnapshot => {
                        let i = rng.gen_range(0..mangled.len());
                        let b = rng.gen_range(0..mangled[i].len());
                        mangled[i][b] ^= 1 << rng.gen_range(0..8u8);
                    }
                }

                match drive(workers, &mangled) {
                    Ok(committed) => {
                        // Every commit is epoch-pure and consecutive…
                        for (i, c) in committed.iter().enumerate() {
                            prop_assert_eq!(c.epoch, i as u64 + 1);
                            for (_, d) in &c.deltas {
                                prop_assert_eq!(d.epoch, c.epoch);
                            }
                        }
                        // …and a fully committed run is bit-identical to
                        // the clean schedule.
                        for (got, want) in committed.iter().zip(&reference) {
                            prop_assert_eq!(got, want);
                        }
                    }
                    Err(
                        ClusterError::EpochGap { .. }
                        | ClusterError::ConflictingDeltas { .. }
                        | ClusterError::Wire(_)
                        | ClusterError::Protocol { .. },
                    ) => {}
                    Err(other) => prop_assert!(false, "untyped failure: {}", other),
                }
            }

            /// The pipelined extension of the proptest above: frames
            /// arrive in a pipelined interleave (workers up to two
            /// epochs apart, so e−1, e and e+1 are in flight
            /// simultaneously), the barrier drains lazily, and the same
            /// delay/duplication/reorder/damage vocabulary is applied on
            /// top. The committed stream must still be bit-identical to
            /// the clean serial schedule, or fail typed.
            #[test]
            fn pipelined_in_flight_epochs_merge_identically_or_fail_typed(
                seed in 0u64..1u64 << 48,
                workers in 1u32..4,
                epochs in 3u64..7,
                lead in 1u64..3,
                drain_every in 1usize..4,
            ) {
                let qid_of = |w: u32, e: u64| w + workers * (e as u32 % 2);
                let mut frames: Vec<Vec<u8>> = Vec::new();
                for e in 1..=epochs {
                    for w in 0..workers {
                        let msg = cpm_wire::cluster::ClusterMsg::Deltas {
                            worker: w,
                            epoch: e,
                            payload: payload(e, &[qid_of(w, e)]),
                        };
                        frames.push(msg.to_frame());
                    }
                }
                // The serial reference and the clean pipelined schedule
                // must already agree: the interleave plus lazy draining
                // changes arrival order, never the committed stream.
                let reference = drive(workers, &frames).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let pipelined = pipelined_interleave(&mut rng, workers, &frames, lead);
                let clean = drive_pipelined(workers, &pipelined, drain_every).unwrap();
                prop_assert_eq!(&clean, &reference);

                // Mangle the pipelined arrival order with the same
                // seeded fault vocabulary.
                let plan = FaultPlan::from_seed(seed, epochs as u32);
                let mut rng = StdRng::seed_from_u64(plan.site_seed);
                let mut mangled = pipelined.clone();
                match plan.corruption {
                    Corruption::None => {}
                    Corruption::DuplicateFrame => {
                        let i = rng.gen_range(0..mangled.len());
                        let dup = mangled[i].clone();
                        let at = rng.gen_range(i..=mangled.len());
                        mangled.insert(at, dup);
                    }
                    Corruption::ReorderFrames => {
                        let i = rng.gen_range(0..mangled.len());
                        let j = rng.gen_range(0..mangled.len());
                        mangled.swap(i, j);
                    }
                    Corruption::TruncateTail => {
                        let keep = rng.gen_range(0..mangled.len());
                        mangled.truncate(keep);
                    }
                    Corruption::BitFlipJournal | Corruption::BitFlipSnapshot => {
                        let i = rng.gen_range(0..mangled.len());
                        let b = rng.gen_range(0..mangled[i].len());
                        mangled[i][b] ^= 1 << rng.gen_range(0..8u8);
                    }
                }

                match drive_pipelined(workers, &mangled, drain_every) {
                    Ok(committed) => {
                        for (i, c) in committed.iter().enumerate() {
                            prop_assert_eq!(c.epoch, i as u64 + 1);
                            for (_, d) in &c.deltas {
                                prop_assert_eq!(d.epoch, c.epoch);
                            }
                        }
                        for (got, want) in committed.iter().zip(&reference) {
                            prop_assert_eq!(got, want);
                        }
                    }
                    Err(
                        ClusterError::EpochGap { .. }
                        | ClusterError::ConflictingDeltas { .. }
                        | ClusterError::Wire(_)
                        | ClusterError::Protocol { .. },
                    ) => {}
                    Err(other) => prop_assert!(false, "untyped failure: {}", other),
                }
            }
        }
    }
}
