//! Workspace partitioning: disjoint rectangular tiles over [`GridGeom`],
//! plus the boundary-overlap coverage regions and the influence-region
//! certificate that together make partitioned results *provably* equal
//! to a single-node engine's.
//!
//! # The single-node-equivalence contract
//!
//! Each worker owns one tile (here: a vertical strip of grid columns —
//! the workspace is a unit square, so strips of a `dim × dim` grid) and
//! ingests every object inside its *coverage*, the tile expanded by the
//! overlap margin. Queries are owned by the worker whose **tile**
//! contains their anchor point; objects are replicated to every worker
//! whose **coverage** contains them.
//!
//! The certificate ([`influence_bbox`]): after a cycle, if a query's
//! influence region — the circle of radius `best_dist` around a k-NN
//! anchor, a range query's region, an ANN query set's MBR expanded by
//! the aggregate bound — lies inside its worker's coverage, then every
//! object that could possibly qualify was ingested by that worker, so
//! the local result *is* the global result (same entries, same `f64`
//! bits, same order). Workers re-check the certificate every cycle and
//! refuse with a typed `CoverageExceeded` the moment it stops holding —
//! the cluster degrades to an error, never to silently wrong results.

use cpm_core::AnyQuerySpec;
use cpm_geom::{Point, Rect};
use cpm_grid::GridGeom;
use cpm_wire::cluster::TileRect;

/// The cluster's static partition map: `workers` vertical strips over a
/// `dim × dim` [`GridGeom`], each with a coverage region `overlap` cells
/// wider on both sides.
#[derive(Debug, Clone)]
pub struct Partition {
    geom: GridGeom,
    tiles: Vec<TileRect>,
    coverages: Vec<TileRect>,
}

impl Partition {
    /// Split a `dim × dim` grid into `workers` column strips.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `dim < workers` (a worker needs at
    /// least one column).
    pub fn new(dim: u32, workers: u32, overlap: u32) -> Self {
        assert!(workers >= 1, "a cluster needs at least one worker");
        assert!(dim >= workers, "need at least one grid column per worker");
        let geom = GridGeom::new(dim);
        let base = dim / workers;
        let extra = dim % workers;
        let mut tiles = Vec::with_capacity(workers as usize);
        let mut c0 = 0;
        for w in 0..workers {
            let width = base + u32::from(w < extra);
            tiles.push(TileRect::new(c0, 0, c0 + width - 1, dim - 1));
            c0 += width;
        }
        let coverages = tiles.iter().map(|t| t.expanded(overlap, dim)).collect();
        Self {
            geom,
            tiles,
            coverages,
        }
    }

    /// The grid geometry the tiles are defined over.
    pub fn geom(&self) -> GridGeom {
        self.geom
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.tiles.len()
    }

    /// Worker `w`'s ownership tile.
    pub fn tile(&self, w: usize) -> TileRect {
        self.tiles[w]
    }

    /// Worker `w`'s coverage region (tile plus overlap margin).
    pub fn coverage(&self, w: usize) -> TileRect {
        self.coverages[w]
    }

    /// The worker whose tile contains `p` (tiles partition the
    /// workspace, so exactly one does).
    pub fn owner_of(&self, p: Point) -> usize {
        let col = self.geom.cell_of(p).col;
        self.tiles
            .iter()
            .position(|t| t.c0 <= col && col <= t.c1)
            .expect("tiles cover every column")
    }

    /// `true` if worker `w`'s coverage contains `p`.
    pub fn covers(&self, w: usize, p: Point) -> bool {
        self.coverages[w].contains_cell(self.geom.cell_of(p))
    }

    /// `true` if worker `w`'s coverage contains all of `rect`
    /// (intersected with the workspace).
    pub fn rect_within_coverage(&self, w: usize, rect: &Rect) -> bool {
        let cov = self.coverages[w];
        cov.contains_cell(self.geom.cell_of(rect.lo)) && {
            let hi = self.geom.cell_of(rect.hi);
            cov.contains(hi.col, hi.row)
        }
    }
}

/// The anchor point that decides which tile owns a query: the k-NN query
/// point, a range region's anchor, an ANN point set's MBR center, or a
/// constrained query's point. RNN specs have no single anchor — the
/// server facade already rejects composite specs on the batched event
/// surface, so they never reach the partition layer.
pub fn anchor_of(spec: &AnyQuerySpec) -> Option<Point> {
    match spec {
        AnyQuerySpec::Knn(q) => Some(q.0),
        AnyQuerySpec::Range(q) => Some(q.region.anchor()),
        AnyQuerySpec::Ann(q) => Some(q.mbr().center()),
        AnyQuerySpec::Constrained(q) => Some(q.q),
        AnyQuerySpec::Rnn(_) => None,
    }
}

/// The bounding box of a query's influence region, given its current
/// result size and `best_dist` — the region every qualifying object must
/// lie in. `None` means unbounded: the result has not filled to `k` (or
/// `best_dist` is infinite), so an object *anywhere* could enter it and
/// only whole-workspace coverage can certify the result.
pub fn influence_bbox(
    spec: &AnyQuerySpec,
    k: usize,
    result_len: usize,
    best_dist: f64,
) -> Option<Rect> {
    fn grown(base: Rect, r: f64) -> Rect {
        Rect::new(
            Point::new((base.lo.x - r).max(0.0), (base.lo.y - r).max(0.0)),
            Point::new((base.hi.x + r).min(1.0), (base.hi.y + r).min(1.0)),
        )
    }
    match spec {
        AnyQuerySpec::Knn(q) => {
            if result_len < k || !best_dist.is_finite() {
                return None;
            }
            Some(grown(Rect::new(q.0, q.0), best_dist))
        }
        AnyQuerySpec::Range(q) => Some(q.region.bbox()),
        AnyQuerySpec::Ann(q) => {
            // For Sum/Min/Max alike, an object with aggregate distance
            // ≤ best_dist is within best_dist of at least one query
            // point, so the MBR grown by best_dist bounds the influence
            // region.
            if result_len < k || !best_dist.is_finite() {
                return None;
            }
            Some(grown(q.mbr(), best_dist))
        }
        // The constraint region statically bounds the influence region
        // regardless of fill level.
        AnyQuerySpec::Constrained(q) => Some(q.region),
        AnyQuerySpec::Rnn(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{AggregateFn, AnnQuery, ConstrainedQuery, PointQuery, RangeQuery};

    #[test]
    fn strips_partition_every_column_disjointly() {
        for (dim, workers) in [(16, 1), (16, 2), (16, 4), (17, 4), (7, 3)] {
            let p = Partition::new(dim, workers, 2);
            let mut owned = vec![0u32; dim as usize];
            for w in 0..p.workers() {
                let t = p.tile(w);
                assert_eq!((t.r0, t.r1), (0, dim - 1));
                for c in t.c0..=t.c1 {
                    owned[c as usize] += 1;
                }
                assert!(p.coverage(w).contains_rect(&t));
            }
            assert!(owned.iter().all(|&n| n == 1), "dim {dim} workers {workers}");
        }
    }

    #[test]
    fn owner_and_coverage_agree_with_the_tiles() {
        let p = Partition::new(16, 4, 2);
        // Cell width is 1/16; worker 1 owns columns 4..=7.
        let inside = Point::new(5.5 / 16.0, 0.5);
        assert_eq!(p.owner_of(inside), 1);
        assert!(p.covers(1, inside));
        // Two columns past the tile edge: covered (overlap 2), not owned.
        let margin = Point::new(9.5 / 16.0, 0.5);
        assert_eq!(p.owner_of(margin), 2);
        assert!(p.covers(1, margin));
        // Three columns past: outside coverage.
        let outside = Point::new(10.5 / 16.0, 0.5);
        assert!(!p.covers(1, outside));
    }

    #[test]
    fn anchors_follow_the_query_geometry() {
        let q = Point::new(0.3, 0.7);
        assert_eq!(anchor_of(&AnyQuerySpec::Knn(PointQuery(q))), Some(q));
        let r = RangeQuery::circle(q, 0.1);
        assert_eq!(anchor_of(&AnyQuerySpec::Range(r)), Some(q));
        let c = ConstrainedQuery::new(q, Rect::WORKSPACE);
        assert_eq!(anchor_of(&AnyQuerySpec::Constrained(c)), Some(q));
        let a = AnnQuery::new(
            vec![Point::new(0.2, 0.2), Point::new(0.4, 0.4)],
            AggregateFn::Sum,
        );
        let center = a.mbr().center();
        assert_eq!(anchor_of(&AnyQuerySpec::Ann(a)), Some(center));
    }

    #[test]
    fn influence_bbox_is_conservative_and_detects_unfilled_results() {
        let q = Point::new(0.5, 0.5);
        let spec = AnyQuerySpec::Knn(PointQuery(q));
        // Unfilled result: unbounded.
        assert!(influence_bbox(&spec, 4, 3, f64::INFINITY).is_none());
        // Filled: the circle's bbox, clamped to the workspace.
        let b = influence_bbox(&spec, 4, 4, 0.1).unwrap();
        assert!((b.lo.x - 0.4).abs() < 1e-12 && (b.hi.y - 0.6).abs() < 1e-12);
        let edge = AnyQuerySpec::Knn(PointQuery(Point::new(0.05, 0.5)));
        let b = influence_bbox(&edge, 1, 1, 0.2).unwrap();
        assert_eq!(b.lo.x, 0.0);
        // Range regions are static bounds even when unfilled.
        let r = AnyQuerySpec::Range(RangeQuery::circle(q, 0.2));
        let b = influence_bbox(&r, RangeQuery::UNBOUNDED_K, 0, f64::INFINITY).unwrap();
        assert!((b.lo.x - 0.3).abs() < 1e-12);
        // Constrained: the constraint rect.
        let region = Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6));
        let c = AnyQuerySpec::Constrained(ConstrainedQuery::new(q, region));
        assert_eq!(influence_bbox(&c, 2, 0, f64::INFINITY), Some(region));
    }

    #[test]
    fn rect_within_coverage_uses_cell_resolution() {
        let p = Partition::new(16, 4, 2);
        // Worker 1 coverage: columns 2..=9.
        let inside = Rect::new(Point::new(2.5 / 16.0, 0.1), Point::new(9.5 / 16.0, 0.9));
        assert!(p.rect_within_coverage(1, &inside));
        let spill = Rect::new(Point::new(2.5 / 16.0, 0.1), Point::new(10.5 / 16.0, 0.9));
        assert!(!p.rect_within_coverage(1, &spill));
    }
}
